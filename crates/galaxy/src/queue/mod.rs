//! The asynchronous job queue + DAG workflow engine.
//!
//! Real Galaxy never runs a job inline with the web request: submissions
//! enter an asynchronous queue, handler workers pull them off, and failed
//! jobs can be *resubmitted* to fallback destinations. This module brings
//! that layer to the substrate:
//!
//! - [`QueueEngine::submit_async`] returns a [`JobHandle`] immediately and
//!   enqueues the work instead of blocking;
//! - the queue is bounded with per-user fair-share ordering and admission
//!   control ([`fair_share`]) — a full queue rejects with a reason rather
//!   than growing without bound;
//! - [`QueueEngine::submit_dag`] runs [`DagWorkflow`]s with explicit step
//!   dependencies ([`dag`]): independent steps dispatch concurrently
//!   through the [`HandlerPool`], so fan-out branches overlap on the
//!   virtual clock;
//! - failures follow a [`ResubmitPolicy`] ([`resubmit`]) — Galaxy's
//!   `<resubmit>` semantics, e.g. GPU → CPU after an injected device
//!   failure.
//!
//! ## Pump model
//!
//! [`QueueEngine::run_until_idle`] dispatches in deterministic *waves*:
//! it pops up to `workers` items by fair share, prepares **all** their
//! plans (so hooks observe the pre-wave cluster state and every wave
//! member shares one virtual start time), hands the wave to the pool,
//! waits, then processes completions — possibly enqueuing newly-ready DAG
//! steps or resubmitted attempts for the next wave.
//!
//! Preparing a whole wave against the pre-wave state is a deliberate
//! time-of-check/time-of-use window: two wave members can observe the
//! same "free" resource. Hooks that grant exclusive resources must
//! therefore reserve at preparation time and release on conclusion —
//! GYAN's GPU lease table does exactly that (see the `gyan` crate's
//! `reservations` module), using [`crate::runners::JobHook::after_conclude`]
//! for release and [`QueueEngine::set_discard_listener`] to cover plans a
//! discard shutdown skips.
//!
//! ## Virtual-clock time charging
//!
//! Executors that advance the shared `gpusim`-style virtual clock do so
//! additively from worker threads, so concurrent execution cannot shrink
//! the clock reading by itself. When a [`WaveTimeCharging`] is configured
//! the engine instead charges time at the wave barrier: each wave advances
//! the clock to `wave_start + max(step duration)`, so parallel branches
//! cost their *maximum* while sequential chains cost their *sum* — making
//! DAG makespan measurably (and deterministically) smaller than the
//! sequential baseline.
//!
//! Every scheduling decision is audited through the app's [`obs`]
//! recorder as `galaxy.queue.*` events (enqueue, fair-share pick,
//! dispatch, reject, resubmit, step-ready, cancel) alongside queue-depth,
//! wait-time, and retry metrics.

pub mod dag;
pub mod fair_share;
pub mod ledger;
pub mod resubmit;

pub use crate::scheduler::DispatchMode;
pub use dag::{DagStep, DagWorkflow};
pub use fair_share::{FairShareQueue, Popped, Rejection};
pub use ledger::{JobSnapshot, JobsLedger};
pub use resubmit::ResubmitPolicy;

use crate::app::GalaxyApp;
use crate::error::GalaxyError;
use crate::params::ParamDict;
use crate::runners::{ExecutionPlan, JobExecutor};
use crate::scheduler::HandlerPool;
use crate::workflow::ValueSource;
use obs::{Span, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Gauge: entries currently waiting in the fair-share queue.
pub const QUEUE_DEPTH_GAUGE: &str = "galaxy_queue_depth";
/// Histogram: seconds each entry waited before dispatch.
pub const QUEUE_WAIT_HISTOGRAM: &str = "galaxy_queue_wait_seconds";
/// Counter: submissions refused by admission control.
pub const QUEUE_REJECTED_COUNTER: &str = "galaxy_queue_rejected_total";
/// Counter: plans handed to the handler pool.
pub const QUEUE_DISPATCHED_COUNTER: &str = "galaxy_queue_dispatched_total";
/// Counter: failed attempts resubmitted to a fallback destination.
pub const QUEUE_RESUBMITTED_COUNTER: &str = "galaxy_queue_resubmitted_total";

/// A virtual clock the engine may advance at wave barriers. `advance_to`
/// must clamp (never rewind), matching `gpusim::VirtualClock::advance_to`.
pub trait AdvanceableClock: Send + Sync {
    /// Current virtual time (seconds).
    fn now(&self) -> f64;
    /// Advance to absolute time `t` (no-op when `t` is in the past).
    fn advance_to(&self, t: f64);
}

/// Per-plan duration estimate used for wave-barrier time charging.
pub trait DurationModel: Send + Sync {
    /// Virtual seconds the plan occupies a worker.
    fn duration(&self, plan: &ExecutionPlan) -> f64;
}

impl<F> DurationModel for F
where
    F: Fn(&ExecutionPlan) -> f64 + Send + Sync,
{
    fn duration(&self, plan: &ExecutionPlan) -> f64 {
        self(plan)
    }
}

/// Wave-barrier time charging: after each wave completes, the clock
/// advances to `wave_start + max(duration)` across the wave's members.
pub struct WaveTimeCharging {
    /// The shared virtual clock to advance.
    pub clock: Box<dyn AdvanceableClock>,
    /// Duration estimate per plan.
    pub model: Box<dyn DurationModel>,
}

/// Engine configuration.
pub struct QueueConfig {
    /// Bounded queue capacity (admission control rejects beyond it).
    pub capacity: usize,
    /// Handler pool worker threads; also the wave width.
    pub workers: u32,
    /// Optional cap on one user's simultaneously queued entries.
    pub per_user_limit: Option<usize>,
    /// Engine-wide resubmission policy (destinations may override via
    /// `resubmit_destination` / `resubmit_attempts` params).
    pub resubmit: ResubmitPolicy,
    /// Optional wave-barrier virtual-clock charging.
    pub time_charging: Option<WaveTimeCharging>,
    /// Pool backend: OS worker threads (default) or the event-driven
    /// ready queue — see [`crate::scheduler::DispatchMode`]. Load
    /// harnesses holding 10^5 in-flight jobs use [`DispatchMode::Event`]
    /// so a wave never needs one OS thread per worker.
    pub dispatch: DispatchMode,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 64,
            workers: 4,
            per_user_limit: None,
            resubmit: ResubmitPolicy::none(),
            time_charging: None,
            dispatch: DispatchMode::Threads,
        }
    }
}

/// Handle returned by an asynchronous submission (the job id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobHandle(pub u64);

/// Handle for a submitted DAG workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkflowHandle(pub usize);

/// Lifecycle of an asynchronous submission as the engine sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionState {
    /// Waiting in the queue (or between resubmission attempts).
    Queued,
    /// Finished successfully.
    Ok,
    /// Failed terminally (attempt budget exhausted or no fallback).
    Error,
    /// Never executed: an upstream DAG step failed, or the plan was
    /// dropped by a discard (shutdown or mid-wave fault).
    Cancelled,
}

impl SubmissionState {
    /// Lower-case state name as served by the ops plane.
    pub fn as_str(self) -> &'static str {
        match self {
            SubmissionState::Queued => "queued",
            SubmissionState::Ok => "ok",
            SubmissionState::Error => "error",
            SubmissionState::Cancelled => "cancelled",
        }
    }
}

/// Observed virtual-clock interval of one completed DAG step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Job id the step ran as.
    pub job_id: u64,
    /// Virtual time the attempt started.
    pub start: f64,
    /// Virtual time the step finished.
    pub end: f64,
}

/// Summary of a DAG workflow run.
#[derive(Debug, Clone)]
pub struct DagRunReport {
    /// Per-step job ids (None when never materialized).
    pub job_ids: Vec<Option<u64>>,
    /// First failed step, if any.
    pub failed_step: Option<usize>,
    /// Per-step observed intervals (None unless completed).
    pub outcomes: Vec<Option<StepOutcome>>,
    /// `max(end) - min(start)` over completed steps (0 when none).
    pub makespan: f64,
}

impl DagRunReport {
    /// Whether every step completed.
    pub fn ok(&self) -> bool {
        self.failed_step.is_none()
    }
}

#[derive(Debug, Clone, Copy)]
enum WorkItem {
    Job(u64),
    Step { wf: usize, step: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepState {
    Waiting,
    Enqueued,
    Done,
    Failed,
    Cancelled,
}

struct DagRun {
    dag: DagWorkflow,
    user: String,
    priority: u8,
    job_ids: Vec<Option<u64>>,
    states: Vec<StepState>,
    outcomes: Vec<Option<StepOutcome>>,
}

struct JobCtx {
    user: String,
    priority: u8,
    /// Completed dispatch attempts.
    attempts: u32,
    /// Destination override for the next attempt (resubmission).
    next_dest: Option<String>,
    /// Destination of the first attempt (selects the resubmit policy).
    first_destination: Option<String>,
    /// Owning DAG step, when the job materializes a workflow step.
    origin: Option<(usize, usize)>,
    /// Fleet nodes this job's next attempt must avoid (every node a
    /// previous attempt failed on). Exported to the placement hook via
    /// [`crate::GALAXY_EXCLUDED_NODES_ENV`].
    excluded_nodes: Vec<String>,
    /// Placement-aware same-destination retries already consumed.
    node_retries_used: u32,
    /// Footprint-revised same-destination retries already consumed.
    footprint_retries_used: u32,
}

impl JobCtx {
    fn new(user: String, priority: u8, origin: Option<(usize, usize)>) -> Self {
        JobCtx {
            user,
            priority,
            attempts: 0,
            next_dest: None,
            first_destination: None,
            origin,
            excluded_nodes: Vec::new(),
            node_retries_used: 0,
            footprint_retries_used: 0,
        }
    }
}

/// Fields of one `galaxy.queue.resubmit` audit event.
struct ResubmitAudit<'a> {
    job_id: u64,
    attempts: u32,
    max_attempts: u32,
    from: &'a str,
    to: &'a str,
    from_node: Option<&'a str>,
    excluded: &'a [String],
    exit_code: i32,
    reason: &'a str,
}

/// One wave member: the dispatched plan's bookkeeping.
struct Dispatched {
    job_id: u64,
    duration: f64,
    wave_start: f64,
    span: Option<Span>,
}

/// The asynchronous queue + DAG engine wrapping a [`GalaxyApp`].
pub struct QueueEngine {
    app: GalaxyApp,
    pool: HandlerPool,
    queue: FairShareQueue<WorkItem>,
    default_resubmit: ResubmitPolicy,
    time_charging: Option<WaveTimeCharging>,
    wave_size: usize,
    jobs: HashMap<u64, JobCtx>,
    statuses: HashMap<u64, SubmissionState>,
    /// Ops-plane mirror of `statuses` plus per-job dispatch detail,
    /// shareable with reader threads (see [`ledger::JobsLedger`]).
    ledger: JobsLedger,
    workflows: Vec<DagRun>,
    /// One-shot fault flag: discard the next dispatched wave's plans at
    /// the pool instead of executing them (see
    /// [`QueueEngine::discard_next_wave`]).
    discard_next_wave: bool,
}

impl GalaxyApp {
    /// Wrap this app in an asynchronous [`QueueEngine`] — the async submit
    /// path. `executor` is what the handler pool runs plans on (typically
    /// the same executor the app holds).
    pub fn into_queue(self, executor: Arc<dyn JobExecutor>, config: QueueConfig) -> QueueEngine {
        QueueEngine::new(self, executor, config)
    }
}

impl QueueEngine {
    /// Build an engine over `app`, dispatching plans on `executor` through
    /// a handler pool that shares the app's recorder.
    pub fn new(app: GalaxyApp, executor: Arc<dyn JobExecutor>, config: QueueConfig) -> Self {
        let pool = HandlerPool::with_mode(
            executor,
            config.workers,
            app.recorder().clone(),
            config.dispatch,
        );
        app.recorder().metrics().set_gauge(QUEUE_DEPTH_GAUGE, 0.0);
        QueueEngine {
            queue: FairShareQueue::new(config.capacity, config.per_user_limit),
            default_resubmit: config.resubmit,
            time_charging: config.time_charging,
            wave_size: config.workers.max(1) as usize,
            jobs: HashMap::new(),
            statuses: HashMap::new(),
            ledger: JobsLedger::new(),
            workflows: Vec::new(),
            discard_next_wave: false,
            app,
            pool,
        }
    }

    /// The wrapped app (jobs, history, recorder, events).
    pub fn app(&self) -> &GalaxyApp {
        &self.app
    }

    /// Mutable access to the wrapped app.
    pub fn app_mut(&mut self) -> &mut GalaxyApp {
        &mut self.app
    }

    /// Engine view of a submission's lifecycle.
    pub fn state(&self, handle: JobHandle) -> Option<SubmissionState> {
        self.statuses.get(&handle.0).copied()
    }

    /// Every tracked submission's lifecycle state, sorted by job id — the
    /// conservation ledger invariant checkers compare against the app's
    /// job table.
    pub fn submission_states(&self) -> Vec<(u64, SubmissionState)> {
        let mut out: Vec<(u64, SubmissionState)> =
            self.statuses.iter().map(|(id, s)| (*id, *s)).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Entries currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// A shareable handle on the engine's job ledger: hand it to the ops
    /// server (or any reader thread) for a live `GET /api/jobs` view.
    pub fn ledger(&self) -> JobsLedger {
        self.ledger.clone()
    }

    /// Record a lifecycle change in both the engine's own status map and
    /// the shared ops ledger (which also timestamps terminal states).
    fn set_status(&mut self, job_id: u64, state: SubmissionState) {
        self.statuses.insert(job_id, state);
        let finished_at = match state {
            SubmissionState::Queued => None,
            _ => Some(self.app.recorder().now()),
        };
        self.ledger.update(job_id, |snap| {
            snap.state = state;
            snap.finished_at = finished_at;
        });
    }

    /// Asynchronously submit a tool job for `user`: admission-check,
    /// create the job record, enqueue, and return immediately.
    pub fn submit_async(
        &mut self,
        user: &str,
        tool_id: &str,
        params: &ParamDict,
    ) -> Result<JobHandle, GalaxyError> {
        self.submit_with_priority(user, tool_id, params, 0)
    }

    /// [`QueueEngine::submit_async`] with an explicit priority (higher
    /// dispatches sooner *within* the user's own fair share).
    pub fn submit_with_priority(
        &mut self,
        user: &str,
        tool_id: &str,
        params: &ParamDict,
        priority: u8,
    ) -> Result<JobHandle, GalaxyError> {
        self.admit(user, tool_id)?;
        let job_id = self.app.create_job(tool_id, params)?;
        let now = self.app.recorder().now();
        self.queue.push_unchecked(user, priority, now, WorkItem::Job(job_id));
        self.jobs.insert(job_id, JobCtx::new(user.to_string(), priority, None));
        self.ledger.upsert(JobSnapshot {
            job_id,
            user: user.to_string(),
            tool: tool_id.to_string(),
            state: SubmissionState::Queued,
            attempts: 0,
            destination: None,
            node: None,
            priority,
            submitted_at: now,
            finished_at: None,
        });
        self.statuses.insert(job_id, SubmissionState::Queued);
        self.app.recorder().event(
            "galaxy.queue.enqueue",
            vec![
                ("user", Value::from(user)),
                ("tool", Value::from(tool_id)),
                ("job_id", Value::from(job_id)),
                ("priority", Value::from(u64::from(priority))),
                ("depth", Value::from(self.queue.len())),
            ],
        );
        self.sync_depth_gauge();
        Ok(JobHandle(job_id))
    }

    /// Submit a DAG workflow: validate, admit, and enqueue its root steps.
    /// Downstream steps enqueue as their dependencies complete.
    pub fn submit_dag(
        &mut self,
        user: &str,
        dag: DagWorkflow,
    ) -> Result<WorkflowHandle, GalaxyError> {
        dag.validate(&self.app)?;
        self.admit(user, &dag.name.clone())?;
        let n = dag.steps.len();
        let roots = dag.roots();
        self.app.recorder().event(
            "galaxy.queue.enqueue",
            vec![
                ("user", Value::from(user)),
                ("workflow", Value::from(dag.name.as_str())),
                ("steps", Value::from(n)),
                ("roots", Value::from(roots.len())),
            ],
        );
        let wf = self.workflows.len();
        self.workflows.push(DagRun {
            dag,
            user: user.to_string(),
            priority: 0,
            job_ids: vec![None; n],
            states: vec![StepState::Waiting; n],
            outcomes: vec![None; n],
        });
        for step in roots {
            self.enqueue_step(wf, step);
        }
        Ok(WorkflowHandle(wf))
    }

    /// Report on a submitted DAG workflow (job ids, per-step intervals,
    /// makespan over the virtual clock).
    pub fn workflow_report(&self, handle: WorkflowHandle) -> Option<DagRunReport> {
        let run = self.workflows.get(handle.0)?;
        let failed_step = run.states.iter().position(|s| *s == StepState::Failed);
        let completed: Vec<&StepOutcome> = run.outcomes.iter().flatten().collect();
        let makespan = if completed.is_empty() {
            0.0
        } else {
            let start = completed.iter().map(|o| o.start).fold(f64::INFINITY, f64::min);
            let end = completed.iter().map(|o| o.end).fold(f64::NEG_INFINITY, f64::max);
            end - start
        };
        Some(DagRunReport {
            job_ids: run.job_ids.clone(),
            failed_step,
            outcomes: run.outcomes.clone(),
            makespan,
        })
    }

    /// Pump the queue until nothing is left to do: dispatch fair-share
    /// waves through the handler pool, wait, apply completions, repeat.
    pub fn run_until_idle(&mut self) {
        while self.pump_wave() > 0 {}
    }

    /// Run exactly one wave to completion: dispatch up to `workers` items,
    /// wait for the pool, charge wave time, and apply completions.
    /// Returns the number of wave members dispatched (0 when the queue is
    /// idle). Stepping wave by wave is how the simulation harness
    /// interleaves invariant checks with the engine's own barrier.
    pub fn pump_wave(&mut self) -> usize {
        let wave = self.dispatch_wave();
        if wave.is_empty() {
            return 0;
        }
        {
            obs::profile_scope!("queue.wave.await");
            self.pool.barrier();
        }
        self.pool.clear_discard();
        self.charge_wave_time(&wave);
        let n = wave.len();
        {
            obs::profile_scope!("queue.wave.complete");
            for dispatched in wave {
                self.complete(dispatched);
            }
        }
        n
    }

    /// Arm a one-shot mid-wave discard fault: the next non-empty wave's
    /// plans are prepared and dispatched as usual, but the pool skips
    /// every one of them (notifying the discard listener) instead of
    /// executing — the simulated analogue of a handler restart dropping
    /// its queue between dispatch and pickup.
    pub fn discard_next_wave(&mut self) {
        self.discard_next_wave = true;
    }

    /// Drain outstanding work, stop the pool workers, and hand back the
    /// wrapped app.
    pub fn shutdown(mut self) -> GalaxyApp {
        self.run_until_idle();
        let QueueEngine { app, pool, .. } = self;
        pool.shutdown();
        app
    }

    /// Stop without draining: still-queued items are dropped unprepared,
    /// and plans already handed to the pool that no worker picked up are
    /// skipped — each skip notifies the discard listener (see
    /// [`QueueEngine::set_discard_listener`]) so preparation-time
    /// resources (GYAN's GPU leases) are not leaked. Hands back the
    /// wrapped app.
    pub fn shutdown_now(mut self) -> GalaxyApp {
        // Still-queued jobs never prepared, so they hold no attempt
        // resources — but their `galaxy.job` spans are open and must
        // close for the span balance to hold.
        while let Some(popped) = self.queue.pop() {
            if let WorkItem::Job(job_id) = popped.item {
                self.app.discard_job(job_id);
                self.set_status(job_id, SubmissionState::Cancelled);
            }
        }
        self.sync_depth_gauge();
        let QueueEngine { app, pool, .. } = self;
        pool.shutdown_now();
        app
    }

    /// Forward a discard listener to the handler pool: it is invoked once
    /// per plan skipped by a discard shutdown, with the plan's job id.
    /// Hooks that acquire per-job resources at preparation time register
    /// their release here, since a skipped plan never reaches
    /// [`GalaxyApp::finish_job`] and would otherwise leak them.
    pub fn set_discard_listener(&self, listener: crate::scheduler::DiscardListener) {
        self.pool.set_discard_listener(listener);
    }

    fn admit(&mut self, user: &str, what: &str) -> Result<(), GalaxyError> {
        if let Err(rejection) = self.queue.check_admission(user) {
            self.app.recorder().metrics().inc_counter(QUEUE_REJECTED_COUNTER, 1);
            self.app.recorder().event(
                "galaxy.queue.reject",
                vec![
                    ("user", Value::from(user)),
                    ("what", Value::from(what)),
                    ("reason", Value::from(rejection.reason.as_str())),
                ],
            );
            return Err(GalaxyError::QueueRejected(rejection.reason));
        }
        Ok(())
    }

    fn sync_depth_gauge(&self) {
        self.app.recorder().metrics().set_gauge(QUEUE_DEPTH_GAUGE, self.queue.len() as f64);
    }

    fn enqueue_step(&mut self, wf: usize, step: usize) {
        let run = &mut self.workflows[wf];
        run.states[step] = StepState::Enqueued;
        let user = run.user.clone();
        let priority = run.priority;
        let workflow = run.dag.name.clone();
        let tool = run.dag.steps[step].tool_id.clone();
        let now = self.app.recorder().now();
        // Internal continuation: the workflow was admitted as a whole, so
        // its steps bypass admission control.
        self.queue.push_unchecked(&user, priority, now, WorkItem::Step { wf, step });
        self.app.recorder().event(
            "galaxy.queue.step_ready",
            vec![
                ("workflow", Value::from(workflow)),
                ("step", Value::from(step)),
                ("tool", Value::from(tool)),
                ("user", Value::from(user)),
            ],
        );
        self.sync_depth_gauge();
    }

    /// Pop up to one wave of items, prepare every plan, then enqueue them
    /// all on the pool. Preparing before dispatching keeps wave starts on
    /// one deterministic virtual timestamp and lets hooks observe the
    /// pre-wave cluster state.
    fn dispatch_wave(&mut self) -> Vec<Dispatched> {
        obs::profile_scope!("queue.dispatch_wave");
        let mut wave: Vec<Dispatched> = Vec::new();
        let mut plans: Vec<ExecutionPlan> = Vec::new();
        let wave_start = self.app.recorder().now();
        while wave.len() < self.wave_size {
            let Some(popped) = self.queue.pop() else { break };
            self.sync_depth_gauge();
            self.app.recorder().event(
                "galaxy.queue.fair_share.pick",
                vec![
                    ("user", Value::from(popped.user.as_str())),
                    ("usage", Value::from(popped.usage)),
                    ("priority", Value::from(u64::from(popped.priority))),
                    ("depth", Value::from(self.queue.len())),
                ],
            );
            let job_id = match popped.item {
                WorkItem::Job(id) => Some(id),
                WorkItem::Step { wf, step } => self.materialize_step(wf, step),
            };
            let Some(job_id) = job_id else { continue };
            let wait = (wave_start - popped.enqueued_at).max(0.0);
            self.app.recorder().metrics().observe(QUEUE_WAIT_HISTOGRAM, wait);

            let dest_override = self.jobs.get_mut(&job_id).and_then(|ctx| ctx.next_dest.take());
            // Export the fair-share user onto the job record so
            // placement-aware hooks (e.g. a fleet's fair-share policy)
            // can see who is dispatching without a Job.user field.
            if let Some(user) = self.jobs.get(&job_id).map(|ctx| ctx.user.clone()) {
                self.app.set_job_env(job_id, crate::GALAXY_USER_ENV, &user);
            }
            // Export (or clear) the attempt's node exclusion set so the
            // placement hook filters out nodes previous attempts died on.
            match self.jobs.get(&job_id).map(|ctx| ctx.excluded_nodes.join(",")) {
                Some(joined) if !joined.is_empty() => {
                    self.app.set_job_env(job_id, crate::GALAXY_EXCLUDED_NODES_ENV, &joined);
                }
                _ => {
                    self.app.remove_job_env(job_id, crate::GALAXY_EXCLUDED_NODES_ENV);
                }
            }
            let prepared = {
                obs::profile_scope!("queue.prepare_plan");
                self.app.prepare_plan(job_id, dest_override.as_deref())
            };
            match prepared {
                Ok(plan) => {
                    let destination = plan.destination_id.clone();
                    let (attempt, user) = {
                        let ctx = self.jobs.get_mut(&job_id).expect("ctx exists");
                        ctx.attempts += 1;
                        if ctx.first_destination.is_none() {
                            ctx.first_destination = Some(destination.clone());
                        }
                        (ctx.attempts, ctx.user.clone())
                    };
                    // Hooks that place jobs onto fleet nodes export the
                    // chosen node; mirror it into the ledger (cleared on
                    // a node-less dispatch, e.g. a CPU resubmission).
                    let node = self
                        .app
                        .job(job_id)
                        .and_then(|j| j.env_var(crate::GALAXY_NODE_ENV))
                        .map(str::to_string);
                    self.ledger.update(job_id, |snap| {
                        snap.attempts = attempt;
                        snap.destination = Some(destination.clone());
                        snap.node = node.clone();
                    });
                    let span = self.app.job_span_child(job_id, "galaxy.dispatch");
                    if let Some(s) = &span {
                        s.field("destination", destination.as_str());
                        s.field("attempt", u64::from(attempt));
                    }
                    self.app.recorder().metrics().inc_counter(QUEUE_DISPATCHED_COUNTER, 1);
                    self.app.recorder().event(
                        "galaxy.queue.dispatch",
                        vec![
                            ("job_id", Value::from(job_id)),
                            ("tool", Value::from(plan.tool_id.as_str())),
                            ("destination", Value::from(destination)),
                            ("user", Value::from(user)),
                            ("attempt", Value::from(u64::from(attempt))),
                            ("wait_seconds", Value::from(wait)),
                        ],
                    );
                    let duration = self
                        .time_charging
                        .as_ref()
                        .map_or(0.0, |tc| tc.model.duration(&plan).max(0.0));
                    wave.push(Dispatched { job_id, duration, wave_start, span });
                    plans.push(plan);
                }
                Err(_) => {
                    // prepare_plan already marked the job failed.
                    self.set_status(job_id, SubmissionState::Error);
                    if let Some((wf, step)) = self.jobs.get(&job_id).and_then(|ctx| ctx.origin) {
                        self.fail_step(wf, step);
                    }
                }
            }
        }
        if self.discard_next_wave && !plans.is_empty() {
            // Armed fault: flip the pool into discard mode *before* the
            // plans land, so every member of this wave is skipped. The
            // pump clears the mode once the wave barrier passes.
            self.discard_next_wave = false;
            self.pool.discard_pending();
        }
        for plan in plans {
            self.pool.enqueue(plan);
        }
        wave
    }

    /// Resolve a ready DAG step's parameters (upstream outputs + literals)
    /// and create its job record. Returns `None` — failing the step — when
    /// an upstream output is missing or job creation fails.
    fn materialize_step(&mut self, wf: usize, step: usize) -> Option<u64> {
        let (tool_id, user, priority, bindings) = {
            let run = &self.workflows[wf];
            let dstep = &run.dag.steps[step];
            (dstep.tool_id.clone(), run.user.clone(), run.priority, dstep.params.clone())
        };
        let mut params = ParamDict::new();
        for (name, source) in bindings {
            let value = match source {
                ValueSource::Literal(v) => Some(v),
                ValueSource::StepOutput(from) => self.workflows[wf].job_ids[from].and_then(|jid| {
                    self.app.history().datasets_for_job(jid).first().map(|d| d.content.clone())
                }),
            };
            match value {
                Some(v) => params.set(name, v),
                None => {
                    self.fail_step(wf, step);
                    return None;
                }
            }
        }
        match self.app.create_job(&tool_id, &params) {
            Ok(job_id) => {
                self.workflows[wf].job_ids[step] = Some(job_id);
                self.ledger.upsert(JobSnapshot {
                    job_id,
                    user: user.clone(),
                    tool: tool_id.clone(),
                    state: SubmissionState::Queued,
                    attempts: 0,
                    destination: None,
                    node: None,
                    priority,
                    submitted_at: self.app.recorder().now(),
                    finished_at: None,
                });
                self.jobs.insert(job_id, JobCtx::new(user, priority, Some((wf, step))));
                self.statuses.insert(job_id, SubmissionState::Queued);
                Some(job_id)
            }
            Err(_) => {
                self.fail_step(wf, step);
                None
            }
        }
    }

    /// Advance the shared clock to the wave's end: start + the longest
    /// member duration (parallel branches charge their max, so DAG
    /// makespans genuinely beat sequential sums).
    fn charge_wave_time(&self, wave: &[Dispatched]) {
        let Some(tc) = &self.time_charging else { return };
        let end = wave.iter().map(|d| d.wave_start + d.duration).fold(f64::NEG_INFINITY, f64::max);
        if end.is_finite() {
            tc.clock.advance_to(end);
        }
    }

    /// Apply one wave member's result: success feeds the history and may
    /// unblock DAG dependents; failure consults the resubmit policy.
    fn complete(&mut self, dispatched: Dispatched) {
        let Dispatched { job_id, duration, wave_start, span } = dispatched;
        // A wave member without a pool result was skipped by a mid-wave
        // discard: the worker never ran it, and the pool's discard
        // listener (not this path) owns releasing its attempt resources.
        // Taking (not reading) the result keeps the pool's map bounded
        // by the wave width across an arbitrarily long run.
        let Some(result) = self.pool.take_result(job_id) else {
            if let Some(s) = span {
                s.field("discarded", true);
                s.end();
            }
            self.app.close_job_span_discarded(job_id);
            self.set_status(job_id, SubmissionState::Cancelled);
            self.app.recorder().event(
                "galaxy.queue.discard",
                vec![("job_id", Value::from(job_id)), ("reason", Value::from("wave_discarded"))],
            );
            if let Some((wf, step)) = self.jobs.get(&job_id).and_then(|ctx| ctx.origin) {
                self.fail_step(wf, step);
            }
            return;
        };
        if let Some(s) = span {
            s.field("exit_code", i64::from(result.exit_code));
            s.end();
        }

        if result.exit_code == 0 {
            let _ = self.app.finish_job(job_id, &result, true);
            // Scrub per-attempt retry context from the surviving job
            // record (mirroring the hook-side CUDA/node scrub): a
            // succeeded job's ledger snapshot must not carry the dead
            // exclusion set or budget override of earlier failed
            // attempts.
            self.app.remove_job_env(job_id, crate::GALAXY_EXCLUDED_NODES_ENV);
            self.app.remove_job_env(job_id, crate::GALAXY_GPU_BUDGET_OVERRIDE_ENV);
            self.set_status(job_id, SubmissionState::Ok);
            if let Some((wf, step)) = self.jobs.get(&job_id).and_then(|ctx| ctx.origin) {
                let end = if self.time_charging.is_some() {
                    wave_start + duration
                } else {
                    self.app.job(job_id).and_then(|j| j.end_time).unwrap_or(wave_start)
                };
                let start = self.app.job(job_id).and_then(|j| j.start_time).unwrap_or(wave_start);
                let run = &mut self.workflows[wf];
                run.outcomes[step] = Some(StepOutcome { job_id, start, end });
                run.states[step] = StepState::Done;
                let ready: Vec<usize> = run
                    .dag
                    .dependents_of(step)
                    .into_iter()
                    .filter(|j| {
                        run.states[*j] == StepState::Waiting
                            && run.dag.deps_of(*j).iter().all(|d| run.states[*d] == StepState::Done)
                    })
                    .collect();
                for next in ready {
                    self.enqueue_step(wf, next);
                }
            }
            return;
        }

        // Failure: prefer a placement-aware retry on the same destination
        // with the failed node excluded (policy budgets node retries AND
        // the placement advisor confirms a viable node class remains);
        // else walk the fallback ladder; else the failure is final. The
        // retryable conclusion (releasing hook-held resources such as GPU
        // leases) always precedes the requeue, so the retry's placement
        // never races the failed attempt's leases.
        let policy = self.policy_for(job_id);
        let attempts = self.jobs.get(&job_id).map_or(1, |ctx| ctx.attempts);
        let node_retries_used = self.jobs.get(&job_id).map_or(0, |ctx| ctx.node_retries_used);
        let from_node = self.ledger.get(job_id).and_then(|snap| snap.node.clone());
        let budget_left = attempts < policy.max_attempts;

        let node_retry = if budget_left && node_retries_used < policy.node_retries {
            self.node_retry_target(job_id, from_node.as_deref())
        } else {
            None
        };
        if let Some((dest, excluded)) = node_retry {
            let _ = self.app.finish_job(job_id, &result, false);
            let (user, priority, from) = {
                let ctx = self.jobs.get_mut(&job_id).expect("ctx exists");
                ctx.next_dest = Some(dest.clone());
                ctx.node_retries_used += 1;
                ctx.excluded_nodes = excluded.clone();
                (ctx.user.clone(), ctx.priority, ctx.first_destination.clone().unwrap_or_default())
            };
            self.audit_resubmit(ResubmitAudit {
                job_id,
                attempts,
                max_attempts: policy.max_attempts,
                from: &from,
                to: &dest,
                from_node: from_node.as_deref(),
                excluded: &excluded,
                exit_code: result.exit_code,
                reason: "node_excluded",
            });
            let now = self.app.recorder().now();
            self.queue.push_unchecked(&user, priority, now, WorkItem::Job(job_id));
            self.set_status(job_id, SubmissionState::Queued);
            self.sync_depth_gauge();
            return;
        }

        // Next preference: a same-destination retry with a revised GPU
        // memory budget, when the footprint advisor knows one (e.g. the
        // learned profile says this tool/input really needs more than
        // the failed attempt's budget). Like node retries, these are
        // budgeted separately and do not consume the fallback ladder.
        let footprint_retries_used =
            self.jobs.get(&job_id).map_or(0, |ctx| ctx.footprint_retries_used);
        let footprint_retry = if budget_left && footprint_retries_used < policy.footprint_retries {
            self.footprint_retry_target(job_id)
        } else {
            None
        };
        if let Some((dest, budget_mib)) = footprint_retry {
            let _ = self.app.finish_job(job_id, &result, false);
            self.app.set_job_env(
                job_id,
                crate::GALAXY_GPU_BUDGET_OVERRIDE_ENV,
                &budget_mib.to_string(),
            );
            let (user, priority, from, excluded) = {
                let ctx = self.jobs.get_mut(&job_id).expect("ctx exists");
                ctx.next_dest = Some(dest.clone());
                ctx.footprint_retries_used += 1;
                (
                    ctx.user.clone(),
                    ctx.priority,
                    ctx.first_destination.clone().unwrap_or_default(),
                    ctx.excluded_nodes.clone(),
                )
            };
            self.audit_resubmit(ResubmitAudit {
                job_id,
                attempts,
                max_attempts: policy.max_attempts,
                from: &from,
                to: &dest,
                from_node: from_node.as_deref(),
                excluded: &excluded,
                exit_code: result.exit_code,
                reason: "footprint_revised",
            });
            let now = self.app.recorder().now();
            self.queue.push_unchecked(&user, priority, now, WorkItem::Job(job_id));
            self.set_status(job_id, SubmissionState::Queued);
            self.sync_depth_gauge();
            return;
        }

        // Node and footprint retries consumed attempts but must not
        // consume the fallback ladder: index it by attempts net of both
        // (always ≥ 1, since each such retry also incremented attempts).
        let ladder_position =
            attempts.saturating_sub(node_retries_used + footprint_retries_used).max(1);
        let fallback = if budget_left {
            policy
                .fallback_for(ladder_position)
                .filter(|d| self.app.config().destination(d).is_some())
                .map(str::to_string)
        } else {
            None
        };
        match fallback {
            Some(dest) => {
                let _ = self.app.finish_job(job_id, &result, false);
                let (user, priority, from, excluded) = {
                    let ctx = self.jobs.get_mut(&job_id).expect("ctx exists");
                    ctx.next_dest = Some(dest.clone());
                    (
                        ctx.user.clone(),
                        ctx.priority,
                        ctx.first_destination.clone().unwrap_or_default(),
                        ctx.excluded_nodes.clone(),
                    )
                };
                self.audit_resubmit(ResubmitAudit {
                    job_id,
                    attempts,
                    max_attempts: policy.max_attempts,
                    from: &from,
                    to: &dest,
                    from_node: from_node.as_deref(),
                    excluded: &excluded,
                    exit_code: result.exit_code,
                    reason: "fallback",
                });
                let now = self.app.recorder().now();
                self.queue.push_unchecked(&user, priority, now, WorkItem::Job(job_id));
                self.set_status(job_id, SubmissionState::Queued);
                self.sync_depth_gauge();
            }
            None => {
                let _ = self.app.finish_job(job_id, &result, true);
                self.set_status(job_id, SubmissionState::Error);
                if let Some((wf, step)) = self.jobs.get(&job_id).and_then(|ctx| ctx.origin) {
                    self.fail_step(wf, step);
                }
            }
        }
    }

    /// Whether a failed attempt can retry on its own destination with the
    /// failed node excluded: needs a node-labeled failure, a first
    /// destination, and the installed placement advisor's confirmation
    /// that a non-excluded node class still hosts the tool. Returns the
    /// retry destination plus the grown exclusion set.
    fn node_retry_target(
        &self,
        job_id: u64,
        from_node: Option<&str>,
    ) -> Option<(String, Vec<String>)> {
        let node = from_node?;
        let ctx = self.jobs.get(&job_id)?;
        let destination = ctx.first_destination.clone()?;
        let tool = self.ledger.get(job_id)?.tool.clone();
        let mut excluded = ctx.excluded_nodes.clone();
        if !excluded.iter().any(|n| n == node) {
            excluded.push(node.to_string());
        }
        let advisor = self.app.placement_advisor()?;
        advisor(&tool, &destination, &excluded).then_some((destination, excluded))
    }

    /// Whether a failed attempt can retry on its own destination with a
    /// revised GPU memory budget: needs a first destination and the
    /// installed footprint advisor recommending a budget for the job.
    /// Returns the retry destination plus the revised budget (MiB).
    fn footprint_retry_target(&self, job_id: u64) -> Option<(String, u64)> {
        let destination = self.jobs.get(&job_id)?.first_destination.clone()?;
        let advisor = self.app.footprint_advisor()?;
        let budget_mib = advisor(self.app.job(job_id)?)?;
        Some((destination, budget_mib))
    }

    /// Emit the `galaxy.queue.resubmit` audit + counters for one retry
    /// (the unlabeled total plus a per-reason labeled series).
    fn audit_resubmit(&self, audit: ResubmitAudit<'_>) {
        self.app.recorder().metrics().inc_counter(QUEUE_RESUBMITTED_COUNTER, 1);
        self.app
            .recorder()
            .metrics()
            .inc_counter(&format!("{QUEUE_RESUBMITTED_COUNTER}{{reason=\"{}\"}}", audit.reason), 1);
        self.app.recorder().event(
            "galaxy.queue.resubmit",
            vec![
                ("job_id", Value::from(audit.job_id)),
                ("failed_attempt", Value::from(u64::from(audit.attempts))),
                ("max_attempts", Value::from(u64::from(audit.max_attempts))),
                ("from_destination", Value::from(audit.from)),
                ("to_destination", Value::from(audit.to)),
                ("from_node", Value::from(audit.from_node.unwrap_or(""))),
                ("excluded_nodes", Value::from(audit.excluded.join(","))),
                ("exit_code", Value::from(i64::from(audit.exit_code))),
                ("reason", Value::from(audit.reason)),
            ],
        );
    }

    /// The resubmit policy for a job: its first destination's
    /// `resubmit_destination`/`resubmit_attempts` params when present,
    /// else the engine default.
    fn policy_for(&self, job_id: u64) -> ResubmitPolicy {
        self.jobs
            .get(&job_id)
            .and_then(|ctx| ctx.first_destination.as_deref())
            .and_then(|id| self.app.config().destination(id))
            .and_then(ResubmitPolicy::from_destination)
            .unwrap_or_else(|| self.default_resubmit.clone())
    }

    /// Mark a step failed and transitively cancel dependents that can now
    /// never run.
    fn fail_step(&mut self, wf: usize, step: usize) {
        let workflow = self.workflows[wf].dag.name.clone();
        self.workflows[wf].states[step] = StepState::Failed;
        let mut cancelled: Vec<usize> = Vec::new();
        loop {
            let run = &mut self.workflows[wf];
            let next =
                (0..run.dag.steps.len()).find(|j| {
                    run.states[*j] == StepState::Waiting
                        && run.dag.deps_of(*j).iter().any(|d| {
                            matches!(run.states[*d], StepState::Failed | StepState::Cancelled)
                        })
                });
            match next {
                Some(j) => {
                    run.states[j] = StepState::Cancelled;
                    cancelled.push(j);
                }
                None => break,
            }
        }
        for j in cancelled {
            self.app.recorder().event(
                "galaxy.queue.cancel",
                vec![
                    ("workflow", Value::from(workflow.as_str())),
                    ("step", Value::from(j)),
                    ("reason", Value::from("upstream_failed")),
                ],
            );
        }
    }
}
