//! Shareable job-lifecycle ledger for the operations plane.
//!
//! The [`QueueEngine`](crate::queue::QueueEngine) owns its submission
//! map behind `&mut self`, which an HTTP handler thread cannot touch.
//! The [`JobsLedger`] is the read side: a cheaply cloneable, lock-guarded
//! mirror the engine updates at every lifecycle step (submit, dispatch,
//! resubmit, conclude, discard), so `GET /api/jobs` can serve a
//! consistent view while waves are in flight.

use super::SubmissionState;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One job's lifecycle as the ops plane sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// Job id.
    pub job_id: u64,
    /// Submitting user.
    pub user: String,
    /// Tool id the job runs.
    pub tool: String,
    /// Engine lifecycle state.
    pub state: SubmissionState,
    /// Dispatch attempts so far.
    pub attempts: u32,
    /// Destination of the most recent dispatch, if any.
    pub destination: Option<String>,
    /// Fleet node the most recent dispatch placed the job on (from the
    /// job's `GALAXY_NODE` export), if any. Single-node deployments and
    /// CPU fallbacks leave it `None`.
    pub node: Option<String>,
    /// Submission priority.
    pub priority: u8,
    /// Virtual time the submission entered the queue.
    pub submitted_at: f64,
    /// Virtual time the job reached a terminal state.
    pub finished_at: Option<f64>,
}

/// Thread-safe job table; clone freely, all clones share state.
///
/// Snapshots are stored behind `Arc` so the read paths ([`JobsLedger::get`],
/// [`JobsLedger::all`]) hand out shared references instead of deep-copying
/// every `String` field — `GET /api/jobs` scraping a busy engine clones
/// one pointer per job, not the job. Writes go through
/// [`Arc::make_mut`], which only copies a snapshot when a reader still
/// holds it (copy-on-write).
#[derive(Clone, Default)]
pub struct JobsLedger {
    inner: Arc<Mutex<BTreeMap<u64, Arc<JobSnapshot>>>>,
}

impl JobsLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a job's snapshot.
    pub fn upsert(&self, snapshot: JobSnapshot) {
        self.inner.lock().insert(snapshot.job_id, Arc::new(snapshot));
    }

    /// Mutate a job's snapshot in place; no-op for unknown ids.
    pub fn update(&self, job_id: u64, f: impl FnOnce(&mut JobSnapshot)) {
        if let Some(snapshot) = self.inner.lock().get_mut(&job_id) {
            f(Arc::make_mut(snapshot));
        }
    }

    /// One job's snapshot (shared, not deep-copied).
    pub fn get(&self, job_id: u64) -> Option<Arc<JobSnapshot>> {
        self.inner.lock().get(&job_id).cloned()
    }

    /// Every tracked job, ordered by id. Each element is a shared handle:
    /// the hot read path costs one `Arc` bump per job.
    pub fn all(&self) -> Vec<Arc<JobSnapshot>> {
        self.inner.lock().values().cloned().collect()
    }

    /// Number of tracked jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(job_id: u64) -> JobSnapshot {
        JobSnapshot {
            job_id,
            user: "alice".to_string(),
            tool: "racon_gpu".to_string(),
            state: SubmissionState::Queued,
            attempts: 0,
            destination: None,
            node: None,
            priority: 0,
            submitted_at: 0.0,
            finished_at: None,
        }
    }

    #[test]
    fn clones_share_state_and_updates_apply() {
        let ledger = JobsLedger::new();
        let view = ledger.clone();
        ledger.upsert(snapshot(7));
        assert_eq!(view.len(), 1);
        view.update(7, |s| {
            s.state = SubmissionState::Ok;
            s.attempts = 2;
            s.finished_at = Some(3.5);
        });
        let got = ledger.get(7).unwrap();
        assert_eq!(got.state, SubmissionState::Ok);
        assert_eq!(got.attempts, 2);
        assert_eq!(got.finished_at, Some(3.5));
        // Unknown ids are ignored, not created.
        view.update(99, |s| s.attempts = 1);
        assert!(ledger.get(99).is_none());
    }

    #[test]
    fn all_is_ordered_by_job_id() {
        let ledger = JobsLedger::new();
        for id in [5u64, 1, 3] {
            ledger.upsert(snapshot(id));
        }
        let ids: Vec<u64> = ledger.all().iter().map(|s| s.job_id).collect();
        assert_eq!(ids, [1, 3, 5]);
    }

    #[test]
    fn reads_share_storage_until_a_write_intervenes() {
        let ledger = JobsLedger::new();
        ledger.upsert(snapshot(1));
        // Two snapshots of an unchanged job alias the same allocation —
        // the hot read path is an Arc bump, not a deep copy.
        let a = ledger.all();
        let b = ledger.all();
        assert!(Arc::ptr_eq(&a[0], &b[0]));
        assert!(Arc::ptr_eq(&a[0], &ledger.get(1).unwrap()));
        // A write while a reader holds the old snapshot copies on write:
        // the reader's view is immutable, the ledger's moves on.
        ledger.update(1, |s| s.attempts = 9);
        assert_eq!(a[0].attempts, 0);
        assert_eq!(ledger.get(1).unwrap().attempts, 9);
        assert!(!Arc::ptr_eq(&a[0], &ledger.get(1).unwrap()));
    }
}
