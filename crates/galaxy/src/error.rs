//! Error type for the Galaxy framework substrate.

use std::fmt;

/// Failures raised while parsing configuration, mapping, or running jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum GalaxyError {
    /// Underlying XML was malformed.
    Xml(String),
    /// A tool wrapper was structurally invalid (missing id, command, ...).
    BadWrapper(String),
    /// A referenced macro or macro file was not found.
    UnknownMacro(String),
    /// Template evaluation failed.
    Template(String),
    /// `job_conf.xml` was structurally invalid.
    BadJobConf(String),
    /// A job referenced an unknown tool id.
    UnknownTool(String),
    /// A job was mapped to an unknown destination id.
    UnknownDestination(String),
    /// A dynamic destination referenced an unregistered rule function.
    UnknownRule(String),
    /// A destination referenced an unknown runner plugin.
    UnknownRunner(String),
    /// Illegal job state transition.
    BadTransition { from: &'static str, to: &'static str },
    /// A container image could not be resolved or pulled.
    Container(String),
    /// The executor reported a tool failure.
    ToolFailed(String),
    /// A workflow step's `StepOutput` reference points at itself, a later
    /// step, or an index outside the workflow.
    InvalidStepReference {
        /// Workflow display name.
        workflow: String,
        /// Index of the step holding the bad reference.
        step: usize,
        /// The referenced step index.
        reference: usize,
        /// Why the reference is invalid (`self_reference`,
        /// `forward_reference`, `out_of_range`).
        reason: &'static str,
    },
    /// A DAG workflow's dependency edges form a cycle.
    WorkflowCycle(String),
    /// The job queue refused a submission (admission control).
    QueueRejected(String),
    /// An operation referenced a job id the app has no record of.
    UnknownJob(u64),
}

impl fmt::Display for GalaxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GalaxyError::Xml(m) => write!(f, "XML error: {m}"),
            GalaxyError::BadWrapper(m) => write!(f, "invalid tool wrapper: {m}"),
            GalaxyError::UnknownMacro(m) => write!(f, "unknown macro: {m}"),
            GalaxyError::Template(m) => write!(f, "template error: {m}"),
            GalaxyError::BadJobConf(m) => write!(f, "invalid job_conf: {m}"),
            GalaxyError::UnknownTool(m) => write!(f, "unknown tool: {m}"),
            GalaxyError::UnknownDestination(m) => write!(f, "unknown destination: {m}"),
            GalaxyError::UnknownRule(m) => write!(f, "unknown dynamic rule: {m}"),
            GalaxyError::UnknownRunner(m) => write!(f, "unknown runner plugin: {m}"),
            GalaxyError::BadTransition { from, to } => {
                write!(f, "illegal job state transition {from} -> {to}")
            }
            GalaxyError::Container(m) => write!(f, "container error: {m}"),
            GalaxyError::ToolFailed(m) => write!(f, "tool execution failed: {m}"),
            GalaxyError::InvalidStepReference { workflow, step, reference, reason } => {
                write!(
                    f,
                    "workflow {workflow:?} step {step}: invalid reference to step {reference} \
                     ({reason})"
                )
            }
            GalaxyError::WorkflowCycle(m) => write!(f, "workflow dependency cycle: {m}"),
            GalaxyError::QueueRejected(m) => write!(f, "queue rejected submission: {m}"),
            GalaxyError::UnknownJob(id) => write!(f, "unknown job id: {id}"),
        }
    }
}

impl std::error::Error for GalaxyError {}

impl From<xmlparse::ParseError> for GalaxyError {
    fn from(e: xmlparse::ParseError) -> Self {
        GalaxyError::Xml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_error_converts() {
        let parse_err = xmlparse::parse("<a>").unwrap_err();
        let g: GalaxyError = parse_err.into();
        assert!(matches!(g, GalaxyError::Xml(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = GalaxyError::BadTransition { from: "ok", to: "running" };
        assert!(e.to_string().contains("ok -> running"));
    }
}
