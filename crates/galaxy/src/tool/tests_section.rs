//! Tool self-tests: the `<tests>` section of a Galaxy wrapper.
//!
//! Real Galaxy wrappers embed functional tests that `planemo test` runs
//! against a live instance:
//!
//! ```xml
//! <tests>
//!   <test>
//!     <param name="threads" value="2"/>
//!     <output name="consensus">
//!       <assert_contents>
//!         <has_text text=">consensus"/>
//!         <has_n_lines min="1"/>
//!       </assert_contents>
//!     </output>
//!   </test>
//! </tests>
//! ```
//!
//! This module parses that section and runs the tests through a
//! [`crate::GalaxyApp`], asserting on the produced history datasets.

use crate::app::GalaxyApp;
use crate::error::GalaxyError;
use crate::params::ParamDict;
use xmlparse::Element;

/// One content assertion inside `<assert_contents>`.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputAssertion {
    /// `<has_text text="..."/>` — the output contains the text.
    HasText(String),
    /// `<not_has_text text="..."/>`.
    NotHasText(String),
    /// `<has_n_lines n="..."/>` or `min=`/`max=` bounds.
    HasNLines {
        /// Exact line count, when given.
        n: Option<usize>,
        /// Minimum line count.
        min: Option<usize>,
        /// Maximum line count.
        max: Option<usize>,
    },
    /// `<has_size value="..." delta="..."/>` in bytes.
    HasSize {
        /// Expected size.
        value: usize,
        /// Allowed deviation.
        delta: usize,
    },
}

impl OutputAssertion {
    /// Check against dataset content; `Err` carries the failure message.
    pub fn check(&self, content: &str) -> Result<(), String> {
        match self {
            OutputAssertion::HasText(text) => {
                if content.contains(text) {
                    Ok(())
                } else {
                    Err(format!("expected text {text:?} not found"))
                }
            }
            OutputAssertion::NotHasText(text) => {
                if content.contains(text) {
                    Err(format!("forbidden text {text:?} present"))
                } else {
                    Ok(())
                }
            }
            OutputAssertion::HasNLines { n, min, max } => {
                let lines = content.lines().count();
                if let Some(n) = n {
                    if lines != *n {
                        return Err(format!("expected {n} lines, found {lines}"));
                    }
                }
                if let Some(min) = min {
                    if lines < *min {
                        return Err(format!("expected ≥{min} lines, found {lines}"));
                    }
                }
                if let Some(max) = max {
                    if lines > *max {
                        return Err(format!("expected ≤{max} lines, found {lines}"));
                    }
                }
                Ok(())
            }
            OutputAssertion::HasSize { value, delta } => {
                let size = content.len();
                if size.abs_diff(*value) <= *delta {
                    Ok(())
                } else {
                    Err(format!("expected size {value}±{delta}, found {size}"))
                }
            }
        }
    }
}

/// Expected output of one test.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedOutput {
    /// The `<data name=...>` output this refers to.
    pub name: String,
    /// Content assertions.
    pub assertions: Vec<OutputAssertion>,
}

/// One `<test>` of a tool.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ToolTest {
    /// Parameter values the test submits.
    pub params: Vec<(String, String)>,
    /// Output expectations.
    pub outputs: Vec<ExpectedOutput>,
}

/// Parse the `<tests>` element.
pub fn parse_tests(tests_el: &Element) -> Result<Vec<ToolTest>, GalaxyError> {
    let mut tests = Vec::new();
    for test_el in tests_el.children_named("test") {
        let mut test = ToolTest::default();
        for param in test_el.children_named("param") {
            let name = param
                .attr("name")
                .ok_or_else(|| GalaxyError::BadWrapper("<param> in test without name".into()))?;
            let value = param.attr("value").unwrap_or("").to_string();
            test.params.push((name.to_string(), value));
        }
        for output in test_el.children_named("output") {
            let name = output
                .attr("name")
                .ok_or_else(|| GalaxyError::BadWrapper("<output> in test without name".into()))?;
            let mut assertions = Vec::new();
            if let Some(contents) = output.find("assert_contents") {
                for a in contents.child_elements() {
                    assertions.push(parse_assertion(a)?);
                }
            }
            test.outputs.push(ExpectedOutput { name: name.to_string(), assertions });
        }
        tests.push(test);
    }
    Ok(tests)
}

fn parse_assertion(el: &Element) -> Result<OutputAssertion, GalaxyError> {
    let attr_num = |name: &str| -> Option<usize> { el.attr(name).and_then(|v| v.parse().ok()) };
    match el.name() {
        "has_text" => Ok(OutputAssertion::HasText(
            el.attr("text")
                .ok_or_else(|| GalaxyError::BadWrapper("<has_text> without text".into()))?
                .to_string(),
        )),
        "not_has_text" => Ok(OutputAssertion::NotHasText(
            el.attr("text")
                .ok_or_else(|| GalaxyError::BadWrapper("<not_has_text> without text".into()))?
                .to_string(),
        )),
        "has_n_lines" => Ok(OutputAssertion::HasNLines {
            n: attr_num("n"),
            min: attr_num("min"),
            max: attr_num("max"),
        }),
        "has_size" => Ok(OutputAssertion::HasSize {
            value: attr_num("value")
                .ok_or_else(|| GalaxyError::BadWrapper("<has_size> without value".into()))?,
            delta: attr_num("delta").unwrap_or(0),
        }),
        other => Err(GalaxyError::BadWrapper(format!("unknown assertion <{other}>"))),
    }
}

/// Result of running one tool test.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolTestResult {
    /// Index of the test in the wrapper.
    pub index: usize,
    /// Failure messages (empty = pass).
    pub failures: Vec<String>,
}

impl ToolTestResult {
    /// Did the test pass?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl GalaxyApp {
    /// Run every embedded test of `tool_id` (Galaxy's `planemo test`):
    /// submit with the test's parameters and check each output dataset's
    /// assertions.
    pub fn run_tool_tests(&mut self, tool_id: &str) -> Result<Vec<ToolTestResult>, GalaxyError> {
        let tests = self
            .tool(tool_id)
            .ok_or_else(|| GalaxyError::UnknownTool(tool_id.to_string()))?
            .tests
            .clone();
        let mut results = Vec::with_capacity(tests.len());
        for (index, test) in tests.iter().enumerate() {
            let mut failures = Vec::new();
            let mut params = ParamDict::new();
            for (k, v) in &test.params {
                params.set(k.clone(), v.clone());
            }
            match self.submit(tool_id, &params) {
                Err(e) => failures.push(format!("job failed: {e}")),
                Ok(job_id) => {
                    for expected in &test.outputs {
                        let dataset = self
                            .history()
                            .datasets_for_job(job_id)
                            .into_iter()
                            .find(|d| d.name == expected.name)
                            .cloned();
                        match dataset {
                            None => failures
                                .push(format!("output {:?} was not produced", expected.name)),
                            Some(ds) => {
                                for assertion in &expected.assertions {
                                    if let Err(msg) = assertion.check(&ds.content) {
                                        failures.push(format!("output {:?}: {msg}", expected.name));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            results.push(ToolTestResult { index, failures });
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::conf::{JobConfig, GYAN_JOB_CONF};
    use crate::tool::macros::MacroLibrary;

    const TOOL_WITH_TESTS: &str = r#"<tool id="echo" name="Echo">
      <command>echo $text</command>
      <inputs><param name="text" type="text" value="default"/></inputs>
      <outputs><data name="out" format="txt"/></outputs>
      <tests>
        <test>
          <param name="text" value="hello world"/>
          <output name="out">
            <assert_contents>
              <has_text text="hello"/>
              <not_has_text text="goodbye"/>
              <has_n_lines n="1"/>
              <has_size value="11" delta="2"/>
            </assert_contents>
          </output>
        </test>
        <test>
          <param name="text" value="two"/>
          <output name="out">
            <assert_contents><has_text text="THIS WILL FAIL"/></assert_contents>
          </output>
        </test>
      </tests>
    </tool>"#;

    struct EchoExecutor;
    impl crate::runners::JobExecutor for EchoExecutor {
        fn execute(&self, plan: &crate::runners::ExecutionPlan) -> crate::runners::ExecutionResult {
            crate::runners::ExecutionResult::ok(
                plan.command_line.strip_prefix("echo ").unwrap_or(""),
            )
        }
    }

    fn app() -> GalaxyApp {
        let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
        app.install_tool_xml(TOOL_WITH_TESTS, &MacroLibrary::new()).unwrap();
        app.set_executor(Box::new(EchoExecutor));
        app.register_rule(
            "gpu_dynamic_destination",
            Box::new(|_t, _j, _c| Ok("local_cpu".to_string())),
        );
        app
    }

    #[test]
    fn wrapper_tests_are_parsed() {
        let app = app();
        let tool = app.tool("echo").unwrap();
        assert_eq!(tool.tests.len(), 2);
        assert_eq!(tool.tests[0].params, vec![("text".to_string(), "hello world".to_string())]);
        assert_eq!(tool.tests[0].outputs[0].assertions.len(), 4);
    }

    #[test]
    fn passing_and_failing_tests_reported() {
        let mut app = app();
        let results = app.run_tool_tests("echo").unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].passed(), "{:?}", results[0].failures);
        assert!(!results[1].passed());
        assert!(results[1].failures[0].contains("THIS WILL FAIL"));
    }

    #[test]
    fn assertions_check_correctly() {
        assert!(OutputAssertion::HasText("abc".into()).check("xxabcxx").is_ok());
        assert!(OutputAssertion::HasText("abc".into()).check("nope").is_err());
        assert!(OutputAssertion::NotHasText("abc".into()).check("nope").is_ok());
        let lines = OutputAssertion::HasNLines { n: None, min: Some(2), max: Some(3) };
        assert!(lines.check("a\nb\n").is_ok());
        assert!(lines.check("a\n").is_err());
        assert!(lines.check("a\nb\nc\nd\n").is_err());
        let size = OutputAssertion::HasSize { value: 10, delta: 1 };
        assert!(size.check("0123456789").is_ok());
        assert!(size.check("01234567891").is_ok());
        assert!(size.check("0123").is_err());
    }

    #[test]
    fn unknown_assertion_rejected() {
        let doc = xmlparse::parse(
            r#"<tests><test><output name="o"><assert_contents><has_magic/></assert_contents></output></test></tests>"#,
        )
        .unwrap();
        assert!(matches!(parse_tests(doc.root()), Err(GalaxyError::BadWrapper(_))));
    }

    #[test]
    fn unknown_tool_errors() {
        let mut app = app();
        assert!(matches!(app.run_tool_tests("ghost"), Err(GalaxyError::UnknownTool(_))));
    }
}
