//! Parsing tool wrapper XML into [`Tool`] values.
//!
//! This is the *parser* the paper's Challenge-I refers to: it interprets
//! `<requirements>` — including GYAN's new `compute`/`gpu` requirement —
//! plus the command template, inputs, outputs, and container references.

use crate::error::GalaxyError;
use crate::template::Template;
use crate::tool::macros::{expand_macros, MacroLibrary};
use crate::tool::tests_section::parse_tests;
use crate::tool::{
    ContainerRef, ContainerType, OutputDecl, ParamDecl, Requirement, RequirementType, Tool,
};
use xmlparse::{parse, Element};

/// Parse a tool wrapper from XML source, resolving macro imports against
/// `library`.
pub fn parse_tool(src: &str, library: &MacroLibrary) -> Result<Tool, GalaxyError> {
    let doc = parse(src)?;
    if doc.root().name() != "tool" {
        return Err(GalaxyError::BadWrapper(format!(
            "root element must be <tool>, found <{}>",
            doc.root().name()
        )));
    }
    let root = expand_macros(doc.root(), library)?;

    let id = root
        .attr("id")
        .filter(|s| !s.is_empty())
        .ok_or_else(|| GalaxyError::BadWrapper("tool is missing an id".into()))?
        .to_string();
    let name = root.attr("name").unwrap_or(&id).to_string();
    let version = root.attr("version").unwrap_or("1.0").to_string();
    let description = root.find_text("description").unwrap_or_default();

    let command_source = root
        .find_text("command")
        .ok_or_else(|| GalaxyError::BadWrapper(format!("tool {id} has no <command>")))?;
    let command = Template::parse(&command_source)?;

    let mut requirements = Vec::new();
    let mut containers = Vec::new();
    if let Some(reqs_el) = root.find("requirements") {
        for req_el in reqs_el.children_named("requirement") {
            requirements.push(parse_requirement(req_el)?);
        }
        for cont_el in reqs_el.children_named("container") {
            containers.push(parse_container(cont_el)?);
        }
    }

    let inputs = match root.find("inputs") {
        Some(inputs_el) => inputs_el
            .find_all("param")
            .into_iter()
            .map(parse_param)
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };

    let outputs = match root.find("outputs") {
        Some(outputs_el) => outputs_el
            .find_all("data")
            .into_iter()
            .map(parse_output)
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };

    let tests = match root.find("tests") {
        Some(tests_el) => parse_tests(tests_el)?,
        None => Vec::new(),
    };

    Ok(Tool {
        id,
        name,
        version,
        description,
        requirements,
        containers,
        command_source,
        command,
        inputs,
        outputs,
        tests,
    })
}

fn parse_requirement(el: &Element) -> Result<Requirement, GalaxyError> {
    let rtype = RequirementType::from_attr(
        el.attr("type")
            .ok_or_else(|| GalaxyError::BadWrapper("<requirement> without type".into()))?,
    );
    let name = el.text();
    if name.is_empty() {
        return Err(GalaxyError::BadWrapper("<requirement> without a name".into()));
    }
    Ok(Requirement { rtype, name, version: el.attr("version").map(str::to_string) })
}

fn parse_container(el: &Element) -> Result<ContainerRef, GalaxyError> {
    let ctype = match el.attr("type") {
        Some("docker") => ContainerType::Docker,
        Some("singularity") => ContainerType::Singularity,
        other => {
            return Err(GalaxyError::BadWrapper(format!("bad container type {other:?}")));
        }
    };
    let image = el.text();
    if image.is_empty() {
        return Err(GalaxyError::BadWrapper("<container> without an image".into()));
    }
    Ok(ContainerRef { ctype, image })
}

fn parse_param(el: &Element) -> Result<ParamDecl, GalaxyError> {
    let name = el
        .attr("name")
        .ok_or_else(|| GalaxyError::BadWrapper("<param> without name".into()))?
        .to_string();
    Ok(ParamDecl {
        name,
        ptype: el.attr("type").unwrap_or("text").to_string(),
        default: el.attr("value").map(str::to_string),
        label: el.attr("label").map(str::to_string),
    })
}

fn parse_output(el: &Element) -> Result<OutputDecl, GalaxyError> {
    let name = el
        .attr("name")
        .ok_or_else(|| GalaxyError::BadWrapper("<data> output without name".into()))?
        .to_string();
    Ok(OutputDecl { name, format: el.attr("format").unwrap_or("data").to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A wrapper in the shape of the paper's Code 3 (`racon.xml`), using
    /// the paper's Code 1 macros file.
    pub const RACON_WRAPPER: &str = r#"<tool id="racon_gpu" name="Racon" version="@TOOL_VERSION@">
  <description>Consensus module for raw de novo DNA assembly</description>
  <macros><import>macros.xml</import></macros>
  <expand macro="requirements"/>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
racon_gpu -t $threads --cudapoa-batches $batches $reads $overlaps $target > $consensus
#else
racon -t $threads $reads $overlaps $target > $consensus
#end if
]]></command>
  <inputs>
    <param name="reads" type="data" label="Reads"/>
    <param name="overlaps" type="data" label="Overlaps"/>
    <param name="target" type="data" label="Target assembly"/>
    <param name="threads" type="integer" value="4" label="CPU threads"/>
    <param name="batches" type="integer" value="1" label="CUDA POA batches"/>
  </inputs>
  <outputs>
    <data name="consensus" format="fasta"/>
  </outputs>
</tool>"#;

    pub const RACON_MACROS: &str = r#"<macros>
  <token name="@TOOL_VERSION@">1.4.3</token>
  <xml name="requirements">
    <requirements>
      <requirement type="package" version="@TOOL_VERSION@">racon</requirement>
      <requirement type="compute">gpu</requirement>
      <container type="docker">gulsumgudukbay/racon_dockerfile</container>
    </requirements>
  </xml>
</macros>"#;

    fn library() -> MacroLibrary {
        let mut lib = MacroLibrary::new();
        lib.add_file("macros.xml", RACON_MACROS);
        lib
    }

    #[test]
    fn parses_paper_racon_wrapper() {
        let tool = parse_tool(RACON_WRAPPER, &library()).unwrap();
        assert_eq!(tool.id, "racon_gpu");
        assert_eq!(tool.version, "1.4.3"); // token-substituted
        assert!(tool.requires_gpu());
        assert!(tool.requested_gpu_ids().is_empty()); // unpinned
        assert_eq!(tool.requirements.len(), 2);
        assert_eq!(
            tool.container(ContainerType::Docker).unwrap().image,
            "gulsumgudukbay/racon_dockerfile"
        );
        assert_eq!(tool.inputs.len(), 5);
        assert_eq!(tool.inputs[3].default.as_deref(), Some("4"));
        assert_eq!(tool.outputs[0].format, "fasta");
        assert!(tool.command_source.contains("__galaxy_gpu_enabled__"));
    }

    #[test]
    fn gpu_requirement_with_pinned_devices() {
        let src = r#"<tool id="bonito" name="Bonito">
          <requirements><requirement type="compute" version="1">gpu</requirement></requirements>
          <command>bonito basecaller $model $reads</command>
        </tool>"#;
        let tool = parse_tool(src, &MacroLibrary::new()).unwrap();
        assert_eq!(tool.requested_gpu_ids(), vec![1]);
        let src_multi = src.replace("version=\"1\"", "version=\"0,1\"");
        let tool = parse_tool(&src_multi, &MacroLibrary::new()).unwrap();
        assert_eq!(tool.requested_gpu_ids(), vec![0, 1]);
    }

    #[test]
    fn cpu_only_tool_has_no_gpu_requirement() {
        let src = r#"<tool id="sort" name="Sort">
          <requirements><requirement type="package" version="8.25">coreutils</requirement></requirements>
          <command>sort $input > $output</command>
        </tool>"#;
        let tool = parse_tool(src, &MacroLibrary::new()).unwrap();
        assert!(!tool.requires_gpu());
        assert!(tool.gpu_requirement().is_none());
    }

    #[test]
    fn missing_id_rejected() {
        let src = "<tool name=\"x\"><command>x</command></tool>";
        assert!(matches!(parse_tool(src, &MacroLibrary::new()), Err(GalaxyError::BadWrapper(_))));
    }

    #[test]
    fn missing_command_rejected() {
        let src = "<tool id=\"x\"/>";
        assert!(matches!(parse_tool(src, &MacroLibrary::new()), Err(GalaxyError::BadWrapper(_))));
    }

    #[test]
    fn non_tool_root_rejected() {
        assert!(parse_tool("<nottool id=\"x\"/>", &MacroLibrary::new()).is_err());
    }

    #[test]
    fn bad_container_type_rejected() {
        let src = r#"<tool id="x"><requirements><container type="lxc">img</container></requirements>
          <command>x</command></tool>"#;
        assert!(parse_tool(src, &MacroLibrary::new()).is_err());
    }

    #[test]
    fn command_template_is_parsed_and_renderable() {
        let tool = parse_tool(RACON_WRAPPER, &library()).unwrap();
        let mut params = crate::params::ParamDict::new();
        for (k, v) in [
            ("__galaxy_gpu_enabled__", "true"),
            ("threads", "4"),
            ("batches", "16"),
            ("reads", "reads.fq"),
            ("overlaps", "ovl.paf"),
            ("target", "draft.fa"),
            ("consensus", "out.fa"),
        ] {
            params.set(k, v);
        }
        let cmd = tool.command.render(&params).unwrap();
        assert!(cmd.contains("racon_gpu -t 4 --cudapoa-batches 16"));
        assert!(!cmd.contains("#if"));
    }
}
