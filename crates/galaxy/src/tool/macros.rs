//! Macro expansion for tool wrappers.
//!
//! Galaxy wrappers factor shared XML into `macros.xml` files (the paper's
//! Code 1 is such a file). A wrapper references them with:
//!
//! ```xml
//! <macros>
//!   <import>macros.xml</import>
//!   <xml name="inline_macro">...</xml>
//!   <token name="@VERSION@">1.4.3</token>
//! </macros>
//! ...
//! <expand macro="requirements"/>
//! ```
//!
//! `<xml name="...">` defines an element macro whose *children* replace any
//! `<expand macro="..."/>` element; `<token name="@X@">` defines a textual
//! token substituted into attribute values and text content.

use crate::error::GalaxyError;
use std::collections::HashMap;
use xmlparse::{parse, Element, Node};

/// Provides the contents of importable macro files by name — the
/// "filesystem" of a tool directory.
#[derive(Debug, Clone, Default)]
pub struct MacroLibrary {
    files: HashMap<String, String>,
}

impl MacroLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a macro file's XML content under its file name.
    pub fn add_file(&mut self, name: impl Into<String>, content: impl Into<String>) {
        self.files.insert(name.into(), content.into());
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(String::as_str)
    }
}

/// Definitions gathered from `<macros>` sections and imported files.
#[derive(Debug, Default)]
struct Definitions {
    xml_macros: HashMap<String, Vec<Node>>,
    tokens: Vec<(String, String)>,
}

/// Expand all macros in a parsed tool element: collect definitions from
/// inline `<macros>` sections and `<import>`ed files, replace every
/// `<expand macro="..."/>`, substitute tokens, and strip the `<macros>`
/// section itself.
pub fn expand_macros(root: &Element, library: &MacroLibrary) -> Result<Element, GalaxyError> {
    let mut defs = Definitions::default();

    for macros_el in root.find_all("macros") {
        collect_definitions(macros_el, library, &mut defs)?;
    }

    let mut expanded = expand_element(root, &defs)?;
    strip_macros_sections(&mut expanded);
    substitute_tokens(&mut expanded, &defs.tokens);
    Ok(expanded)
}

fn collect_definitions(
    macros_el: &Element,
    library: &MacroLibrary,
    defs: &mut Definitions,
) -> Result<(), GalaxyError> {
    for child in macros_el.child_elements() {
        match child.name() {
            "import" => {
                let file_name = child.text();
                let content = library
                    .get(&file_name)
                    .ok_or_else(|| GalaxyError::UnknownMacro(format!("file {file_name}")))?;
                let doc = parse(content)?;
                if doc.root().name() != "macros" {
                    return Err(GalaxyError::BadWrapper(format!(
                        "macro file {file_name} root must be <macros>, found <{}>",
                        doc.root().name()
                    )));
                }
                collect_definitions(doc.root(), library, defs)?;
            }
            "xml" => {
                let name = child
                    .attr("name")
                    .ok_or_else(|| GalaxyError::BadWrapper("<xml> macro without name".into()))?;
                defs.xml_macros.insert(name.to_string(), child.children().to_vec());
            }
            "token" => {
                let name = child
                    .attr("name")
                    .ok_or_else(|| GalaxyError::BadWrapper("<token> without name".into()))?;
                defs.tokens.push((name.to_string(), child.text()));
            }
            // Real Galaxy also allows bare requirement elements etc. inside
            // macros files only via named macros; ignore other children.
            _ => {}
        }
    }
    Ok(())
}

fn expand_element(element: &Element, defs: &Definitions) -> Result<Element, GalaxyError> {
    let mut out = Element::new(element.name());
    for (k, v) in element.attrs() {
        out.set_attr(k.clone(), v.clone());
    }
    for node in element.children() {
        match node {
            Node::Element(child) if child.name() == "expand" => {
                let macro_name = child
                    .attr("macro")
                    .ok_or_else(|| GalaxyError::BadWrapper("<expand> without macro=".into()))?;
                let body = defs
                    .xml_macros
                    .get(macro_name)
                    .ok_or_else(|| GalaxyError::UnknownMacro(macro_name.to_string()))?;
                for replacement in body {
                    match replacement {
                        Node::Element(e) => out.push_element(expand_element(e, defs)?),
                        other => out.push(other.clone()),
                    }
                }
            }
            Node::Element(child) => out.push_element(expand_element(child, defs)?),
            other => out.push(other.clone()),
        }
    }
    Ok(out)
}

fn strip_macros_sections(element: &mut Element) {
    element.children_mut().retain(|n| !matches!(n, Node::Element(e) if e.name() == "macros"));
    for node in element.children_mut() {
        if let Node::Element(e) = node {
            strip_macros_sections(e);
        }
    }
}

fn substitute_tokens(element: &mut Element, tokens: &[(String, String)]) {
    if tokens.is_empty() {
        return;
    }
    let subst = |s: &str| -> String {
        let mut out = s.to_string();
        for (name, value) in tokens {
            out = out.replace(name.as_str(), value);
        }
        out
    };
    let attrs: Vec<(String, String)> =
        element.attrs().iter().map(|(k, v)| (k.clone(), subst(v))).collect();
    for (k, v) in attrs {
        element.set_attr(k, v);
    }
    for node in element.children_mut() {
        match node {
            Node::Text(t) | Node::CData(t) => *t = subst(t),
            Node::Element(e) => substitute_tokens(e, tokens),
            Node::Comment(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Code 1 `macros.xml`, verbatim in structure.
    const PAPER_MACROS: &str = r#"<macros>
        <xml name="requirements">
            <requirements>
                <requirement type="package" version="1.4.3">racon</requirement>
                <requirement type="compute">gpu</requirement>
            </requirements>
        </xml>
        <token name="@TOOL_VERSION@">1.4.3</token>
    </macros>"#;

    #[test]
    fn expands_imported_macro_like_paper_code1() {
        let mut lib = MacroLibrary::new();
        lib.add_file("macros.xml", PAPER_MACROS);
        let tool = parse(
            r#"<tool id="racon" version="@TOOL_VERSION@">
                 <macros><import>macros.xml</import></macros>
                 <expand macro="requirements"/>
               </tool>"#,
        )
        .unwrap();
        let expanded = expand_macros(tool.root(), &lib).unwrap();
        // <macros> stripped, <expand> replaced by <requirements>.
        assert!(expanded.child("macros").is_none());
        let reqs = expanded.find_all("requirement");
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].attr("type"), Some("compute"));
        assert_eq!(reqs[1].text(), "gpu");
        // Token substituted in the attribute.
        assert_eq!(expanded.attr("version"), Some("1.4.3"));
    }

    #[test]
    fn inline_xml_macro_expansion() {
        let tool = parse(
            r#"<tool id="t">
                 <macros><xml name="io"><inputs><param name="x"/></inputs></xml></macros>
                 <expand macro="io"/>
               </tool>"#,
        )
        .unwrap();
        let expanded = expand_macros(tool.root(), &MacroLibrary::new()).unwrap();
        assert!(expanded.find("param").is_some());
    }

    #[test]
    fn nested_expand_inside_macro_body() {
        let tool = parse(
            r#"<tool id="t">
                 <macros>
                   <xml name="outer"><wrap><expand macro="inner"/></wrap></xml>
                   <xml name="inner"><leaf/></xml>
                 </macros>
                 <expand macro="outer"/>
               </tool>"#,
        )
        .unwrap();
        let expanded = expand_macros(tool.root(), &MacroLibrary::new()).unwrap();
        assert!(expanded.find("wrap").unwrap().find("leaf").is_some());
    }

    #[test]
    fn token_substitution_in_text() {
        let tool = parse(
            r#"<tool id="t">
                 <macros><token name="@EXE@">racon_gpu</token></macros>
                 <command>@EXE@ --help</command>
               </tool>"#,
        )
        .unwrap();
        let expanded = expand_macros(tool.root(), &MacroLibrary::new()).unwrap();
        assert_eq!(expanded.find_text("command").unwrap(), "racon_gpu --help");
    }

    #[test]
    fn unknown_macro_errors() {
        let tool = parse(r#"<tool id="t"><expand macro="nope"/></tool>"#).unwrap();
        assert!(matches!(
            expand_macros(tool.root(), &MacroLibrary::new()),
            Err(GalaxyError::UnknownMacro(_))
        ));
    }

    #[test]
    fn missing_import_file_errors() {
        let tool =
            parse(r#"<tool id="t"><macros><import>gone.xml</import></macros></tool>"#).unwrap();
        assert!(matches!(
            expand_macros(tool.root(), &MacroLibrary::new()),
            Err(GalaxyError::UnknownMacro(_))
        ));
    }

    #[test]
    fn bad_macro_file_root_errors() {
        let mut lib = MacroLibrary::new();
        lib.add_file("m.xml", "<notmacros/>");
        let tool = parse(r#"<tool id="t"><macros><import>m.xml</import></macros></tool>"#).unwrap();
        assert!(matches!(expand_macros(tool.root(), &lib), Err(GalaxyError::BadWrapper(_))));
    }
}
