//! Tools and their XML wrapper files.
//!
//! A Galaxy *tool* is described by an XML wrapper ("tool configuration
//! file") that names the executable, its requirements, its parameters, and
//! its outputs. GYAN's Challenge-I adds a new requirement *type* —
//! `compute` with name `gpu` — to this format (paper Code 1), and reuses
//! the requirement's `version` attribute to carry requested GPU minor IDs
//! (paper §IV-C).

pub mod macros;
pub mod tests_section;
pub mod wrapper;

use crate::template::Template;

/// The `type=` attribute of a `<requirement>` element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequirementType {
    /// A software package (resolved via conda in real Galaxy).
    Package,
    /// A raw binary on `$PATH`.
    Binary,
    /// An environment set.
    Set,
    /// GYAN's new hardware requirement type (paper Code 1, line 5).
    Compute,
    /// Anything else, preserved verbatim.
    Other(String),
}

impl RequirementType {
    /// Parse from the XML attribute value.
    pub fn from_attr(s: &str) -> Self {
        match s {
            "package" => RequirementType::Package,
            "binary" => RequirementType::Binary,
            "set" => RequirementType::Set,
            "compute" => RequirementType::Compute,
            other => RequirementType::Other(other.to_string()),
        }
    }

    /// The XML attribute value.
    pub fn as_attr(&self) -> &str {
        match self {
            RequirementType::Package => "package",
            RequirementType::Binary => "binary",
            RequirementType::Set => "set",
            RequirementType::Compute => "compute",
            RequirementType::Other(s) => s,
        }
    }
}

/// One `<requirement>` of a tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requirement {
    /// Requirement type (`package`, `compute`, ...).
    pub rtype: RequirementType,
    /// The element's text content — the package name, or `gpu` for GYAN's
    /// compute requirement.
    pub name: String,
    /// The `version` attribute. For packages this is a semver; for GYAN's
    /// `compute`/`gpu` requirement it carries the requested GPU minor
    /// ID(s), e.g. `"1"` or `"0,1"` (paper §IV-C: "the 'version' tag
    /// corresponds to the GPU minor ID(s) in our design").
    pub version: Option<String>,
}

impl Requirement {
    /// A package requirement.
    pub fn package(name: impl Into<String>, version: impl Into<String>) -> Self {
        Requirement {
            rtype: RequirementType::Package,
            name: name.into(),
            version: Some(version.into()),
        }
    }

    /// GYAN's GPU compute requirement, optionally pinned to device IDs.
    pub fn gpu(device_ids: Option<&str>) -> Self {
        Requirement {
            rtype: RequirementType::Compute,
            name: "gpu".to_string(),
            version: device_ids.map(str::to_string),
        }
    }

    /// True when this is the `compute`/`gpu` requirement GYAN looks for.
    pub fn is_gpu(&self) -> bool {
        self.rtype == RequirementType::Compute && self.name == "gpu"
    }
}

/// Container binding type of a `<container>` element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerType {
    /// Docker image.
    Docker,
    /// Singularity image.
    Singularity,
}

/// A `<container>` reference inside `<requirements>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerRef {
    /// Docker or Singularity.
    pub ctype: ContainerType,
    /// Image identifier, e.g. `gulsumgudukbay/racon_dockerfile`.
    pub image: String,
}

/// A declared `<param>` input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name (template variable).
    pub name: String,
    /// Galaxy param type string (`integer`, `text`, `data`, `boolean`, ...).
    pub ptype: String,
    /// Default value, if declared.
    pub default: Option<String>,
    /// UI label.
    pub label: Option<String>,
}

/// A declared `<data>` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputDecl {
    /// Output name (template variable).
    pub name: String,
    /// Datatype extension (`fasta`, `fastq`, `txt`, ...).
    pub format: String,
}

/// A fully parsed tool.
#[derive(Debug, Clone)]
pub struct Tool {
    /// Unique tool id (`racon_gpu`).
    pub id: String,
    /// Display name.
    pub name: String,
    /// Tool version string.
    pub version: String,
    /// Help/description text.
    pub description: String,
    /// Requirements, including any GYAN GPU requirement.
    pub requirements: Vec<Requirement>,
    /// Container references, in declaration order.
    pub containers: Vec<ContainerRef>,
    /// The raw command template source.
    pub command_source: String,
    /// Parsed command template.
    pub command: Template,
    /// Declared inputs.
    pub inputs: Vec<ParamDecl>,
    /// Declared outputs.
    pub outputs: Vec<OutputDecl>,
    /// Embedded functional tests (`<tests>` section).
    pub tests: Vec<tests_section::ToolTest>,
}

impl Tool {
    /// The tool's GPU requirement, if it declares one.
    pub fn gpu_requirement(&self) -> Option<&Requirement> {
        self.requirements.iter().find(|r| r.is_gpu())
    }

    /// Whether the tool declares the GYAN GPU requirement.
    pub fn requires_gpu(&self) -> bool {
        self.gpu_requirement().is_some()
    }

    /// Requested GPU minor IDs from the requirement's version tag, parsed
    /// into numbers; empty when unpinned.
    pub fn requested_gpu_ids(&self) -> Vec<u32> {
        self.gpu_requirement()
            .and_then(|r| r.version.as_deref())
            .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
            .unwrap_or_default()
    }

    /// First container reference of the given type.
    pub fn container(&self, ctype: ContainerType) -> Option<&ContainerRef> {
        self.containers.iter().find(|c| c.ctype == ctype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirement_type_roundtrip() {
        for s in ["package", "binary", "set", "compute", "weird"] {
            assert_eq!(RequirementType::from_attr(s).as_attr(), s);
        }
    }

    #[test]
    fn gpu_requirement_detection() {
        let r = Requirement::gpu(Some("0,1"));
        assert!(r.is_gpu());
        let pkg = Requirement::package("racon", "1.4.3");
        assert!(!pkg.is_gpu());
        // compute-typed requirement with a different name is not a GPU req
        let other =
            Requirement { rtype: RequirementType::Compute, name: "fpga".into(), version: None };
        assert!(!other.is_gpu());
    }
}
