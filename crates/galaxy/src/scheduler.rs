//! A concurrent handler pool for plan execution.
//!
//! Real Galaxy dispatches jobs through handler processes with worker
//! threads (the `workers` attribute of the `<plugin>` element in
//! `job_conf.xml`). This module provides that concurrency for the
//! simulated stack: [`HandlerPool`] runs `ExecutionPlan`s on a fixed set
//! of worker threads over a crossbeam channel, so several tools can
//! occupy the simulated GPUs *simultaneously* — the situation the paper's
//! multi-GPU cases snapshot.
//!
//! The pool is instrumented: it exports a queue-depth gauge, a busy-worker
//! gauge, and a per-job queue-wait histogram through its [`Recorder`]'s
//! metrics registry, and completion is signalled through a condition
//! variable so [`HandlerPool::wait_all`] blocks instead of spinning.
//!
//! ## Shutdown semantics
//!
//! Dropping a pool **drains** it by default: queued plans finish before
//! the workers exit, exactly like [`HandlerPool::shutdown`]. We chose
//! drain-on-drop because silently discarding accepted work would violate
//! the contract `enqueue` implies (Galaxy handlers likewise finish their
//! queue on graceful restart), and the virtual-clock executors make
//! "finish everything" cheap. The alternative is explicit:
//! [`HandlerPool::shutdown_now`] (or [`HandlerPool::set_shutdown_mode`]
//! with [`ShutdownMode::Discard`]) marks queued-but-unstarted plans as
//! skipped so the workers exit as soon as their in-flight plan completes.
//!
//! (`GalaxyApp::submit` remains the synchronous single-job path; the
//! queue engine in [`crate::queue`] dispatches through this pool.)

use crate::runners::{ExecutionPlan, ExecutionResult, JobExecutor};
use crossbeam::channel::{unbounded, Sender};
use obs::Recorder;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Metric: jobs currently enqueued but not yet picked up by a worker.
pub const QUEUE_DEPTH_GAUGE: &str = "galaxy_pool_queue_depth";
/// Metric: workers currently executing a plan.
pub const WORKERS_BUSY_GAUGE: &str = "galaxy_pool_workers_busy";
/// Metric: worker threads the pool was spawned with (constant per pool;
/// the ops `/healthz` saturation check divides busy by this).
pub const WORKERS_TOTAL_GAUGE: &str = "galaxy_pool_workers_total";
/// Metric: seconds each job spent queued before a worker picked it up.
pub const QUEUE_WAIT_HISTOGRAM: &str = "galaxy_pool_queue_wait_seconds";
/// Metric: total plans executed by the pool.
pub const JOBS_EXECUTED_COUNTER: &str = "galaxy_pool_jobs_executed_total";
/// Metric: executed plans that reported a non-zero exit code.
pub const JOBS_FAILED_COUNTER: &str = "galaxy_pool_jobs_failed_total";

/// What happens to queued-but-unstarted plans when the pool stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShutdownMode {
    /// Finish every queued plan before the workers exit (the default —
    /// accepted work is never silently dropped).
    #[default]
    Drain,
    /// Skip queued plans; workers exit after their in-flight plan.
    Discard,
}

enum Message {
    /// A plan plus its enqueue timestamp (recorder clock).
    Run(Box<ExecutionPlan>, f64),
    Shutdown,
}

/// Callback invoked with a plan's job id when the plan is skipped by a
/// discard shutdown (it must be `Sync`: workers call it concurrently).
pub type DiscardListener = Arc<dyn Fn(u64) + Send + Sync>;

/// Completion tracking shared between workers and `wait_all`.
struct Tracker {
    pending: Mutex<usize>,
    done: Condvar,
}

/// A pool of handler worker threads executing plans concurrently.
pub struct HandlerPool {
    sender: Option<Sender<Message>>,
    workers: Vec<JoinHandle<()>>,
    results: Arc<Mutex<HashMap<u64, ExecutionResult>>>,
    tracker: Arc<Tracker>,
    recorder: Recorder,
    discard: Arc<AtomicBool>,
    discard_listener: Arc<Mutex<Option<DiscardListener>>>,
    mode: ShutdownMode,
}

impl HandlerPool {
    /// Spawn `workers` handler threads over `executor`, with a private
    /// (unexported) telemetry recorder.
    pub fn new(executor: Arc<dyn JobExecutor>, workers: u32) -> Self {
        Self::with_recorder(executor, workers, Recorder::new())
    }

    /// Spawn `workers` handler threads over `executor`, reporting queue
    /// metrics into `recorder`.
    pub fn with_recorder(executor: Arc<dyn JobExecutor>, workers: u32, recorder: Recorder) -> Self {
        let (sender, receiver) = unbounded::<Message>();
        let results: Arc<Mutex<HashMap<u64, ExecutionResult>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let tracker = Arc::new(Tracker { pending: Mutex::new(0), done: Condvar::new() });
        // Publish the gauges at 0 up front so the exposition carries them
        // even before the first job arrives.
        recorder.metrics().set_gauge(QUEUE_DEPTH_GAUGE, 0.0);
        recorder.metrics().set_gauge(WORKERS_BUSY_GAUGE, 0.0);
        recorder.metrics().set_gauge(WORKERS_TOTAL_GAUGE, f64::from(workers.max(1)));
        let discard = Arc::new(AtomicBool::new(false));
        let discard_listener: Arc<Mutex<Option<DiscardListener>>> = Arc::new(Mutex::new(None));
        let mut handles = Vec::new();
        for _ in 0..workers.max(1) {
            let receiver = receiver.clone();
            let executor = executor.clone();
            let results = results.clone();
            let tracker = tracker.clone();
            let recorder = recorder.clone();
            let discard = discard.clone();
            let discard_listener = discard_listener.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(msg) = receiver.recv() {
                    match msg {
                        Message::Run(plan, enqueued_at) => {
                            let metrics = recorder.metrics();
                            metrics.add_gauge(QUEUE_DEPTH_GAUGE, -1.0);
                            if discard.load(Ordering::SeqCst) {
                                // Skipped plan: tell the listener so
                                // attempt-scoped resources (GYAN leases)
                                // held by never-executed plans are freed.
                                let listener = discard_listener.lock().clone();
                                if let Some(listener) = listener {
                                    listener(plan.job_id);
                                }
                            } else {
                                let wait = (recorder.now() - enqueued_at).max(0.0);
                                metrics.add_gauge(WORKERS_BUSY_GAUGE, 1.0);
                                metrics.observe(QUEUE_WAIT_HISTOGRAM, wait);
                                let result = executor.execute(&plan);
                                if result.exit_code != 0 {
                                    metrics.inc_counter(JOBS_FAILED_COUNTER, 1);
                                }
                                results.lock().insert(plan.job_id, result);
                                metrics.add_gauge(WORKERS_BUSY_GAUGE, -1.0);
                                metrics.inc_counter(JOBS_EXECUTED_COUNTER, 1);
                            }
                            let mut pending = tracker.pending.lock();
                            *pending -= 1;
                            if *pending == 0 {
                                tracker.done.notify_all();
                            }
                        }
                        Message::Shutdown => break,
                    }
                }
            }));
        }
        HandlerPool {
            sender: Some(sender),
            workers: handles,
            results,
            tracker,
            recorder,
            discard,
            discard_listener,
            mode: ShutdownMode::Drain,
        }
    }

    /// Register a callback invoked with each skipped plan's job id when a
    /// discard shutdown drops queued-but-unstarted work. GYAN registers
    /// its lease table here so reservations held by never-executed plans
    /// are released rather than leaked.
    pub fn set_discard_listener(&self, listener: DiscardListener) {
        *self.discard_listener.lock() = Some(listener);
    }

    /// Switch the pool into discard mode without shutting it down: every
    /// queued-but-unstarted plan is skipped (invoking the discard
    /// listener) instead of executed, until [`clear_discard`] is called.
    /// This is the mid-wave discard fault hook for simulation testing —
    /// the live analogue of a handler restart dropping its mule queue.
    ///
    /// [`clear_discard`]: Self::clear_discard
    pub fn discard_pending(&self) {
        self.discard.store(true, Ordering::SeqCst);
    }

    /// Leave discard mode: subsequently dequeued plans execute normally.
    pub fn clear_discard(&self) {
        self.discard.store(false, Ordering::SeqCst);
    }

    /// The recorder receiving this pool's queue metrics.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of worker threads the pool runs.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a plan for execution.
    pub fn enqueue(&self, plan: ExecutionPlan) {
        *self.tracker.pending.lock() += 1;
        self.recorder.metrics().add_gauge(QUEUE_DEPTH_GAUGE, 1.0);
        self.sender
            .as_ref()
            .expect("pool alive")
            .send(Message::Run(Box::new(plan), self.recorder.now()))
            .expect("pool alive");
    }

    /// Number of enqueued-but-unfinished plans.
    pub fn pending(&self) -> usize {
        *self.tracker.pending.lock()
    }

    /// Result for a finished job, if available.
    pub fn result(&self, job_id: u64) -> Option<ExecutionResult> {
        self.results.lock().get(&job_id).cloned()
    }

    /// Block (on a condition variable, not a spin loop) until every
    /// enqueued plan has finished, then return all results.
    pub fn wait_all(&self) -> HashMap<u64, ExecutionResult> {
        let mut pending = self.tracker.pending.lock();
        self.tracker.done.wait_while(&mut pending, |p| *p > 0);
        drop(pending);
        self.results.lock().clone()
    }

    /// Choose what [`Drop`] does with queued-but-unstarted plans. The
    /// default is [`ShutdownMode::Drain`]; see the module docs for why.
    pub fn set_shutdown_mode(&mut self, mode: ShutdownMode) {
        self.mode = mode;
    }

    /// Gracefully stop the workers: queued plans finish first because the
    /// channel is drained in order (idempotent).
    pub fn shutdown(mut self) {
        self.stop(ShutdownMode::Drain);
    }

    /// Stop the workers without running queued plans: anything not yet
    /// picked up is skipped (its `pending` slot is released so `wait_all`
    /// callers unblock, but no result is recorded and no counter moves).
    /// In-flight plans still run to completion.
    pub fn shutdown_now(mut self) {
        self.stop(ShutdownMode::Discard);
    }

    fn stop(&mut self, mode: ShutdownMode) {
        if self.workers.is_empty() {
            return;
        }
        if mode == ShutdownMode::Discard {
            self.discard.store(true, Ordering::SeqCst);
        }
        if let Some(sender) = self.sender.take() {
            for _ in &self.workers {
                let _ = sender.send(Message::Shutdown);
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HandlerPool {
    fn drop(&mut self) {
        self.stop(self.mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn plan(job_id: u64, cmd: &str) -> ExecutionPlan {
        ExecutionPlan {
            job_id,
            tool_id: "t".into(),
            destination_id: "d".into(),
            command_line: cmd.to_string(),
            env: vec![],
            container: None,
            command_parts: vec![],
        }
    }

    struct SlowExecutor {
        concurrent: AtomicU32,
        max_seen: AtomicU32,
    }

    impl JobExecutor for SlowExecutor {
        fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
            let now = self.concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_seen.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            self.concurrent.fetch_sub(1, Ordering::SeqCst);
            ExecutionResult::ok(plan.command_line.clone())
        }
    }

    fn slow_executor() -> Arc<SlowExecutor> {
        Arc::new(SlowExecutor { concurrent: AtomicU32::new(0), max_seen: AtomicU32::new(0) })
    }

    #[test]
    fn executes_all_plans_and_collects_results() {
        let pool = HandlerPool::new(slow_executor(), 4);
        for i in 0..8 {
            pool.enqueue(plan(i, &format!("job-{i}")));
        }
        let results = pool.wait_all();
        assert_eq!(results.len(), 8);
        for i in 0..8 {
            assert_eq!(results[&i].stdout, format!("job-{i}"));
        }
        pool.shutdown();
    }

    #[test]
    fn workers_run_concurrently() {
        let executor = slow_executor();
        let pool = HandlerPool::new(executor.clone(), 4);
        for i in 0..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert!(
            executor.max_seen.load(Ordering::SeqCst) >= 2,
            "expected overlapping execution, saw max {}",
            executor.max_seen.load(Ordering::SeqCst)
        );
        pool.shutdown();
    }

    #[test]
    fn single_worker_serializes() {
        let executor = slow_executor();
        let pool = HandlerPool::new(executor.clone(), 1);
        for i in 0..4 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert_eq!(executor.max_seen.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn result_lookup_before_and_after() {
        let pool = HandlerPool::new(slow_executor(), 2);
        assert!(pool.result(7).is_none());
        pool.enqueue(plan(7, "later"));
        pool.wait_all();
        assert_eq!(pool.result(7).unwrap().stdout, "later");
        pool.shutdown();
    }

    #[test]
    fn wait_all_on_idle_pool_returns_immediately() {
        let pool = HandlerPool::new(slow_executor(), 2);
        assert!(pool.wait_all().is_empty());
        pool.shutdown();
    }

    struct FailOdd;
    impl JobExecutor for FailOdd {
        fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
            if plan.job_id % 2 == 1 {
                ExecutionResult::fail(1, "odd job")
            } else {
                ExecutionResult::ok("even job")
            }
        }
    }

    #[test]
    fn failed_counter_tracks_nonzero_exits() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(Arc::new(FailOdd), 2, recorder.clone());
        for i in 0..6 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        pool.shutdown();
        let metrics = recorder.metrics();
        assert_eq!(metrics.counter_value(JOBS_EXECUTED_COUNTER), 6);
        assert_eq!(metrics.counter_value(JOBS_FAILED_COUNTER), 3);
        assert!(metrics.render_prometheus().contains(JOBS_FAILED_COUNTER));
    }

    #[test]
    fn drop_drains_queued_work_by_default() {
        let recorder = Recorder::new();
        {
            let pool = HandlerPool::with_recorder(slow_executor(), 1, recorder.clone());
            for i in 0..5 {
                pool.enqueue(plan(i, "x"));
            }
            // No wait_all, no shutdown: the drop must finish the queue.
        }
        assert_eq!(recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER), 5);
        assert_eq!(recorder.metrics().gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
    }

    #[test]
    fn discard_mode_skips_queued_plans() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(slow_executor(), 1, recorder.clone());
        for i in 0..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.shutdown_now();
        let executed = recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER);
        assert!(executed < 8, "discard must not drain the whole queue, ran {executed}");
        // Skipped slots are still released and the depth gauge settles.
        assert_eq!(recorder.metrics().gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
    }

    #[test]
    fn discard_listener_sees_every_skipped_plan() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(slow_executor(), 1, recorder.clone());
        let skipped = Arc::new(Mutex::new(Vec::<u64>::new()));
        let sink = skipped.clone();
        pool.set_discard_listener(Arc::new(move |job_id| sink.lock().push(job_id)));
        for i in 0..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.shutdown_now();
        let executed = recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER);
        let skipped = skipped.lock().clone();
        assert_eq!(
            executed as usize + skipped.len(),
            8,
            "every plan either executed or was reported skipped ({executed} + {skipped:?})",
        );
        assert!(!skipped.is_empty(), "discard must skip queued plans");
    }

    #[test]
    fn drop_respects_configured_discard_mode() {
        let recorder = Recorder::new();
        {
            let mut pool = HandlerPool::with_recorder(slow_executor(), 1, recorder.clone());
            pool.set_shutdown_mode(ShutdownMode::Discard);
            for i in 0..8 {
                pool.enqueue(plan(i, "x"));
            }
        }
        assert!(recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER) < 8);
    }

    #[test]
    fn queue_metrics_settle_to_zero() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(slow_executor(), 2, recorder.clone());
        for i in 0..6 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        pool.shutdown();
        let metrics = recorder.metrics();
        assert_eq!(metrics.gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
        assert_eq!(metrics.gauge_value(WORKERS_BUSY_GAUGE), Some(0.0));
        assert_eq!(metrics.counter_value(JOBS_EXECUTED_COUNTER), 6);
        assert_eq!(metrics.histogram_count(QUEUE_WAIT_HISTOGRAM), 6);
        // The exposition must parse and carry the settled gauges.
        let samples = obs::metrics::parse_prometheus(&metrics.render_prometheus()).expect("parses");
        let depth = samples.iter().find(|s| s.name == QUEUE_DEPTH_GAUGE).unwrap();
        assert_eq!(depth.value, 0.0);
    }
}
