//! A concurrent handler pool for plan execution.
//!
//! Real Galaxy dispatches jobs through handler processes with worker
//! threads (the `workers` attribute of the `<plugin>` element in
//! `job_conf.xml`). This module provides that concurrency for the
//! simulated stack: [`HandlerPool`] runs `ExecutionPlan`s on a fixed set
//! of worker threads over a crossbeam channel, so several tools can
//! occupy the simulated GPUs *simultaneously* — the situation the paper's
//! multi-GPU cases snapshot.
//!
//! The pool is instrumented: it exports a queue-depth gauge, a busy-worker
//! gauge, and a per-job queue-wait histogram through its [`Recorder`]'s
//! metrics registry, and completion is signalled through a condition
//! variable so [`HandlerPool::wait_all`] blocks instead of spinning.
//!
//! ## Dispatch backends
//!
//! The pool has two interchangeable backends behind one API, selected by
//! [`DispatchMode`]:
//!
//! * [`DispatchMode::Threads`] (default) — N OS worker threads over a
//!   crossbeam channel, real wall-clock concurrency. Right for suites
//!   that exercise thread interleavings and for real executors.
//! * [`DispatchMode::Event`] — an event-driven ready queue with **zero**
//!   OS threads: [`HandlerPool::enqueue`] appends a completion event,
//!   [`HandlerPool::wait_all`] drains the queue inline on the calling
//!   thread. Concurrency is *modeled* instead of scheduled — the queue
//!   engine's wave-barrier time charging already charges parallel wave
//!   members their `max(duration)` on the virtual clock, so the load
//!   harness can hold 10^5 in-flight jobs without 10^5 (or even `N`)
//!   OS threads, and every run is deterministic.
//!
//! Both backends move the same gauges and counters through the same
//! transitions, honour the same discard listener, and obey the same
//! shutdown modes, so `queued + busy + executed + skipped == submitted`
//! holds at every barrier regardless of backend.
//!
//! ## Shutdown semantics
//!
//! Dropping a pool **drains** it by default: queued plans finish before
//! the workers exit, exactly like [`HandlerPool::shutdown`]. We chose
//! drain-on-drop because silently discarding accepted work would violate
//! the contract `enqueue` implies (Galaxy handlers likewise finish their
//! queue on graceful restart), and the virtual-clock executors make
//! "finish everything" cheap. The alternative is explicit:
//! [`HandlerPool::shutdown_now`] (or [`HandlerPool::set_shutdown_mode`]
//! with [`ShutdownMode::Discard`]) marks queued-but-unstarted plans as
//! skipped so the workers exit as soon as their in-flight plan completes.
//!
//! (`GalaxyApp::submit` remains the synchronous single-job path; the
//! queue engine in [`crate::queue`] dispatches through this pool.)

use crate::runners::{ExecutionPlan, ExecutionResult, JobExecutor};
use crossbeam::channel::{unbounded, Sender};
use obs::Recorder;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Metric: jobs currently enqueued but not yet picked up by a worker.
pub const QUEUE_DEPTH_GAUGE: &str = "galaxy_pool_queue_depth";
/// Metric: workers currently executing a plan.
pub const WORKERS_BUSY_GAUGE: &str = "galaxy_pool_workers_busy";
/// Metric: worker threads the pool was spawned with (constant per pool;
/// the ops `/healthz` saturation check divides busy by this). In
/// [`DispatchMode::Event`] this is the *modeled* wave width — no OS
/// threads back it.
pub const WORKERS_TOTAL_GAUGE: &str = "galaxy_pool_workers_total";
/// Metric: seconds each job spent queued before a worker picked it up.
pub const QUEUE_WAIT_HISTOGRAM: &str = "galaxy_pool_queue_wait_seconds";
/// Metric: total plans handed to the pool via [`HandlerPool::enqueue`].
/// With [`JOBS_EXECUTED_COUNTER`] and [`JOBS_SKIPPED_COUNTER`] this makes
/// gauge conservation scrape-checkable:
/// `queued + busy + executed + skipped == submitted` at every barrier.
pub const JOBS_SUBMITTED_COUNTER: &str = "galaxy_pool_jobs_submitted_total";
/// Metric: total plans executed by the pool.
pub const JOBS_EXECUTED_COUNTER: &str = "galaxy_pool_jobs_executed_total";
/// Metric: executed plans that reported a non-zero exit code.
pub const JOBS_FAILED_COUNTER: &str = "galaxy_pool_jobs_failed_total";
/// Metric: plans skipped by a discard (mid-wave fault or discard
/// shutdown) instead of executed.
pub const JOBS_SKIPPED_COUNTER: &str = "galaxy_pool_jobs_skipped_total";

/// What happens to queued-but-unstarted plans when the pool stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShutdownMode {
    /// Finish every queued plan before the workers exit (the default —
    /// accepted work is never silently dropped).
    #[default]
    Drain,
    /// Skip queued plans; workers exit after their in-flight plan.
    Discard,
}

/// Which execution backend a [`HandlerPool`] (and therefore a
/// `QueueEngine`) dispatches through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// One OS thread per worker over a channel (real concurrency).
    #[default]
    Threads,
    /// Event-driven ready queue drained inline at the wave barrier (no
    /// OS threads; concurrency is modeled by wave time charging).
    Event,
}

enum Message {
    /// A plan plus its enqueue timestamp (recorder clock).
    Run(Box<ExecutionPlan>, f64),
    Shutdown,
}

/// Callback invoked with a plan's job id when the plan is skipped by a
/// discard shutdown (it must be `Sync`: workers call it concurrently).
pub type DiscardListener = Arc<dyn Fn(u64) + Send + Sync>;

/// Completion tracking shared between workers and `wait_all`.
struct Tracker {
    pending: Mutex<usize>,
    done: Condvar,
}

/// State shared by every execution site (worker threads and the inline
/// event drain): results map, completion tracker, discard flag/listener,
/// and the recorder carrying the pool metrics.
struct Shared {
    results: Mutex<HashMap<u64, ExecutionResult>>,
    tracker: Tracker,
    recorder: Recorder,
    discard: AtomicBool,
    discard_listener: Mutex<Option<DiscardListener>>,
}

impl Shared {
    /// Run (or discard) one dequeued plan, moving the gauges and counters
    /// through the same transitions on every backend.
    fn run_one(&self, executor: &dyn JobExecutor, plan: Box<ExecutionPlan>, enqueued_at: f64) {
        let metrics = self.recorder.metrics();
        metrics.add_gauge(QUEUE_DEPTH_GAUGE, -1.0);
        if self.discard.load(Ordering::SeqCst) {
            // Skipped plan: tell the listener so attempt-scoped resources
            // (GYAN leases) held by never-executed plans are freed.
            metrics.inc_counter(JOBS_SKIPPED_COUNTER, 1);
            let listener = self.discard_listener.lock().clone();
            if let Some(listener) = listener {
                listener(plan.job_id);
            }
        } else {
            let wait = (self.recorder.now() - enqueued_at).max(0.0);
            metrics.add_gauge(WORKERS_BUSY_GAUGE, 1.0);
            metrics.observe(QUEUE_WAIT_HISTOGRAM, wait);
            let result = executor.execute(&plan);
            if result.exit_code != 0 {
                metrics.inc_counter(JOBS_FAILED_COUNTER, 1);
            }
            self.results.lock().insert(plan.job_id, result);
            metrics.add_gauge(WORKERS_BUSY_GAUGE, -1.0);
            metrics.inc_counter(JOBS_EXECUTED_COUNTER, 1);
        }
        let mut pending = self.tracker.pending.lock();
        *pending -= 1;
        if *pending == 0 {
            self.tracker.done.notify_all();
        }
    }
}

enum Backend {
    /// Worker threads fed over a channel.
    Threads { sender: Option<Sender<Message>>, handles: Vec<JoinHandle<()>> },
    /// Ready queue drained inline by `wait_all` / shutdown.
    Event { executor: Arc<dyn JobExecutor>, ready: Mutex<VecDeque<(Box<ExecutionPlan>, f64)>> },
}

/// A pool of handler workers executing plans, threaded or event-driven
/// (see [`DispatchMode`] and the module docs).
pub struct HandlerPool {
    backend: Backend,
    shared: Arc<Shared>,
    /// Nominal worker count (thread count, or modeled width in event
    /// mode) — what [`WORKERS_TOTAL_GAUGE`] reports.
    workers: usize,
    mode: ShutdownMode,
}

impl HandlerPool {
    /// Spawn `workers` handler threads over `executor`, with a private
    /// (unexported) telemetry recorder.
    pub fn new(executor: Arc<dyn JobExecutor>, workers: u32) -> Self {
        Self::with_recorder(executor, workers, Recorder::new())
    }

    /// Spawn `workers` handler threads over `executor`, reporting queue
    /// metrics into `recorder`.
    pub fn with_recorder(executor: Arc<dyn JobExecutor>, workers: u32, recorder: Recorder) -> Self {
        Self::with_mode(executor, workers, recorder, DispatchMode::Threads)
    }

    /// An event-driven pool (no OS threads): `workers` is only the
    /// modeled wave width reported by [`WORKERS_TOTAL_GAUGE`].
    pub fn event_driven(executor: Arc<dyn JobExecutor>, workers: u32, recorder: Recorder) -> Self {
        Self::with_mode(executor, workers, recorder, DispatchMode::Event)
    }

    /// Build a pool with an explicit [`DispatchMode`].
    pub fn with_mode(
        executor: Arc<dyn JobExecutor>,
        workers: u32,
        recorder: Recorder,
        dispatch: DispatchMode,
    ) -> Self {
        let workers = workers.max(1) as usize;
        // Publish the gauges at 0 up front so the exposition carries them
        // even before the first job arrives.
        recorder.metrics().set_gauge(QUEUE_DEPTH_GAUGE, 0.0);
        recorder.metrics().set_gauge(WORKERS_BUSY_GAUGE, 0.0);
        recorder.metrics().set_gauge(WORKERS_TOTAL_GAUGE, workers as f64);
        let shared = Arc::new(Shared {
            results: Mutex::new(HashMap::new()),
            tracker: Tracker { pending: Mutex::new(0), done: Condvar::new() },
            recorder,
            discard: AtomicBool::new(false),
            discard_listener: Mutex::new(None),
        });
        let backend = match dispatch {
            DispatchMode::Event => Backend::Event { executor, ready: Mutex::new(VecDeque::new()) },
            DispatchMode::Threads => {
                let (sender, receiver) = unbounded::<Message>();
                let mut handles = Vec::new();
                for _ in 0..workers {
                    let receiver = receiver.clone();
                    let executor = executor.clone();
                    let shared = shared.clone();
                    handles.push(std::thread::spawn(move || {
                        while let Ok(msg) = receiver.recv() {
                            match msg {
                                Message::Run(plan, enqueued_at) => {
                                    shared.run_one(executor.as_ref(), plan, enqueued_at);
                                }
                                Message::Shutdown => break,
                            }
                        }
                    }));
                }
                Backend::Threads { sender: Some(sender), handles }
            }
        };
        HandlerPool { backend, shared, workers, mode: ShutdownMode::Drain }
    }

    /// Register a callback invoked with each skipped plan's job id when a
    /// discard shutdown drops queued-but-unstarted work. GYAN registers
    /// its lease table here so reservations held by never-executed plans
    /// are released rather than leaked.
    pub fn set_discard_listener(&self, listener: DiscardListener) {
        *self.shared.discard_listener.lock() = Some(listener);
    }

    /// Switch the pool into discard mode without shutting it down: every
    /// queued-but-unstarted plan is skipped (invoking the discard
    /// listener) instead of executed, until [`clear_discard`] is called.
    /// This is the mid-wave discard fault hook for simulation testing —
    /// the live analogue of a handler restart dropping its mule queue.
    ///
    /// [`clear_discard`]: Self::clear_discard
    pub fn discard_pending(&self) {
        self.shared.discard.store(true, Ordering::SeqCst);
    }

    /// Leave discard mode: subsequently dequeued plans execute normally.
    pub fn clear_discard(&self) {
        self.shared.discard.store(false, Ordering::SeqCst);
    }

    /// The recorder receiving this pool's queue metrics.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Number of workers the pool runs (nominal width in event mode).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The pool's dispatch backend.
    pub fn dispatch_mode(&self) -> DispatchMode {
        match self.backend {
            Backend::Threads { .. } => DispatchMode::Threads,
            Backend::Event { .. } => DispatchMode::Event,
        }
    }

    /// Enqueue a plan for execution.
    pub fn enqueue(&self, plan: ExecutionPlan) {
        let enqueued_at = self.shared.recorder.now();
        *self.shared.tracker.pending.lock() += 1;
        self.shared.recorder.metrics().add_gauge(QUEUE_DEPTH_GAUGE, 1.0);
        self.shared.recorder.metrics().inc_counter(JOBS_SUBMITTED_COUNTER, 1);
        match &self.backend {
            Backend::Threads { sender, .. } => sender
                .as_ref()
                .expect("pool alive")
                .send(Message::Run(Box::new(plan), enqueued_at))
                .expect("pool alive"),
            Backend::Event { ready, .. } => {
                ready.lock().push_back((Box::new(plan), enqueued_at));
            }
        }
    }

    /// Number of enqueued-but-unfinished plans.
    pub fn pending(&self) -> usize {
        *self.shared.tracker.pending.lock()
    }

    /// Result for a finished job, if available.
    pub fn result(&self, job_id: u64) -> Option<ExecutionResult> {
        self.shared.results.lock().get(&job_id).cloned()
    }

    /// Remove and return a finished job's result. The queue engine uses
    /// this at the wave barrier so the results map holds only the
    /// in-flight wave — not every result ever produced — keeping both
    /// pool memory and the [`HandlerPool::wait_all`] clone O(wave size)
    /// over a million-job soak.
    pub fn take_result(&self, job_id: u64) -> Option<ExecutionResult> {
        self.shared.results.lock().remove(&job_id)
    }

    /// Block until every enqueued plan has finished, without touching
    /// the results map. Threaded pools wait on a condition variable;
    /// event pools drain the ready queue inline on the calling thread
    /// (this is the completion-event loop — in that mode `barrier` IS
    /// the dispatcher).
    pub fn barrier(&self) {
        match &self.backend {
            Backend::Threads { .. } => {
                let mut pending = self.shared.tracker.pending.lock();
                self.shared.tracker.done.wait_while(&mut pending, |p| *p > 0);
            }
            Backend::Event { executor, ready } => Self::drain_ready(&self.shared, executor, ready),
        }
    }

    /// [`HandlerPool::barrier`], then return a snapshot of every result
    /// still held by the pool.
    pub fn wait_all(&self) -> HashMap<u64, ExecutionResult> {
        self.barrier();
        self.shared.results.lock().clone()
    }

    /// Event-mode completion loop: pop ready events in FIFO order and run
    /// them inline until none remain and nothing is pending.
    fn drain_ready(
        shared: &Shared,
        executor: &Arc<dyn JobExecutor>,
        ready: &Mutex<VecDeque<(Box<ExecutionPlan>, f64)>>,
    ) {
        loop {
            let next = ready.lock().pop_front();
            match next {
                Some((plan, enqueued_at)) => {
                    shared.run_one(executor.as_ref(), plan, enqueued_at);
                }
                None => {
                    // `enqueue` bumps `pending` before pushing the event;
                    // a concurrent enqueuer may be between the two.
                    if *shared.tracker.pending.lock() == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Choose what [`Drop`] does with queued-but-unstarted plans. The
    /// default is [`ShutdownMode::Drain`]; see the module docs for why.
    pub fn set_shutdown_mode(&mut self, mode: ShutdownMode) {
        self.mode = mode;
    }

    /// Gracefully stop the workers: queued plans finish first because the
    /// channel is drained in order (idempotent).
    pub fn shutdown(mut self) {
        self.stop(ShutdownMode::Drain);
    }

    /// Stop the workers without running queued plans: anything not yet
    /// picked up is skipped (its `pending` slot is released so `wait_all`
    /// callers unblock, but no result is recorded and no executed counter
    /// moves). In-flight plans still run to completion.
    pub fn shutdown_now(mut self) {
        self.stop(ShutdownMode::Discard);
    }

    fn stop(&mut self, mode: ShutdownMode) {
        if mode == ShutdownMode::Discard {
            self.shared.discard.store(true, Ordering::SeqCst);
        }
        match &mut self.backend {
            Backend::Threads { sender, handles } => {
                if handles.is_empty() {
                    return;
                }
                if let Some(sender) = sender.take() {
                    for _ in handles.iter() {
                        let _ = sender.send(Message::Shutdown);
                    }
                }
                for handle in handles.drain(..) {
                    let _ = handle.join();
                }
            }
            Backend::Event { .. } => {
                // Drain inline; with the discard flag set every queued
                // plan is skipped through the listener instead of run.
                if let Backend::Event { executor, ready } = &self.backend {
                    Self::drain_ready(&self.shared, executor, ready);
                }
            }
        }
    }
}

impl Drop for HandlerPool {
    fn drop(&mut self) {
        self.stop(self.mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn plan(job_id: u64, cmd: &str) -> ExecutionPlan {
        ExecutionPlan {
            job_id,
            tool_id: "t".into(),
            destination_id: "d".into(),
            command_line: cmd.to_string(),
            env: vec![],
            container: None,
            command_parts: vec![],
        }
    }

    struct SlowExecutor {
        concurrent: AtomicU32,
        max_seen: AtomicU32,
    }

    impl JobExecutor for SlowExecutor {
        fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
            let now = self.concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_seen.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            self.concurrent.fetch_sub(1, Ordering::SeqCst);
            ExecutionResult::ok(plan.command_line.clone())
        }
    }

    fn slow_executor() -> Arc<SlowExecutor> {
        Arc::new(SlowExecutor { concurrent: AtomicU32::new(0), max_seen: AtomicU32::new(0) })
    }

    #[test]
    fn executes_all_plans_and_collects_results() {
        let pool = HandlerPool::new(slow_executor(), 4);
        for i in 0..8 {
            pool.enqueue(plan(i, &format!("job-{i}")));
        }
        let results = pool.wait_all();
        assert_eq!(results.len(), 8);
        for i in 0..8 {
            assert_eq!(results[&i].stdout, format!("job-{i}"));
        }
        pool.shutdown();
    }

    #[test]
    fn take_result_consumes_the_entry_and_bounds_the_map() {
        let pool = HandlerPool::new(slow_executor(), 2);
        pool.enqueue(plan(1, "one"));
        pool.enqueue(plan(2, "two"));
        pool.barrier();
        assert_eq!(pool.take_result(1).expect("ran").stdout, "one");
        assert!(pool.take_result(1).is_none(), "consumed on first take");
        assert!(pool.result(1).is_none(), "entry is gone, not just cloned");
        // The untaken result is still visible through both accessors.
        assert_eq!(pool.wait_all().len(), 1);
        assert_eq!(pool.result(2).expect("ran").stdout, "two");
        pool.shutdown();
    }

    #[test]
    fn workers_run_concurrently() {
        let executor = slow_executor();
        let pool = HandlerPool::new(executor.clone(), 4);
        for i in 0..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert!(
            executor.max_seen.load(Ordering::SeqCst) >= 2,
            "expected overlapping execution, saw max {}",
            executor.max_seen.load(Ordering::SeqCst)
        );
        pool.shutdown();
    }

    #[test]
    fn single_worker_serializes() {
        let executor = slow_executor();
        let pool = HandlerPool::new(executor.clone(), 1);
        for i in 0..4 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert_eq!(executor.max_seen.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn result_lookup_before_and_after() {
        let pool = HandlerPool::new(slow_executor(), 2);
        assert!(pool.result(7).is_none());
        pool.enqueue(plan(7, "later"));
        pool.wait_all();
        assert_eq!(pool.result(7).unwrap().stdout, "later");
        pool.shutdown();
    }

    #[test]
    fn wait_all_on_idle_pool_returns_immediately() {
        let pool = HandlerPool::new(slow_executor(), 2);
        assert!(pool.wait_all().is_empty());
        pool.shutdown();
    }

    struct FailOdd;
    impl JobExecutor for FailOdd {
        fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
            if plan.job_id % 2 == 1 {
                ExecutionResult::fail(1, "odd job")
            } else {
                ExecutionResult::ok("even job")
            }
        }
    }

    #[test]
    fn failed_counter_tracks_nonzero_exits() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(Arc::new(FailOdd), 2, recorder.clone());
        for i in 0..6 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        pool.shutdown();
        let metrics = recorder.metrics();
        assert_eq!(metrics.counter_value(JOBS_EXECUTED_COUNTER), 6);
        assert_eq!(metrics.counter_value(JOBS_FAILED_COUNTER), 3);
        assert!(metrics.render_prometheus().contains(JOBS_FAILED_COUNTER));
    }

    #[test]
    fn drop_drains_queued_work_by_default() {
        let recorder = Recorder::new();
        {
            let pool = HandlerPool::with_recorder(slow_executor(), 1, recorder.clone());
            for i in 0..5 {
                pool.enqueue(plan(i, "x"));
            }
            // No wait_all, no shutdown: the drop must finish the queue.
        }
        assert_eq!(recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER), 5);
        assert_eq!(recorder.metrics().gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
    }

    #[test]
    fn discard_mode_skips_queued_plans() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(slow_executor(), 1, recorder.clone());
        for i in 0..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.shutdown_now();
        let executed = recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER);
        assert!(executed < 8, "discard must not drain the whole queue, ran {executed}");
        // Skipped slots are still released and the depth gauge settles.
        assert_eq!(recorder.metrics().gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
    }

    #[test]
    fn discard_listener_sees_every_skipped_plan() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(slow_executor(), 1, recorder.clone());
        let skipped = Arc::new(Mutex::new(Vec::<u64>::new()));
        let sink = skipped.clone();
        pool.set_discard_listener(Arc::new(move |job_id| sink.lock().push(job_id)));
        for i in 0..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.shutdown_now();
        let executed = recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER);
        let skipped = skipped.lock().clone();
        assert_eq!(
            executed as usize + skipped.len(),
            8,
            "every plan either executed or was reported skipped ({executed} + {skipped:?})",
        );
        assert!(!skipped.is_empty(), "discard must skip queued plans");
        assert_eq!(recorder.metrics().counter_value(JOBS_SKIPPED_COUNTER), skipped.len() as u64);
    }

    #[test]
    fn drop_respects_configured_discard_mode() {
        let recorder = Recorder::new();
        {
            let mut pool = HandlerPool::with_recorder(slow_executor(), 1, recorder.clone());
            pool.set_shutdown_mode(ShutdownMode::Discard);
            for i in 0..8 {
                pool.enqueue(plan(i, "x"));
            }
        }
        assert!(recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER) < 8);
    }

    #[test]
    fn queue_metrics_settle_to_zero() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(slow_executor(), 2, recorder.clone());
        for i in 0..6 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        pool.shutdown();
        let metrics = recorder.metrics();
        assert_eq!(metrics.gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
        assert_eq!(metrics.gauge_value(WORKERS_BUSY_GAUGE), Some(0.0));
        assert_eq!(metrics.counter_value(JOBS_EXECUTED_COUNTER), 6);
        assert_eq!(metrics.histogram_count(QUEUE_WAIT_HISTOGRAM), 6);
        // The exposition must parse and carry the settled gauges.
        let samples = obs::metrics::parse_prometheus(&metrics.render_prometheus()).expect("parses");
        let depth = samples.iter().find(|s| s.name == QUEUE_DEPTH_GAUGE).unwrap();
        assert_eq!(depth.value, 0.0);
    }

    // ---- event-driven backend -------------------------------------------

    #[test]
    fn event_pool_executes_without_worker_threads() {
        let recorder = Recorder::new();
        let pool = HandlerPool::event_driven(slow_executor(), 4, recorder.clone());
        assert_eq!(pool.dispatch_mode(), DispatchMode::Event);
        for i in 0..8 {
            pool.enqueue(plan(i, &format!("job-{i}")));
        }
        assert_eq!(pool.pending(), 8, "nothing runs before the barrier");
        let results = pool.wait_all();
        assert_eq!(results.len(), 8);
        for i in 0..8 {
            assert_eq!(results[&i].stdout, format!("job-{i}"));
        }
        assert_eq!(pool.pending(), 0);
        pool.shutdown();
        assert_eq!(recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER), 8);
    }

    #[test]
    fn event_pool_runs_in_fifo_order() {
        struct OrderExecutor(Mutex<Vec<u64>>);
        impl JobExecutor for OrderExecutor {
            fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
                self.0.lock().push(plan.job_id);
                ExecutionResult::ok("")
            }
        }
        let executor = Arc::new(OrderExecutor(Mutex::new(Vec::new())));
        let pool = HandlerPool::event_driven(executor.clone(), 4, Recorder::new());
        for i in [3u64, 1, 4, 1 + 4, 9] {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert_eq!(*executor.0.lock(), vec![3, 1, 4, 5, 9]);
    }

    #[test]
    fn event_pool_gauges_conserve_at_barriers() {
        let recorder = Recorder::new();
        let pool = HandlerPool::event_driven(slow_executor(), 2, recorder.clone());
        let conservation = |metrics: &obs::metrics::Registry| {
            let queued = metrics.gauge_value(QUEUE_DEPTH_GAUGE).unwrap_or(0.0);
            let busy = metrics.gauge_value(WORKERS_BUSY_GAUGE).unwrap_or(0.0);
            let done = metrics.counter_value(JOBS_EXECUTED_COUNTER)
                + metrics.counter_value(JOBS_SKIPPED_COUNTER);
            let submitted = metrics.counter_value(JOBS_SUBMITTED_COUNTER);
            (queued + busy + done as f64, submitted as f64)
        };
        for i in 0..5 {
            pool.enqueue(plan(i, "x"));
            let (sum, submitted) = conservation(recorder.metrics());
            assert_eq!(sum, submitted, "conservation while enqueuing");
        }
        pool.wait_all();
        let (sum, submitted) = conservation(recorder.metrics());
        assert_eq!(sum, submitted, "conservation after the barrier");
        assert_eq!(submitted, 5.0);
        pool.shutdown();
    }

    #[test]
    fn event_pool_discard_shutdown_skips_and_notifies() {
        let recorder = Recorder::new();
        let pool = HandlerPool::event_driven(slow_executor(), 2, recorder.clone());
        let skipped = Arc::new(Mutex::new(Vec::<u64>::new()));
        let sink = skipped.clone();
        pool.set_discard_listener(Arc::new(move |job_id| sink.lock().push(job_id)));
        for i in 0..6 {
            pool.enqueue(plan(i, "x"));
        }
        pool.shutdown_now();
        assert_eq!(recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER), 0);
        assert_eq!(recorder.metrics().counter_value(JOBS_SKIPPED_COUNTER), 6);
        assert_eq!(*skipped.lock(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(recorder.metrics().gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
    }

    #[test]
    fn event_pool_mid_wave_discard_matches_threaded_semantics() {
        let recorder = Recorder::new();
        let pool = HandlerPool::event_driven(slow_executor(), 2, recorder.clone());
        for i in 0..4 {
            pool.enqueue(plan(i, "x"));
        }
        pool.discard_pending();
        pool.wait_all();
        pool.clear_discard();
        assert_eq!(recorder.metrics().counter_value(JOBS_SKIPPED_COUNTER), 4);
        for i in 4..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert_eq!(recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER), 4);
        pool.shutdown();
    }

    #[test]
    fn event_pool_drop_drains_like_threaded() {
        let recorder = Recorder::new();
        {
            let pool = HandlerPool::event_driven(slow_executor(), 1, recorder.clone());
            for i in 0..5 {
                pool.enqueue(plan(i, "x"));
            }
        }
        assert_eq!(recorder.metrics().counter_value(JOBS_EXECUTED_COUNTER), 5);
        assert_eq!(recorder.metrics().gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
    }
}
