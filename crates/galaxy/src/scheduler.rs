//! A concurrent handler pool for plan execution.
//!
//! Real Galaxy dispatches jobs through handler processes with worker
//! threads (the `workers` attribute of the `<plugin>` element in
//! `job_conf.xml`). This module provides that concurrency for the
//! simulated stack: [`HandlerPool`] runs `ExecutionPlan`s on a fixed set
//! of worker threads over a crossbeam channel, so several tools can
//! occupy the simulated GPUs *simultaneously* — the situation the paper's
//! multi-GPU cases snapshot.
//!
//! (`GalaxyApp::submit` remains the synchronous single-job path; the pool
//! is used when concurrency itself is under test.)

use crate::runners::{ExecutionPlan, ExecutionResult, JobExecutor};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

enum Message {
    Run(Box<ExecutionPlan>),
    Shutdown,
}

/// A pool of handler worker threads executing plans concurrently.
pub struct HandlerPool {
    sender: Sender<Message>,
    workers: Vec<JoinHandle<()>>,
    results: Arc<Mutex<HashMap<u64, ExecutionResult>>>,
    pending: Arc<Mutex<usize>>,
}

impl HandlerPool {
    /// Spawn `workers` handler threads over `executor`.
    pub fn new(executor: Arc<dyn JobExecutor>, workers: u32) -> Self {
        let (sender, receiver) = unbounded::<Message>();
        let results: Arc<Mutex<HashMap<u64, ExecutionResult>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let pending = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..workers.max(1) {
            let receiver = receiver.clone();
            let executor = executor.clone();
            let results = results.clone();
            let pending = pending.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(msg) = receiver.recv() {
                    match msg {
                        Message::Run(plan) => {
                            let result = executor.execute(&plan);
                            results.lock().insert(plan.job_id, result);
                            *pending.lock() -= 1;
                        }
                        Message::Shutdown => break,
                    }
                }
            }));
        }
        HandlerPool { sender, workers: handles, results, pending }
    }

    /// Enqueue a plan for execution.
    pub fn enqueue(&self, plan: ExecutionPlan) {
        *self.pending.lock() += 1;
        self.sender.send(Message::Run(Box::new(plan))).expect("pool alive");
    }

    /// Number of enqueued-but-unfinished plans.
    pub fn pending(&self) -> usize {
        *self.pending.lock()
    }

    /// Result for a finished job, if available.
    pub fn result(&self, job_id: u64) -> Option<ExecutionResult> {
        self.results.lock().get(&job_id).cloned()
    }

    /// Busy-wait (yielding) until every enqueued plan has finished, then
    /// return all results.
    pub fn wait_all(&self) -> HashMap<u64, ExecutionResult> {
        while self.pending() > 0 {
            std::thread::yield_now();
        }
        self.results.lock().clone()
    }

    /// Stop the workers (idempotent; pending work completes first because
    /// the channel is drained in order).
    pub fn shutdown(mut self) {
        for _ in &self.workers {
            let _ = self.sender.send(Message::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn plan(job_id: u64, cmd: &str) -> ExecutionPlan {
        ExecutionPlan {
            job_id,
            tool_id: "t".into(),
            destination_id: "d".into(),
            command_line: cmd.to_string(),
            env: vec![],
            container: None,
            command_parts: vec![],
        }
    }

    struct SlowExecutor {
        concurrent: AtomicU32,
        max_seen: AtomicU32,
    }

    impl JobExecutor for SlowExecutor {
        fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
            let now = self.concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_seen.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            self.concurrent.fetch_sub(1, Ordering::SeqCst);
            ExecutionResult::ok(plan.command_line.clone())
        }
    }

    #[test]
    fn executes_all_plans_and_collects_results() {
        let executor = Arc::new(SlowExecutor {
            concurrent: AtomicU32::new(0),
            max_seen: AtomicU32::new(0),
        });
        let pool = HandlerPool::new(executor.clone(), 4);
        for i in 0..8 {
            pool.enqueue(plan(i, &format!("job-{i}")));
        }
        let results = pool.wait_all();
        assert_eq!(results.len(), 8);
        for i in 0..8 {
            assert_eq!(results[&i].stdout, format!("job-{i}"));
        }
        pool.shutdown();
    }

    #[test]
    fn workers_run_concurrently() {
        let executor = Arc::new(SlowExecutor {
            concurrent: AtomicU32::new(0),
            max_seen: AtomicU32::new(0),
        });
        let pool = HandlerPool::new(executor.clone(), 4);
        for i in 0..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert!(
            executor.max_seen.load(Ordering::SeqCst) >= 2,
            "expected overlapping execution, saw max {}",
            executor.max_seen.load(Ordering::SeqCst)
        );
        pool.shutdown();
    }

    #[test]
    fn single_worker_serializes() {
        let executor = Arc::new(SlowExecutor {
            concurrent: AtomicU32::new(0),
            max_seen: AtomicU32::new(0),
        });
        let pool = HandlerPool::new(executor.clone(), 1);
        for i in 0..4 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert_eq!(executor.max_seen.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn result_lookup_before_and_after() {
        let executor = Arc::new(SlowExecutor {
            concurrent: AtomicU32::new(0),
            max_seen: AtomicU32::new(0),
        });
        let pool = HandlerPool::new(executor, 2);
        assert!(pool.result(7).is_none());
        pool.enqueue(plan(7, "later"));
        pool.wait_all();
        assert_eq!(pool.result(7).unwrap().stdout, "later");
        pool.shutdown();
    }
}
