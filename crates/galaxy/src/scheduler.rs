//! A concurrent handler pool for plan execution.
//!
//! Real Galaxy dispatches jobs through handler processes with worker
//! threads (the `workers` attribute of the `<plugin>` element in
//! `job_conf.xml`). This module provides that concurrency for the
//! simulated stack: [`HandlerPool`] runs `ExecutionPlan`s on a fixed set
//! of worker threads over a crossbeam channel, so several tools can
//! occupy the simulated GPUs *simultaneously* — the situation the paper's
//! multi-GPU cases snapshot.
//!
//! The pool is instrumented: it exports a queue-depth gauge, a busy-worker
//! gauge, and a per-job queue-wait histogram through its [`Recorder`]'s
//! metrics registry, and completion is signalled through a condition
//! variable so [`HandlerPool::wait_all`] blocks instead of spinning.
//!
//! (`GalaxyApp::submit` remains the synchronous single-job path; the pool
//! is used when concurrency itself is under test.)

use crate::runners::{ExecutionPlan, ExecutionResult, JobExecutor};
use crossbeam::channel::{unbounded, Sender};
use obs::Recorder;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Metric: jobs currently enqueued but not yet picked up by a worker.
pub const QUEUE_DEPTH_GAUGE: &str = "galaxy_pool_queue_depth";
/// Metric: workers currently executing a plan.
pub const WORKERS_BUSY_GAUGE: &str = "galaxy_pool_workers_busy";
/// Metric: seconds each job spent queued before a worker picked it up.
pub const QUEUE_WAIT_HISTOGRAM: &str = "galaxy_pool_queue_wait_seconds";
/// Metric: total plans executed by the pool.
pub const JOBS_EXECUTED_COUNTER: &str = "galaxy_pool_jobs_executed_total";

enum Message {
    /// A plan plus its enqueue timestamp (recorder clock).
    Run(Box<ExecutionPlan>, f64),
    Shutdown,
}

/// Completion tracking shared between workers and `wait_all`.
struct Tracker {
    pending: Mutex<usize>,
    done: Condvar,
}

/// A pool of handler worker threads executing plans concurrently.
pub struct HandlerPool {
    sender: Sender<Message>,
    workers: Vec<JoinHandle<()>>,
    results: Arc<Mutex<HashMap<u64, ExecutionResult>>>,
    tracker: Arc<Tracker>,
    recorder: Recorder,
}

impl HandlerPool {
    /// Spawn `workers` handler threads over `executor`, with a private
    /// (unexported) telemetry recorder.
    pub fn new(executor: Arc<dyn JobExecutor>, workers: u32) -> Self {
        Self::with_recorder(executor, workers, Recorder::new())
    }

    /// Spawn `workers` handler threads over `executor`, reporting queue
    /// metrics into `recorder`.
    pub fn with_recorder(executor: Arc<dyn JobExecutor>, workers: u32, recorder: Recorder) -> Self {
        let (sender, receiver) = unbounded::<Message>();
        let results: Arc<Mutex<HashMap<u64, ExecutionResult>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let tracker = Arc::new(Tracker { pending: Mutex::new(0), done: Condvar::new() });
        // Publish the gauges at 0 up front so the exposition carries them
        // even before the first job arrives.
        recorder.metrics().set_gauge(QUEUE_DEPTH_GAUGE, 0.0);
        recorder.metrics().set_gauge(WORKERS_BUSY_GAUGE, 0.0);
        let mut handles = Vec::new();
        for _ in 0..workers.max(1) {
            let receiver = receiver.clone();
            let executor = executor.clone();
            let results = results.clone();
            let tracker = tracker.clone();
            let recorder = recorder.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(msg) = receiver.recv() {
                    match msg {
                        Message::Run(plan, enqueued_at) => {
                            let metrics = recorder.metrics();
                            let wait = (recorder.now() - enqueued_at).max(0.0);
                            metrics.add_gauge(QUEUE_DEPTH_GAUGE, -1.0);
                            metrics.add_gauge(WORKERS_BUSY_GAUGE, 1.0);
                            metrics.observe(QUEUE_WAIT_HISTOGRAM, wait);
                            let result = executor.execute(&plan);
                            results.lock().insert(plan.job_id, result);
                            metrics.add_gauge(WORKERS_BUSY_GAUGE, -1.0);
                            metrics.inc_counter(JOBS_EXECUTED_COUNTER, 1);
                            let mut pending = tracker.pending.lock();
                            *pending -= 1;
                            if *pending == 0 {
                                tracker.done.notify_all();
                            }
                        }
                        Message::Shutdown => break,
                    }
                }
            }));
        }
        HandlerPool { sender, workers: handles, results, tracker, recorder }
    }

    /// The recorder receiving this pool's queue metrics.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Enqueue a plan for execution.
    pub fn enqueue(&self, plan: ExecutionPlan) {
        *self.tracker.pending.lock() += 1;
        self.recorder.metrics().add_gauge(QUEUE_DEPTH_GAUGE, 1.0);
        self.sender.send(Message::Run(Box::new(plan), self.recorder.now())).expect("pool alive");
    }

    /// Number of enqueued-but-unfinished plans.
    pub fn pending(&self) -> usize {
        *self.tracker.pending.lock()
    }

    /// Result for a finished job, if available.
    pub fn result(&self, job_id: u64) -> Option<ExecutionResult> {
        self.results.lock().get(&job_id).cloned()
    }

    /// Block (on a condition variable, not a spin loop) until every
    /// enqueued plan has finished, then return all results.
    pub fn wait_all(&self) -> HashMap<u64, ExecutionResult> {
        let mut pending = self.tracker.pending.lock();
        self.tracker.done.wait_while(&mut pending, |p| *p > 0);
        drop(pending);
        self.results.lock().clone()
    }

    /// Stop the workers (idempotent; pending work completes first because
    /// the channel is drained in order).
    pub fn shutdown(mut self) {
        for _ in &self.workers {
            let _ = self.sender.send(Message::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn plan(job_id: u64, cmd: &str) -> ExecutionPlan {
        ExecutionPlan {
            job_id,
            tool_id: "t".into(),
            destination_id: "d".into(),
            command_line: cmd.to_string(),
            env: vec![],
            container: None,
            command_parts: vec![],
        }
    }

    struct SlowExecutor {
        concurrent: AtomicU32,
        max_seen: AtomicU32,
    }

    impl JobExecutor for SlowExecutor {
        fn execute(&self, plan: &ExecutionPlan) -> ExecutionResult {
            let now = self.concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_seen.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            self.concurrent.fetch_sub(1, Ordering::SeqCst);
            ExecutionResult::ok(plan.command_line.clone())
        }
    }

    fn slow_executor() -> Arc<SlowExecutor> {
        Arc::new(SlowExecutor { concurrent: AtomicU32::new(0), max_seen: AtomicU32::new(0) })
    }

    #[test]
    fn executes_all_plans_and_collects_results() {
        let pool = HandlerPool::new(slow_executor(), 4);
        for i in 0..8 {
            pool.enqueue(plan(i, &format!("job-{i}")));
        }
        let results = pool.wait_all();
        assert_eq!(results.len(), 8);
        for i in 0..8 {
            assert_eq!(results[&i].stdout, format!("job-{i}"));
        }
        pool.shutdown();
    }

    #[test]
    fn workers_run_concurrently() {
        let executor = slow_executor();
        let pool = HandlerPool::new(executor.clone(), 4);
        for i in 0..8 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert!(
            executor.max_seen.load(Ordering::SeqCst) >= 2,
            "expected overlapping execution, saw max {}",
            executor.max_seen.load(Ordering::SeqCst)
        );
        pool.shutdown();
    }

    #[test]
    fn single_worker_serializes() {
        let executor = slow_executor();
        let pool = HandlerPool::new(executor.clone(), 1);
        for i in 0..4 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        assert_eq!(executor.max_seen.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn result_lookup_before_and_after() {
        let pool = HandlerPool::new(slow_executor(), 2);
        assert!(pool.result(7).is_none());
        pool.enqueue(plan(7, "later"));
        pool.wait_all();
        assert_eq!(pool.result(7).unwrap().stdout, "later");
        pool.shutdown();
    }

    #[test]
    fn wait_all_on_idle_pool_returns_immediately() {
        let pool = HandlerPool::new(slow_executor(), 2);
        assert!(pool.wait_all().is_empty());
        pool.shutdown();
    }

    #[test]
    fn queue_metrics_settle_to_zero() {
        let recorder = Recorder::new();
        let pool = HandlerPool::with_recorder(slow_executor(), 2, recorder.clone());
        for i in 0..6 {
            pool.enqueue(plan(i, "x"));
        }
        pool.wait_all();
        pool.shutdown();
        let metrics = recorder.metrics();
        assert_eq!(metrics.gauge_value(QUEUE_DEPTH_GAUGE), Some(0.0));
        assert_eq!(metrics.gauge_value(WORKERS_BUSY_GAUGE), Some(0.0));
        assert_eq!(metrics.counter_value(JOBS_EXECUTED_COUNTER), 6);
        assert_eq!(metrics.histogram_count(QUEUE_WAIT_HISTOGRAM), 6);
        // The exposition must parse and carry the settled gauges.
        let samples = obs::metrics::parse_prometheus(&metrics.render_prometheus()).expect("parses");
        let depth = samples.iter().find(|s| s.name == QUEUE_DEPTH_GAUGE).unwrap();
        assert_eq!(depth.value, 0.0);
    }
}
