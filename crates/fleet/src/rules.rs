//! TPV-style destination rules: declarative `tool → node-class`
//! constraints with cores/memory right-sizing.
//!
//! Total Perspective Vortex routes Galaxy tools to destinations by
//! matching tool ids against operator-written rules that also right-size
//! the job's resource ask. This module is the fleet-level equivalent, in
//! the spirit of the single-node `gyan::rules::GpuDestinationRule`: the
//! *first matching* rule constrains which node classes may host the tool
//! and what cores/memory the placement records.
//!
//! Line syntax (one rule per line, `#` comments, first match wins):
//!
//! ```text
//! tool=bonito*  classes=v100,a100  min_gpu_mem_mib=12000  cores=8  mem_mib=65536
//! tool=racon_gpu classes=any
//! tool=*
//! ```
//!
//! * `tool=` — exact tool id, or a prefix glob with a trailing `*`
//!   (`bonito*` matches `bonito` and `bonito_gpu`); `*` matches any.
//! * `classes=` — comma-separated node-class labels, or `any`.
//! * `min_gpu_mem_mib=` — per-die memory floor a class must satisfy.
//! * `cores=` / `mem_mib=` — host-side right-sizing recorded on the
//!   placement (capped at the class's hardware by the fleet).

use crate::node::NodeClass;

/// One `tool → node-class` constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct DestinationRule {
    /// Tool pattern: exact id, trailing-`*` prefix glob, or `*`.
    pub tool: String,
    /// Allowed node-class labels; empty = any class.
    pub classes: Vec<String>,
    /// Per-die GPU memory floor in MiB (0 = no floor).
    pub min_gpu_mem_mib: u64,
    /// Host cores to right-size the job to, when set.
    pub cores: Option<u32>,
    /// Host memory (MiB) to right-size the job to, when set.
    pub mem_mib: Option<u64>,
}

impl DestinationRule {
    /// A rule admitting `tool` (pattern) on any class with no floors.
    pub fn any(tool: impl Into<String>) -> Self {
        DestinationRule {
            tool: tool.into(),
            classes: Vec::new(),
            min_gpu_mem_mib: 0,
            cores: None,
            mem_mib: None,
        }
    }

    /// Restrict to the given class labels.
    pub fn on_classes(mut self, classes: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.classes = classes.into_iter().map(Into::into).collect();
        self
    }

    /// Require at least this much per-die GPU memory (MiB).
    pub fn min_gpu_mem(mut self, mib: u64) -> Self {
        self.min_gpu_mem_mib = mib;
        self
    }

    /// Right-size to `cores` host cores.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = Some(cores);
        self
    }

    /// Right-size to `mib` host memory.
    pub fn with_mem(mut self, mib: u64) -> Self {
        self.mem_mib = Some(mib);
        self
    }

    /// Whether this rule's pattern matches `tool_id`.
    pub fn matches_tool(&self, tool_id: &str) -> bool {
        match self.tool.strip_suffix('*') {
            Some(prefix) => tool_id.starts_with(prefix),
            None => self.tool == tool_id,
        }
    }

    /// Whether `class` satisfies this rule's class list and memory floor.
    pub fn admits_class(&self, class: &NodeClass) -> bool {
        let class_ok = self.classes.is_empty() || self.classes.iter().any(|c| c == class.name);
        class_ok && class.arch.fb_total_mib >= self.min_gpu_mem_mib
    }

    /// Parse one rule line (see the module docs for the syntax).
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut rule: Option<DestinationRule> = None;
        let mut fields: Vec<(&str, &str)> = Vec::new();
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("rule token '{token}' is not key=value"))?;
            if key == "tool" {
                rule = Some(DestinationRule::any(value));
            } else {
                fields.push((key, value));
            }
        }
        let mut rule = rule.ok_or_else(|| format!("rule '{line}' has no tool= pattern"))?;
        for (key, value) in fields {
            match key {
                "classes" => {
                    if value != "any" {
                        rule.classes = value.split(',').map(str::to_string).collect();
                    }
                }
                "min_gpu_mem_mib" => {
                    rule.min_gpu_mem_mib =
                        value.parse().map_err(|_| format!("bad min_gpu_mem_mib '{value}'"))?;
                }
                "cores" => {
                    rule.cores = Some(value.parse().map_err(|_| format!("bad cores '{value}'"))?);
                }
                "mem_mib" => {
                    rule.mem_mib =
                        Some(value.parse().map_err(|_| format!("bad mem_mib '{value}'"))?);
                }
                other => return Err(format!("unknown rule key '{other}'")),
            }
        }
        Ok(rule)
    }
}

/// An ordered rule set; the first rule whose pattern matches decides.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DestinationRules {
    rules: Vec<DestinationRule>,
}

impl DestinationRules {
    /// An empty set (every tool admitted on every class).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a rule file: one rule per line, blank lines and `#` comments
    /// skipped.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut out = Self::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.rules.push(DestinationRule::parse(line)?);
        }
        Ok(out)
    }

    /// Append a rule (lowest priority so far).
    pub fn push(&mut self, rule: DestinationRule) {
        self.rules.push(rule);
    }

    /// Builder-style [`DestinationRules::push`].
    pub fn with(mut self, rule: DestinationRule) -> Self {
        self.push(rule);
        self
    }

    /// The first rule matching `tool_id`, if any.
    pub fn match_tool(&self, tool_id: &str) -> Option<&DestinationRule> {
        self.rules.iter().find(|r| r.matches_tool(tool_id))
    }

    /// Whether a node of `class` may host `tool_id` with the given per-job
    /// memory hint. No matching rule means no constraint; the hint must
    /// always fit one die.
    pub fn admits(&self, tool_id: &str, class: &NodeClass, memory_hint_mib: u64) -> bool {
        if class.arch.fb_total_mib < memory_hint_mib || class.gpus == 0 {
            return false;
        }
        self.match_tool(tool_id).is_none_or(|r| r.admits_class(class))
    }

    /// Right-sized (cores, host mem MiB) for `tool_id` on `class`: the
    /// matching rule's ask capped at the class's hardware, or the full
    /// node when no rule asks.
    pub fn right_size(&self, tool_id: &str, class: &NodeClass) -> (u32, u64) {
        match self.match_tool(tool_id) {
            Some(rule) => (
                rule.cores.unwrap_or(class.cores).min(class.cores),
                rule.mem_mib.unwrap_or(class.host_mem_mib).min(class.host_mem_mib),
            ),
            None => (class.cores, class.host_mem_mib),
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &str = "\
# basecallers need big dies
tool=bonito* classes=v100,a100 min_gpu_mem_mib=12000 cores=8 mem_mib=65536
tool=racon_gpu classes=any cores=4
tool=*
";

    #[test]
    fn parses_the_documented_syntax() {
        let rules = DestinationRules::parse(RULES).unwrap();
        assert_eq!(rules.len(), 3);
        let bonito = rules.match_tool("bonito_gpu").unwrap();
        assert_eq!(bonito.classes, vec!["v100", "a100"]);
        assert_eq!(bonito.min_gpu_mem_mib, 12_000);
        assert_eq!((bonito.cores, bonito.mem_mib), (Some(8), Some(65_536)));
        // First match wins: racon_gpu hits its own rule, not the catch-all.
        assert_eq!(rules.match_tool("racon_gpu").unwrap().cores, Some(4));
        assert!(rules.match_tool("sort").unwrap().classes.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(DestinationRule::parse("classes=v100").is_err(), "no tool=");
        assert!(DestinationRule::parse("tool=x nonsense").is_err(), "bare token");
        assert!(DestinationRule::parse("tool=x flavor=mint").is_err(), "unknown key");
        assert!(DestinationRule::parse("tool=x cores=lots").is_err(), "bad number");
    }

    #[test]
    fn class_admission_honours_lists_and_memory_floors() {
        let rules = DestinationRules::parse(RULES).unwrap();
        // K80 dies (11,441 MiB) are both off-list and under the floor.
        assert!(!rules.admits("bonito", &NodeClass::k80(), 1024));
        assert!(rules.admits("bonito", &NodeClass::v100(), 1024));
        assert!(rules.admits("bonito", &NodeClass::a100(), 1024));
        // Unmatched tools are unconstrained (but never fit a cpu node).
        assert!(rules.admits("racon_gpu", &NodeClass::k80(), 1024));
        assert!(!rules.admits("racon_gpu", &NodeClass::cpu(), 1024));
        // The per-job hint must fit one die regardless of rules.
        assert!(!rules.admits("racon_gpu", &NodeClass::k80(), 20_000));
        assert!(rules.admits("racon_gpu", &NodeClass::a100(), 20_000));
    }

    #[test]
    fn right_sizing_caps_at_the_class_hardware() {
        let rules = DestinationRules::parse(RULES).unwrap();
        assert_eq!(rules.right_size("bonito", &NodeClass::a100()), (8, 65_536));
        // cores=8 asked, but the rule's mem cap exceeds nothing on a100;
        // on the smaller k80 host the ask is clamped.
        let rules2 = DestinationRules::new()
            .with(DestinationRule::any("*").with_cores(512).with_mem(1 << 30));
        assert_eq!(rules2.right_size("x", &NodeClass::k80()), (32, 128 * 1024));
        // No rules: the whole node.
        assert_eq!(DestinationRules::new().right_size("x", &NodeClass::v100()), (40, 256 * 1024));
    }

    #[test]
    fn min_gpu_mem_floor_without_class_list() {
        let rules = DestinationRules::new().with(DestinationRule::any("deep*").min_gpu_mem(30_000));
        assert!(!rules.admits("deepvariant", &NodeClass::v100(), 100));
        assert!(rules.admits("deepvariant", &NodeClass::a100(), 100));
    }
}
