//! Node classes and per-node shards.
//!
//! A *node class* describes one hardware flavour an operator runs
//! (architecture, GPU count, host cores/memory); a *shard* is one
//! concrete node of a class: its own [`GpuCluster`] and its own
//! [`LeaseTable`]. Shards never share a lock — the fleet's placement
//! layer reads their state, picks one, and only that shard's table
//! serializes the minor-level grant.

use gpusim::{GpuArch, GpuCluster, VirtualClock};
use gyan::reservations::LeaseTable;
use std::sync::atomic::{AtomicU8, Ordering};

/// Operational status of one shard. `Ready` accepts placements;
/// `Cordoned` is skipped by placement but keeps serving releases (the
/// drain state); `Dead` is a failed node — placement skips it and its
/// leases have been force-released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Accepting placements.
    Ready,
    /// Skipped by placement; existing leases still drain through release.
    Cordoned,
    /// Failed: skipped by placement, leases force-released as lost.
    Dead,
}

impl NodeStatus {
    /// Lower-case status name for `/api/nodes` and audits.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeStatus::Ready => "ready",
            NodeStatus::Cordoned => "cordoned",
            NodeStatus::Dead => "dead",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => NodeStatus::Cordoned,
            2 => NodeStatus::Dead,
            _ => NodeStatus::Ready,
        }
    }
}

/// One hardware flavour of the fleet (all nodes of a class are identical;
/// heterogeneity lives *between* classes).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeClass {
    /// Class label used in destination rules and node names ("k80", ...).
    pub name: &'static str,
    /// Per-die architecture of the class's GPUs.
    pub arch: GpuArch,
    /// GPUs (dies) per node.
    pub gpus: u32,
    /// Host CPU cores per node (right-sizing ceiling for `cores=` rules).
    pub cores: u32,
    /// Host memory per node in MiB.
    pub host_mem_mib: u64,
}

impl NodeClass {
    /// The paper's evaluation flavour: one K80 board (2 dies) per node.
    pub fn k80() -> Self {
        NodeClass {
            name: "k80",
            arch: GpuArch::tesla_k80(),
            gpus: 2,
            cores: 32,
            host_mem_mib: 128 * 1024,
        }
    }

    /// Volta flavour: 4×V100 per node (DGX-1-style half-board).
    pub fn v100() -> Self {
        NodeClass {
            name: "v100",
            arch: GpuArch::tesla_v100(),
            gpus: 4,
            cores: 40,
            host_mem_mib: 256 * 1024,
        }
    }

    /// Ampere flavour: 8×A100 per node (DGX-A100-style board).
    pub fn a100() -> Self {
        NodeClass {
            name: "a100",
            arch: GpuArch::a100(),
            gpus: 8,
            cores: 64,
            host_mem_mib: 512 * 1024,
        }
    }

    /// GPU-less flavour for CPU-only work.
    pub fn cpu() -> Self {
        NodeClass {
            name: "cpu",
            arch: GpuArch::tesla_k80(),
            gpus: 0,
            cores: 96,
            host_mem_mib: 256 * 1024,
        }
    }

    /// Look a stock class up by its label.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "k80" => Some(Self::k80()),
            "v100" => Some(Self::v100()),
            "a100" => Some(Self::a100()),
            "cpu" => Some(Self::cpu()),
            _ => None,
        }
    }
}

/// One concrete node: its own simulated cluster and its own lease table.
pub struct NodeShard {
    /// Fleet-wide node id (index into the fleet's shard list).
    pub id: u32,
    /// Stable node name, `<class>-<id:03>` (e.g. `a100-017`).
    pub name: String,
    /// The class this node belongs to.
    pub class: NodeClass,
    /// The node's devices, clocked on the fleet-wide timeline.
    pub cluster: GpuCluster,
    /// The node's reservation layer (its only lock).
    pub table: LeaseTable,
    /// Operational status (shards are `Arc`-shared without a lock of
    /// their own, so the status is a lone atomic).
    status: AtomicU8,
}

impl NodeShard {
    /// Build shard `id` of `class` on the fleet's shared clock.
    pub fn new(id: u32, class: NodeClass, clock: &VirtualClock) -> Self {
        let cluster = GpuCluster::node_on_clock(class.arch.clone(), class.gpus, clock);
        NodeShard {
            id,
            name: format!("{}-{:03}", class.name, id),
            class,
            cluster,
            table: LeaseTable::new(),
            status: AtomicU8::new(0),
        }
    }

    /// Current operational status.
    pub fn status(&self) -> NodeStatus {
        NodeStatus::from_u8(self.status.load(Ordering::SeqCst))
    }

    /// Set the operational status (cordon/uncordon/fail transitions are
    /// owned by [`crate::fleet::Fleet`], which also audits them).
    pub fn set_status(&self, status: NodeStatus) {
        self.status.store(status as u8, Ordering::SeqCst);
    }

    /// Whether placement may choose this shard (only `Ready` shards are
    /// candidates; cordoned and dead shards keep serving releases).
    pub fn is_placeable(&self) -> bool {
        self.status() == NodeStatus::Ready
    }

    /// Instantaneous load snapshot the placement policies score.
    /// `user_active` is filled in by the fleet (the shard does not track
    /// who holds its leases).
    pub fn load(&self) -> NodeLoad {
        let view = self.table.view();
        let device_count = self.cluster.device_count();
        let free_devices = self
            .cluster
            .available_devices()
            .into_iter()
            .filter(|minor| !view.is_leased(*minor))
            .count();
        let pending_mem_mib = (0..device_count).map(|m| view.pending_mem(m)).sum();
        NodeLoad {
            node: self.id,
            device_count,
            active_leases: self.table.lease_count(),
            free_devices,
            pending_mem_mib,
            user_active: 0,
        }
    }
}

/// What a placement policy sees of one candidate node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// Fleet-wide node id.
    pub node: u32,
    /// GPUs on the node.
    pub device_count: u32,
    /// Active leases across the node's devices.
    pub active_leases: usize,
    /// Devices that are SMI-available *and* unleased.
    pub free_devices: usize,
    /// Sum of pending declared memory across devices (MiB).
    pub pending_mem_mib: u64,
    /// Active fleet placements the requesting user already holds here.
    pub user_active: usize,
}

impl NodeLoad {
    /// Leases per device — the canonical load measure (0.0 = idle,
    /// 1.0 = every device leased once, >1.0 = oversubscribed).
    pub fn utilization(&self) -> f64 {
        self.active_leases as f64 / f64::from(self.device_count.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gyan::allocation::AllocationPolicy;

    #[test]
    fn stock_classes_are_heterogeneous() {
        let k80 = NodeClass::k80();
        let v100 = NodeClass::v100();
        let a100 = NodeClass::a100();
        assert!(k80.arch.fb_total_mib < v100.arch.fb_total_mib);
        assert!(v100.arch.fb_total_mib < a100.arch.fb_total_mib);
        assert_eq!(NodeClass::by_name("a100"), Some(a100));
        assert_eq!(NodeClass::by_name("hopper"), None);
        assert_eq!(NodeClass::cpu().gpus, 0);
    }

    #[test]
    fn shard_names_embed_class_and_id() {
        let clock = VirtualClock::new();
        let shard = NodeShard::new(17, NodeClass::a100(), &clock);
        assert_eq!(shard.name, "a100-017");
        assert_eq!(shard.cluster.device_count(), 8);
        assert_eq!(shard.cluster.arch().unwrap().name, "A100-SXM4-40GB");
    }

    #[test]
    fn load_counts_leases_and_free_devices() {
        let clock = VirtualClock::new();
        let shard = NodeShard::new(0, NodeClass::k80(), &clock);
        let idle = shard.load();
        assert_eq!((idle.active_leases, idle.free_devices), (0, 2));
        assert_eq!(idle.utilization(), 0.0);

        shard
            .table
            .allocate_and_lease(&shard.cluster, &[0], AllocationPolicy::ProcessId, 7, 512, None)
            .expect("k80 node allocates");
        let loaded = shard.load();
        assert_eq!(loaded.active_leases, 1);
        assert_eq!(loaded.free_devices, 1);
        assert_eq!(loaded.pending_mem_mib, 512);
        assert!(loaded.utilization() > 0.4);
    }

    #[test]
    fn status_transitions_gate_placeability() {
        let clock = VirtualClock::new();
        let shard = NodeShard::new(0, NodeClass::k80(), &clock);
        assert_eq!(shard.status(), NodeStatus::Ready);
        assert!(shard.is_placeable());
        shard.set_status(NodeStatus::Cordoned);
        assert_eq!(shard.status().as_str(), "cordoned");
        assert!(!shard.is_placeable());
        shard.set_status(NodeStatus::Dead);
        assert!(!shard.is_placeable());
        shard.set_status(NodeStatus::Ready);
        assert!(shard.is_placeable());
    }

    #[test]
    fn shards_share_the_fleet_clock() {
        let clock = VirtualClock::new();
        let a = NodeShard::new(0, NodeClass::k80(), &clock);
        let b = NodeShard::new(1, NodeClass::v100(), &clock);
        clock.advance(5.0);
        assert_eq!(a.cluster.clock().now(), 5.0);
        assert_eq!(b.cluster.clock().now(), 5.0);
    }
}
