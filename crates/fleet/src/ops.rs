//! Fleet-level operations plane: node-labeled GPU/job views over all
//! shards, served through the same embedded `obs::serve` stack as the
//! single-node `gyan::ops::ops_server`.
//!
//! | endpoint         | content                                            |
//! |------------------|----------------------------------------------------|
//! | `/metrics`       | recorder registry incl. `fleet_*{node=...}` series |
//! | `/api/gpus`      | every shard's devices, each `"node"`-labeled       |
//! | `/api/nodes`     | per-node summaries (class, devices, leases, free)  |
//! | `/api/jobs`      | ledger snapshots joined with leases across shards  |
//! | `/api/alerts`    | SLO alert-rule states                              |
//! | `/api/flightrec` | flight-recorder JSONL dump                         |
//! | `/api/profile`   | hot-path profiler aggregation                      |

use crate::fleet::Fleet;
use galaxy::queue::JobsLedger;
use gyan::reservations::Lease;
use obs::json_escape;
use obs::serve::{OpsServer, Response};
use obs::slo::AlertEngine;
use obs::Recorder;
use std::sync::Arc;

/// JSON document for the fleet's `/api/gpus`: the shards' device lists
/// concatenated in node-id order, every device carrying its node's name.
pub fn fleet_gpus_json(fleet: &Fleet) -> String {
    let objects: Vec<String> = fleet
        .shards()
        .iter()
        .flat_map(|s| gyan::ops::gpu_objects(&s.cluster, &s.table, &s.name))
        .collect();
    format!("{{\"gpus\":[{}]}}", objects.join(","))
}

/// JSON document for `/api/nodes`: one summary object per shard.
pub fn fleet_nodes_json(fleet: &Fleet) -> String {
    let nodes: Vec<String> = fleet
        .shards()
        .iter()
        .map(|s| {
            let load = s.load();
            format!(
                "{{\"node\":\"{}\",\"class\":\"{}\",\"arch\":\"{}\",\"status\":\"{}\",\
                 \"cordoned\":{},\"devices\":{},\
                 \"active_leases\":{},\"free_devices\":{},\"pending_mem_mib\":{}}}",
                json_escape(&s.name),
                json_escape(s.class.name),
                json_escape(s.class.arch.name),
                s.status().as_str(),
                !s.is_placeable(),
                load.device_count,
                load.active_leases,
                load.free_devices,
                load.pending_mem_mib,
            )
        })
        .collect();
    format!("{{\"policy\":\"{}\",\"nodes\":[{}]}}", fleet.policy_name(), nodes.join(","))
}

/// All leases across all shards (the fleet-wide join key for the job
/// view).
fn fleet_leases(fleet: &Fleet) -> Vec<Lease> {
    fleet.shards().iter().flat_map(|s| s.table.all_leases()).collect()
}

/// JSON document for the fleet's `/api/jobs`: every ledger snapshot in
/// id order, joined with the leases it holds on *any* shard. Reuses
/// [`gyan::ops::job_object`] so the schema matches the single-node plane.
pub fn fleet_jobs_json(fleet: &Fleet, ledger: &JobsLedger) -> String {
    let leases = fleet_leases(fleet);
    let jobs: Vec<String> =
        ledger.all().iter().map(|s| gyan::ops::job_object(s, &leases)).collect();
    format!("{{\"jobs\":[{}]}}", jobs.join(","))
}

/// Build the fleet operations server. Like `gyan::ops::ops_server` the
/// returned server is not yet listening — call `.start("127.0.0.1:0")`.
/// All routes observe the live fleet through handle clones.
pub fn fleet_ops_server(
    recorder: &Recorder,
    fleet: &Fleet,
    ledger: &JobsLedger,
    alerts: &AlertEngine,
) -> OpsServer {
    let gpus_fleet = fleet.clone();
    let nodes_fleet = fleet.clone();
    let jobs = (fleet.clone(), ledger.clone());
    let alerts_handle = alerts.clone();
    let flight = recorder.clone();
    OpsServer::new()
        .serve_metrics(recorder.metrics())
        .route("/api/gpus", Arc::new(move |_req| Response::json(fleet_gpus_json(&gpus_fleet))))
        .route("/api/nodes", Arc::new(move |_req| Response::json(fleet_nodes_json(&nodes_fleet))))
        .route(
            "/api/jobs",
            Arc::new(move |req| match req.path.strip_prefix("/api/jobs/") {
                None => Response::json(fleet_jobs_json(&jobs.0, &jobs.1)),
                Some(rest) => match rest.parse::<u64>().ok() {
                    Some(id) => match jobs.1.get(id) {
                        Some(snap) => {
                            Response::json(gyan::ops::job_object(&snap, &fleet_leases(&jobs.0)))
                        }
                        None => Response::not_found(&format!("job {id}")),
                    },
                    None => Response::not_found("job id"),
                },
            }),
        )
        .route("/api/alerts", Arc::new(move |_req| Response::json(alerts_handle.to_json())))
        .route(
            "/api/flightrec",
            Arc::new(move |_req| match flight.flight_snapshot() {
                Some(snapshot) => Response::ok("application/jsonl", snapshot.to_jsonl()),
                None => Response::unavailable("flight recorder disabled"),
            }),
        )
        .route("/api/profile", gyan::ops::profile_route())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeClass;
    use crate::placement::PlacementRequest;
    use galaxy::queue::{JobSnapshot, SubmissionState};
    use obs::serve::http_get;

    fn small_fleet() -> Fleet {
        Fleet::builder()
            .nodes(NodeClass::k80(), 1)
            .nodes(NodeClass::a100(), 1)
            .recorder(Recorder::new())
            .build()
    }

    fn place(fleet: &Fleet, job_id: u64) {
        fleet
            .place(&PlacementRequest {
                job_id,
                user: "ada",
                tool_id: "racon_gpu",
                // Pin one minor: an empty request takes every free die.
                requested: &[0],
                memory_hint_mib: 256,
                excluded_nodes: &[],
            })
            .expect("fleet places");
    }

    #[test]
    fn gpus_json_concatenates_all_shards_with_node_labels() {
        let fleet = small_fleet();
        place(&fleet, 1);
        let doc = obs::json::parse(&fleet_gpus_json(&fleet)).expect("parses");
        let gpus = doc.get("gpus").and_then(|v| v.as_array()).expect("gpus");
        // 2 K80 dies + 8 A100 dies.
        assert_eq!(gpus.len(), 10);
        let nodes: Vec<&str> =
            gpus.iter().filter_map(|g| g.get("node").and_then(|v| v.as_str())).collect();
        assert_eq!(nodes.iter().filter(|n| **n == "k80-000").count(), 2);
        assert_eq!(nodes.iter().filter(|n| **n == "a100-001").count(), 8);
        // Job 1 landed on the k80 (tie → lowest node id): its lease shows
        // on a k80-000 device.
        let leased: Vec<&str> = gpus
            .iter()
            .filter(|g| {
                g.get("leases").and_then(|v| v.as_array()).map(|l| !l.is_empty()).unwrap_or(false)
            })
            .filter_map(|g| g.get("node").and_then(|v| v.as_str()))
            .collect();
        assert_eq!(leased, vec!["k80-000"]);
    }

    #[test]
    fn nodes_json_summarizes_every_shard() {
        let fleet = small_fleet();
        place(&fleet, 1);
        let doc = obs::json::parse(&fleet_nodes_json(&fleet)).expect("parses");
        assert_eq!(doc.get("policy").and_then(|v| v.as_str()), Some("least_loaded"));
        let nodes = doc.get("nodes").and_then(|v| v.as_array()).expect("nodes");
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].get("node").and_then(|v| v.as_str()), Some("k80-000"));
        assert_eq!(nodes[0].get("active_leases").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(nodes[1].get("class").and_then(|v| v.as_str()), Some("a100"));
        assert_eq!(nodes[1].get("free_devices").and_then(|v| v.as_f64()), Some(8.0));
        assert_eq!(nodes[0].get("status").and_then(|v| v.as_str()), Some("ready"));
        assert_eq!(nodes[0].get("cordoned").and_then(|v| v.as_bool()), Some(false));
        // Cordon state flows straight into the view.
        fleet.cordon("k80-000");
        let doc = obs::json::parse(&fleet_nodes_json(&fleet)).expect("parses");
        let nodes = doc.get("nodes").and_then(|v| v.as_array()).expect("nodes");
        assert_eq!(nodes[0].get("status").and_then(|v| v.as_str()), Some("cordoned"));
        assert_eq!(nodes[0].get("cordoned").and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn jobs_json_joins_leases_across_shards() {
        let fleet = small_fleet();
        place(&fleet, 7);
        let ledger = JobsLedger::new();
        ledger.upsert(JobSnapshot {
            job_id: 7,
            user: "ada".to_string(),
            tool: "racon_gpu".to_string(),
            state: SubmissionState::Queued,
            attempts: 1,
            destination: Some("fleet_gpu".to_string()),
            node: Some("k80-000".to_string()),
            priority: 1,
            submitted_at: 0.0,
            finished_at: None,
        });
        let doc = obs::json::parse(&fleet_jobs_json(&fleet, &ledger)).expect("parses");
        let jobs = doc.get("jobs").and_then(|v| v.as_array()).expect("jobs");
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].get("node").and_then(|v| v.as_str()), Some("k80-000"));
        let leases = jobs[0].get("leases").and_then(|v| v.as_array()).expect("leases");
        assert!(!leases.is_empty());
    }

    #[test]
    fn fleet_ops_server_serves_labeled_views() {
        let recorder = Recorder::new();
        let fleet = Fleet::builder()
            .nodes(NodeClass::k80(), 1)
            .nodes(NodeClass::v100(), 1)
            .recorder(recorder.clone())
            .build();
        place(&fleet, 1);
        let ledger = JobsLedger::new();
        let alerts = AlertEngine::new(&recorder);
        let handle = fleet_ops_server(&recorder, &fleet, &ledger, &alerts)
            .start("127.0.0.1:0")
            .expect("bind");
        let addr = handle.addr();

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("fleet_placements_total{node=\"k80-000\"} 1"),
            "per-node placement counter missing: {body}"
        );
        assert!(body.contains("fleet_leases_active{node=\"k80-000\"} 1"), "{body}");

        let (status, body) = http_get(addr, "/api/gpus").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"node\":\"k80-000\""));
        assert!(body.contains("\"node\":\"v100-001\""));

        let (status, body) = http_get(addr, "/api/nodes").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"class\":\"v100\""));

        let (status, body) = http_get(addr, "/api/jobs").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"jobs\":[]"));
        let (status, _) = http_get(addr, "/api/jobs/9").unwrap();
        assert_eq!(status, 404);

        let (status, _) = http_get(addr, "/api/alerts").unwrap();
        assert_eq!(status, 200);

        handle.shutdown();
    }
}
