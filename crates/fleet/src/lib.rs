//! Sharded multi-node GPU placement over heterogeneous architectures.
//!
//! The paper maps Galaxy tools onto the GPUs of a single 2×K80 node;
//! everything below `fleet` still schedules through one
//! [`gpusim::GpuCluster`] and one [`gyan::reservations::LeaseTable`] lock.
//! This crate adds the layer above: a [`Fleet`] owning N per-node
//! *shards* — each shard its own cluster + lease table, no cross-node
//! lock — and a placement layer that picks a **node** before
//! `allocate_and_lease` picks a **minor**:
//!
//! ```text
//!            ┌───────────── Fleet ─────────────┐
//!  job ──►   │ 1. filter: destination rules    │   two-phase placement
//!            │    (tool → node class, memory)  │
//!            │ 2. score: PlacementPolicy       │   phase 1: pick the node
//!            │    (least-loaded / bin-pack /   │     (fleet-level, lock-free
//!            │     fair-share), ties → lowest  │      reads of shard state)
//!            │     node id                     │
//!            └────────────┬────────────────────┘
//!                         ▼
//!            ┌─ NodeShard k80-000 ─┐ ┌─ NodeShard a100-001 ─┐ …
//!            │ GpuCluster (2×K80)  │ │ GpuCluster (8×A100)  │   phase 2: that
//!            │ LeaseTable (own     │ │ LeaseTable (own      │   shard's lease
//!            │   lock)             │ │   lock)              │   table picks the
//!            └─────────────────────┘ └──────────────────────┘   minor atomically
//! ```
//!
//! Destination rules are Total-Perspective-Vortex style: declarative
//! `tool → node-class` constraints with cores/memory right-sizing (see
//! [`rules::DestinationRules::parse`] for the line syntax).
//!
//! [`hook::install_fleet`] wires a fleet into a
//! [`galaxy::GalaxyApp`]/queue-engine stack the same way
//! `gyan::setup::install_gyan` wires a single node: a dynamic destination
//! rule plus a [`galaxy::runners::JobHook`] that places, exports
//! `CUDA_VISIBLE_DEVICES` *and* `GALAXY_NODE`, and releases on
//! conclusion. [`ops::fleet_ops_server`] serves node-labeled GPU/job
//! views and per-node Prometheus metrics.

pub mod fleet;
pub mod hook;
pub mod node;
pub mod ops;
pub mod placement;
pub mod rules;

pub use fleet::{Fleet, FleetBuilder, Placement};
pub use hook::{
    install_fleet, install_fleet_with_footprint, FleetConfig, FleetHook,
    FLEET_INVALID_HINT_COUNTER, FLEET_INVALID_HINT_EVENT,
};
pub use node::{NodeClass, NodeLoad, NodeShard, NodeStatus};
pub use ops::{fleet_gpus_json, fleet_jobs_json, fleet_nodes_json, fleet_ops_server};
pub use placement::{
    policy_by_name, BinPack, FairShare, LeastLoaded, PlacementPolicy, PlacementRequest,
};
pub use rules::{DestinationRule, DestinationRules};
