//! Node-scoring strategies behind one [`PlacementPolicy`] trait.
//!
//! Policies only *score* — lower is better, and the fleet breaks ties by
//! lowest node id — so every strategy is deterministic by construction:
//! same fleet state, same request, same choice.

use crate::node::NodeLoad;
use std::sync::Arc;

/// What a policy knows about the job being placed.
#[derive(Debug, Clone)]
pub struct PlacementRequest<'a> {
    /// Job id (the lease holder on the chosen shard).
    pub job_id: u64,
    /// Submitting user (drives [`FairShare`]; empty when unknown).
    pub user: &'a str,
    /// Tool id (drives destination-rule filtering, not scoring).
    pub tool_id: &'a str,
    /// Device minors the tool pinned (passed through to the shard's
    /// minor-level allocation).
    pub requested: &'a [u32],
    /// Declared GPU memory (MiB) — a candidate node's dies must fit it.
    pub memory_hint_mib: u64,
    /// Node names excluded from candidacy (phase-1a filtering). Fed by
    /// placement-aware resubmission: every node a previous attempt of
    /// this job failed on.
    pub excluded_nodes: &'a [String],
}

/// A node-scoring strategy. Implementations must be pure functions of
/// `(load, request)`: the fleet sorts candidates by `(score, node id)`,
/// so a deterministic score yields a deterministic placement.
pub trait PlacementPolicy: Send + Sync {
    /// Strategy name for audits and config (`least_loaded`, ...).
    fn name(&self) -> &'static str;
    /// Score a candidate node; **lower wins**.
    fn score(&self, load: &NodeLoad, req: &PlacementRequest<'_>) -> f64;
}

/// Spread: prefer the node with the fewest leases per device, then the
/// least pending declared memory.
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least_loaded"
    }

    fn score(&self, load: &NodeLoad, _req: &PlacementRequest<'_>) -> f64 {
        // Pending memory only breaks utilization ties (scaled far below
        // one lease's worth of utilization on any realistic node).
        load.utilization() + load.pending_mem_mib as f64 * 1e-12
    }
}

/// Consolidate: fill the busiest node that still has a free device, so
/// idle nodes stay idle (the power/packing strategy). Nodes with no free
/// device fall back to least-loaded oversubscription, always scoring
/// worse than any node with a free device.
pub struct BinPack;

impl PlacementPolicy for BinPack {
    fn name(&self) -> &'static str {
        "bin_pack"
    }

    fn score(&self, load: &NodeLoad, _req: &PlacementRequest<'_>) -> f64 {
        if load.free_devices > 0 {
            // utilization ∈ [0, 1) here; negate so fuller wins.
            -load.utilization()
        } else {
            1.0 + load.utilization()
        }
    }
}

/// Fair-share-aware spread: steer a user away from nodes already running
/// their jobs (one user's burst cannot monopolize a node), least-loaded
/// among equals.
pub struct FairShare;

impl PlacementPolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair_share"
    }

    fn score(&self, load: &NodeLoad, _req: &PlacementRequest<'_>) -> f64 {
        load.user_active as f64 * 100.0 + load.utilization()
    }
}

/// Look a stock policy up by its config name.
pub fn policy_by_name(name: &str) -> Option<Arc<dyn PlacementPolicy>> {
    match name {
        "least_loaded" => Some(Arc::new(LeastLoaded)),
        "bin_pack" => Some(Arc::new(BinPack)),
        "fair_share" => Some(Arc::new(FairShare)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(node: u32, leases: usize, free: usize, user_active: usize) -> NodeLoad {
        NodeLoad {
            node,
            device_count: 4,
            active_leases: leases,
            free_devices: free,
            pending_mem_mib: 0,
            user_active,
        }
    }

    fn req() -> PlacementRequest<'static> {
        PlacementRequest {
            job_id: 1,
            user: "ada",
            tool_id: "racon_gpu",
            requested: &[],
            memory_hint_mib: 100,
            excluded_nodes: &[],
        }
    }

    #[test]
    fn least_loaded_prefers_emptier_nodes() {
        let p = LeastLoaded;
        assert!(p.score(&load(0, 1, 3, 0), &req()) < p.score(&load(1, 3, 1, 0), &req()));
    }

    #[test]
    fn bin_pack_prefers_fuller_nodes_with_room() {
        let p = BinPack;
        let fuller = load(0, 3, 1, 0);
        let emptier = load(1, 1, 3, 0);
        let saturated = load(2, 4, 0, 0);
        assert!(p.score(&fuller, &req()) < p.score(&emptier, &req()));
        // Any node with a free device beats every saturated node.
        assert!(p.score(&emptier, &req()) < p.score(&saturated, &req()));
    }

    #[test]
    fn fair_share_penalizes_the_users_own_nodes() {
        let p = FairShare;
        let mine = load(0, 1, 3, 1);
        let other = load(1, 3, 1, 0);
        assert!(p.score(&other, &req()) < p.score(&mine, &req()));
    }

    #[test]
    fn stock_policies_resolve_by_name() {
        for name in ["least_loaded", "bin_pack", "fair_share"] {
            assert_eq!(policy_by_name(name).unwrap().name(), name);
        }
        assert!(policy_by_name("random").is_none());
    }
}
