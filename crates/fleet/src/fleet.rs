//! The [`Fleet`]: shard ownership, two-phase placement, and per-node
//! accounting.
//!
//! Placement is two-phase: the fleet filters candidate shards through
//! the destination rules (phase 1a), scores survivors with the
//! configured [`PlacementPolicy`] (phase 1b, ties broken by lowest node
//! id), and only then lets the chosen shard's
//! [`gyan::reservations::LeaseTable::allocate_and_lease`] pick the minor atomically (phase
//! 2). The fleet's own bookkeeping — the job→node map — is the state the
//! simtest invariants audit: every lease on shard S must belong to a job
//! the fleet booked on S, and no job may hold leases on two shards.

use crate::node::{NodeClass, NodeShard, NodeStatus};
use crate::placement::{LeastLoaded, PlacementPolicy, PlacementRequest};
use crate::rules::DestinationRules;
use gpusim::VirtualClock;
use gyan::allocation::{Allocation, AllocationPolicy};
use obs::{Recorder, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Counter: successful placements, labeled `{node="<name>"}`.
pub const FLEET_PLACEMENTS_COUNTER: &str = "fleet_placements_total";
/// Counter: requests no candidate node could host.
pub const FLEET_REJECTED_COUNTER: &str = "fleet_placement_rejected_total";
/// Gauge: active leases per node, labeled `{node="<name>"}`.
pub const FLEET_LEASES_GAUGE: &str = "fleet_leases_active";
/// Audit event emitted per placement decision.
pub const FLEET_DECISION_EVENT: &str = "fleet.placement.decision";
/// Audit event emitted per release.
pub const FLEET_RELEASE_EVENT: &str = "fleet.placement.release";
/// Gauge: 1 when a node is cordoned or dead, 0 when ready, labeled
/// `{node="<name>"}`.
pub const FLEET_CORDONED_GAUGE: &str = "fleet_node_cordoned";
/// Audit event emitted per node status transition (cordon, uncordon,
/// drain, fail).
pub const FLEET_NODE_EVENT: &str = "fleet.node.status";
/// Release reason recorded when a node dies with leases on it.
pub const NODE_LOST_REASON: &str = "node_lost";

/// A successful placement: the chosen node plus the shard-level grant.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The placed job.
    pub job_id: u64,
    /// Chosen node id.
    pub node: u32,
    /// Chosen node name (exported as `GALAXY_NODE`).
    pub node_name: String,
    /// Chosen node's class label.
    pub node_class: String,
    /// The minor-level grant from the shard's lease table.
    pub allocation: Allocation,
    /// Right-sized host cores (TPV-style).
    pub cores: u32,
    /// Right-sized host memory in MiB (TPV-style).
    pub mem_mib: u64,
}

/// Fleet-side record of an active placement.
#[derive(Debug, Clone)]
struct Booking {
    node: u32,
    user: String,
}

/// N per-node shards plus the placement layer above them. Clones share
/// state (shards, bookings, policy), so one handle can serve the
/// dispatch hook, the ops server, and the invariant checker at once.
#[derive(Clone)]
pub struct Fleet {
    shards: Arc<Vec<NodeShard>>,
    rules: Arc<DestinationRules>,
    policy: Arc<dyn PlacementPolicy>,
    alloc_policy: AllocationPolicy,
    bookings: Arc<Mutex<BTreeMap<u64, Booking>>>,
    clock: VirtualClock,
    recorder: Option<Recorder>,
}

/// Builder for [`Fleet`].
pub struct FleetBuilder {
    nodes: Vec<NodeClass>,
    rules: DestinationRules,
    policy: Arc<dyn PlacementPolicy>,
    alloc_policy: AllocationPolicy,
    clock: VirtualClock,
    recorder: Option<Recorder>,
}

impl FleetBuilder {
    /// Add `count` nodes of `class` (node ids assigned in call order).
    pub fn nodes(mut self, class: NodeClass, count: u32) -> Self {
        for _ in 0..count {
            self.nodes.push(class.clone());
        }
        self
    }

    /// Install TPV-style destination rules (default: none).
    pub fn rules(mut self, rules: DestinationRules) -> Self {
        self.rules = rules;
        self
    }

    /// Node-scoring strategy (default: [`LeastLoaded`]).
    pub fn policy(mut self, policy: Arc<dyn PlacementPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Minor-level allocation strategy within the chosen shard (default:
    /// [`AllocationPolicy::ProcessId`]).
    pub fn allocation_policy(mut self, policy: AllocationPolicy) -> Self {
        self.alloc_policy = policy;
        self
    }

    /// Drive all shards from `clock` instead of a fresh fleet clock.
    pub fn clock(mut self, clock: VirtualClock) -> Self {
        self.clock = clock;
        self
    }

    /// Emit decision audits and per-node metrics through `recorder`.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Materialize the shards and the fleet handle.
    pub fn build(self) -> Fleet {
        let shards: Vec<NodeShard> = self
            .nodes
            .into_iter()
            .enumerate()
            .map(|(id, class)| NodeShard::new(id as u32, class, &self.clock))
            .collect();
        Fleet {
            shards: Arc::new(shards),
            rules: Arc::new(self.rules),
            policy: self.policy,
            alloc_policy: self.alloc_policy,
            bookings: Arc::new(Mutex::new(BTreeMap::new())),
            clock: self.clock,
            recorder: self.recorder,
        }
    }
}

impl Fleet {
    /// Start building a fleet.
    pub fn builder() -> FleetBuilder {
        FleetBuilder {
            nodes: Vec::new(),
            rules: DestinationRules::new(),
            policy: Arc::new(LeastLoaded),
            alloc_policy: AllocationPolicy::ProcessId,
            clock: VirtualClock::new(),
            recorder: None,
        }
    }

    /// The fleet-wide virtual clock all shards share.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The shards, in node-id order.
    pub fn shards(&self) -> &[NodeShard] {
        &self.shards
    }

    /// One shard by node id.
    pub fn shard(&self, node: u32) -> Option<&NodeShard> {
        self.shards.get(node as usize)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.shards.len()
    }

    /// The active placement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The installed destination rules.
    pub fn rules(&self) -> &DestinationRules {
        &self.rules
    }

    /// Place a job: filter candidates by rules/arch/memory, score with
    /// the policy (ties → lowest node id), then lease minors on the
    /// chosen shard. `None` when no candidate admits the job or every
    /// candidate's shard refused (GPU-less fleet).
    pub fn place(&self, req: &PlacementRequest<'_>) -> Option<Placement> {
        obs::profile_scope!("fleet.place");
        let mut candidates: Vec<(f64, u32)> = {
            let bookings = self.bookings.lock();
            self.shards
                .iter()
                .filter(|s| s.is_placeable())
                .filter(|s| !req.excluded_nodes.iter().any(|n| n == &s.name))
                .filter(|s| self.rules.admits(req.tool_id, &s.class, req.memory_hint_mib))
                .map(|s| {
                    let mut load = s.load();
                    load.user_active =
                        bookings.values().filter(|b| b.node == s.id && b.user == req.user).count();
                    (self.policy.score(&load, req), s.id)
                })
                .collect()
        };
        // Deterministic total order: score, then lowest node id. f64
        // scores come from pure policy functions, so total_cmp is stable.
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        if candidates.is_empty() {
            if let Some(rec) = &self.recorder {
                rec.metrics().inc_counter(FLEET_REJECTED_COUNTER, 1);
                rec.event(
                    FLEET_DECISION_EVENT,
                    vec![
                        ("job_id", Value::from(req.job_id)),
                        ("tool", Value::from(req.tool_id)),
                        ("user", Value::from(req.user)),
                        ("policy", Value::from(self.policy.name())),
                        ("placed", Value::from(false)),
                        ("candidates", Value::from(0u64)),
                    ],
                );
            }
            return None;
        }

        let n_candidates = candidates.len();
        for (score, node) in candidates {
            let shard = &self.shards[node as usize];
            let Some(allocation) = shard.table.allocate_and_lease(
                &shard.cluster,
                req.requested,
                self.alloc_policy,
                req.job_id,
                req.memory_hint_mib,
                self.recorder.as_ref(),
            ) else {
                continue;
            };
            self.bookings.lock().insert(req.job_id, Booking { node, user: req.user.to_string() });
            let (cores, mem_mib) = self.rules.right_size(req.tool_id, &shard.class);
            if let Some(rec) = &self.recorder {
                let m = rec.metrics();
                m.inc_counter(&format!("{FLEET_PLACEMENTS_COUNTER}{{node=\"{}\"}}", shard.name), 1);
                m.set_gauge(
                    &format!("{FLEET_LEASES_GAUGE}{{node=\"{}\"}}", shard.name),
                    shard.table.lease_count() as f64,
                );
                rec.event(
                    FLEET_DECISION_EVENT,
                    vec![
                        ("job_id", Value::from(req.job_id)),
                        ("tool", Value::from(req.tool_id)),
                        ("user", Value::from(req.user)),
                        ("policy", Value::from(self.policy.name())),
                        ("placed", Value::from(true)),
                        ("candidates", Value::from(n_candidates)),
                        ("node", Value::from(shard.name.as_str())),
                        ("node_class", Value::from(shard.class.name)),
                        ("score", Value::from(score)),
                        (
                            "cuda_visible_devices",
                            Value::from(allocation.cuda_visible_devices.as_str()),
                        ),
                        ("cores", Value::from(u64::from(cores))),
                        ("mem_mib", Value::from(mem_mib)),
                    ],
                );
            }
            return Some(Placement {
                job_id: req.job_id,
                node,
                node_name: shard.name.clone(),
                node_class: shard.class.name.to_string(),
                allocation,
                cores,
                mem_mib,
            });
        }
        None
    }

    /// Release a job's placement: drops its leases on the booked shard
    /// and forgets the booking. Returns the number of leases released
    /// (0 for unknown jobs — release is idempotent, like the lease
    /// table's).
    pub fn release(&self, job_id: u64, why: &str) -> usize {
        let Some(booking) = self.bookings.lock().remove(&job_id) else { return 0 };
        let shard = &self.shards[booking.node as usize];
        let released = shard.table.release(job_id, why, self.recorder.as_ref());
        if let Some(rec) = &self.recorder {
            rec.metrics().set_gauge(
                &format!("{FLEET_LEASES_GAUGE}{{node=\"{}\"}}", shard.name),
                shard.table.lease_count() as f64,
            );
            rec.event(
                FLEET_RELEASE_EVENT,
                vec![
                    ("job_id", Value::from(job_id)),
                    ("node", Value::from(shard.name.as_str())),
                    ("why", Value::from(why)),
                    ("released", Value::from(released)),
                ],
            );
        }
        released
    }

    /// The node a job is currently booked on.
    pub fn node_of(&self, job_id: u64) -> Option<u32> {
        self.bookings.lock().get(&job_id).map(|b| b.node)
    }

    /// Snapshot of active bookings: (job id, node id), in job-id order.
    pub fn active_placements(&self) -> Vec<(u64, u32)> {
        self.bookings.lock().iter().map(|(job, b)| (*job, b.node)).collect()
    }

    /// Sum of lease counts across all shards.
    pub fn total_lease_count(&self) -> usize {
        self.shards.iter().map(|s| s.table.lease_count()).sum()
    }

    /// Per-shard lease holders, in node-id order — the raw material for
    /// the fleet-wide no-double-booking invariant.
    pub fn holders_by_node(&self) -> Vec<(u32, Vec<u64>)> {
        self.shards.iter().map(|s| (s.id, s.table.holders())).collect()
    }

    /// The decision-audit recorder, when the fleet was built with one
    /// (shared so hooks can audit through the same sink).
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// A shard by its stable node name (`k80-000`, ...).
    pub fn shard_named(&self, name: &str) -> Option<&NodeShard> {
        self.shards.iter().find(|s| s.name == name)
    }

    fn audit_node_status(&self, shard: &NodeShard, action: &str, leases: usize) {
        if let Some(rec) = &self.recorder {
            let cordoned = if shard.is_placeable() { 0.0 } else { 1.0 };
            rec.metrics()
                .set_gauge(&format!("{FLEET_CORDONED_GAUGE}{{node=\"{}\"}}", shard.name), cordoned);
            rec.event(
                FLEET_NODE_EVENT,
                vec![
                    ("node", Value::from(shard.name.as_str())),
                    ("action", Value::from(action)),
                    ("status", Value::from(shard.status().as_str())),
                    ("leases", Value::from(leases)),
                ],
            );
        }
    }

    /// Cordon a node: placement skips it from now on, but its leases keep
    /// draining through [`Fleet::release`]. Idempotent (re-cordoning a
    /// cordoned node is a no-op); returns false for unknown nodes and for
    /// dead ones (a dead node cannot come back as merely cordoned).
    pub fn cordon(&self, node: &str) -> bool {
        let Some(shard) = self.shard_named(node) else { return false };
        match shard.status() {
            NodeStatus::Dead => false,
            NodeStatus::Cordoned => true,
            NodeStatus::Ready => {
                shard.set_status(NodeStatus::Cordoned);
                self.audit_node_status(shard, "cordon", shard.table.lease_count());
                true
            }
        }
    }

    /// Lift a cordon (or resurrect a dead node, modeling a repaired host
    /// rejoining). Returns false for unknown nodes.
    pub fn uncordon(&self, node: &str) -> bool {
        let Some(shard) = self.shard_named(node) else { return false };
        if shard.status() != NodeStatus::Ready {
            shard.set_status(NodeStatus::Ready);
            self.audit_node_status(shard, "uncordon", shard.table.lease_count());
        }
        true
    }

    /// Begin draining a node: cordon it and report how many leases still
    /// have to release before the drain resolves (0 = already drained).
    /// `None` for unknown or dead nodes.
    pub fn drain(&self, node: &str) -> Option<usize> {
        let shard = self.shard_named(node)?;
        if shard.status() == NodeStatus::Dead {
            return None;
        }
        if shard.status() == NodeStatus::Ready {
            shard.set_status(NodeStatus::Cordoned);
        }
        let remaining = shard.table.lease_count();
        self.audit_node_status(shard, "drain", remaining);
        Some(remaining)
    }

    /// Whether a node's drain has resolved: it is cordoned (or dead) and
    /// holds no leases. `None` for unknown nodes; `Some(false)` while
    /// ready or still holding leases.
    pub fn is_drained(&self, node: &str) -> Option<bool> {
        let shard = self.shard_named(node)?;
        Some(!shard.is_placeable() && shard.table.lease_count() == 0)
    }

    /// Kill a node: mark it dead, force-release every booking on it as
    /// [`NODE_LOST_REASON`], and return the lost jobs' ids (the queue
    /// layer concludes them `failed_retryable` and resubmits elsewhere).
    /// `None` for unknown nodes; idempotent on an already-dead node
    /// (returns the now-empty lost set).
    pub fn fail_node(&self, node: &str) -> Option<Vec<u64>> {
        let shard = self.shard_named(node)?;
        shard.set_status(NodeStatus::Dead);
        let lost: Vec<u64> = self
            .bookings
            .lock()
            .iter()
            .filter(|(_, b)| b.node == shard.id)
            .map(|(job, _)| *job)
            .collect();
        for job_id in &lost {
            self.release(*job_id, NODE_LOST_REASON);
        }
        self.audit_node_status(shard, "fail", lost.len());
        Some(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{BinPack, FairShare};
    use crate::rules::DestinationRule;

    // Pin one minor so each placement leases exactly one die (an empty
    // request takes every free die on the chosen node, per gyan).
    fn request(job_id: u64, user: &'static str, tool: &'static str) -> PlacementRequest<'static> {
        PlacementRequest {
            job_id,
            user,
            tool_id: tool,
            requested: &[0],
            memory_hint_mib: 256,
            excluded_nodes: &[],
        }
    }

    fn two_k80s() -> Fleet {
        Fleet::builder().nodes(NodeClass::k80(), 2).build()
    }

    #[test]
    fn ties_break_to_the_lowest_node_id() {
        let fleet = two_k80s();
        let p = fleet.place(&request(1, "ada", "racon_gpu")).expect("placed");
        assert_eq!((p.node, p.node_name.as_str()), (0, "k80-000"));
        // Node 0 now carries a lease, so the next job spreads to node 1.
        let p2 = fleet.place(&request(2, "ada", "racon_gpu")).expect("placed");
        assert_eq!(p2.node, 1);
    }

    #[test]
    fn release_is_idempotent_and_scoped_to_the_booked_shard() {
        let fleet = two_k80s();
        fleet.place(&request(1, "ada", "racon_gpu")).unwrap();
        assert_eq!(fleet.node_of(1), Some(0));
        assert_eq!(fleet.total_lease_count(), 1);
        assert!(fleet.release(1, "ok") > 0);
        assert_eq!(fleet.release(1, "ok"), 0);
        assert_eq!((fleet.total_lease_count(), fleet.node_of(1)), (0, None));
    }

    #[test]
    fn rules_exclude_classes_and_reject_when_nothing_fits() {
        let rules = DestinationRules::new()
            .with(DestinationRule::any("bonito*").on_classes(["a100"]))
            .with(DestinationRule::any("*"));
        let fleet = Fleet::builder()
            .nodes(NodeClass::k80(), 2)
            .nodes(NodeClass::a100(), 1)
            .rules(rules)
            .build();
        let p = fleet.place(&request(1, "ada", "bonito")).expect("a100 admits");
        assert_eq!(p.node_class, "a100");
        // A hint bigger than any die in the fleet: rejected.
        let huge = PlacementRequest {
            job_id: 2,
            user: "ada",
            tool_id: "racon_gpu",
            requested: &[0],
            memory_hint_mib: 1 << 20,
            excluded_nodes: &[],
        };
        assert!(fleet.place(&huge).is_none());
    }

    #[test]
    fn bin_pack_fills_a_node_before_spilling() {
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).policy(Arc::new(BinPack)).build();
        // A K80 shard has 2 dies: the first two jobs pack node 0.
        for job in 1..=2u64 {
            assert_eq!(fleet.place(&request(job, "ada", "racon_gpu")).unwrap().node, 0);
        }
        // Node 0 has no free die left; node 1 does, and wins.
        assert_eq!(fleet.place(&request(3, "ada", "racon_gpu")).unwrap().node, 1);
    }

    #[test]
    fn fair_share_spreads_one_users_burst() {
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 3).policy(Arc::new(FairShare)).build();
        let nodes: Vec<u32> = (1..=3u64)
            .map(|job| fleet.place(&request(job, "ada", "racon_gpu")).unwrap().node)
            .collect();
        assert_eq!(nodes, vec![0, 1, 2], "each placement avoids ada's nodes");
        // A different user starts from node 0 again (it is least loaded
        // among nodes where bob runs nothing — all of them — so lowest
        // utilization wins; all equal → lowest id).
        assert_eq!(fleet.place(&request(4, "bob", "racon_gpu")).unwrap().node, 0);
    }

    #[test]
    fn placement_records_right_sized_resources() {
        let rules =
            DestinationRules::new().with(DestinationRule::any("*").with_cores(4).with_mem(8192));
        let fleet = Fleet::builder().nodes(NodeClass::v100(), 1).rules(rules).build();
        let p = fleet.place(&request(1, "ada", "racon_gpu")).unwrap();
        assert_eq!((p.cores, p.mem_mib), (4, 8192));
    }

    #[test]
    fn excluded_nodes_are_filtered_before_scoring() {
        let fleet = two_k80s();
        let excluded = vec!["k80-000".to_string()];
        let req = PlacementRequest {
            job_id: 1,
            user: "ada",
            tool_id: "racon_gpu",
            requested: &[0],
            memory_hint_mib: 256,
            excluded_nodes: &excluded,
        };
        // Node 0 would win the tie-break; the exclusion forces node 1.
        assert_eq!(fleet.place(&req).expect("node 1 hosts").node, 1);
        // Excluding every node leaves no candidate at all.
        let all = vec!["k80-000".to_string(), "k80-001".to_string()];
        let req = PlacementRequest { job_id: 2, excluded_nodes: &all, ..req };
        assert!(fleet.place(&req).is_none());
    }

    #[test]
    fn cordoned_node_skips_placement_but_serves_releases() {
        let fleet = two_k80s();
        fleet.place(&request(1, "ada", "racon_gpu")).unwrap();
        assert_eq!(fleet.node_of(1), Some(0));
        assert!(fleet.cordon("k80-000"));
        // New placements avoid the cordoned node...
        assert_eq!(fleet.place(&request(2, "ada", "racon_gpu")).unwrap().node, 1);
        // ...but its existing lease still releases.
        assert!(fleet.release(1, "ok") > 0);
        assert_eq!(fleet.is_drained("k80-000"), Some(true));
        assert!(fleet.uncordon("k80-000"));
        assert_eq!(fleet.place(&request(3, "ada", "racon_gpu")).unwrap().node, 0);
        assert!(!fleet.cordon("ghost-042"), "unknown nodes are not cordonable");
    }

    #[test]
    fn drain_resolves_when_the_lease_count_hits_zero() {
        let fleet = two_k80s();
        fleet.place(&request(1, "ada", "racon_gpu")).unwrap();
        assert_eq!(fleet.drain("k80-000"), Some(1));
        assert_eq!(fleet.is_drained("k80-000"), Some(false));
        fleet.release(1, "ok");
        assert_eq!(fleet.is_drained("k80-000"), Some(true));
        // A ready node with no leases is not "drained" — it is serving.
        assert_eq!(fleet.is_drained("k80-001"), Some(false));
    }

    #[test]
    fn fail_node_force_releases_bookings_as_node_lost() {
        let recorder = Recorder::new();
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).recorder(recorder.clone()).build();
        fleet.place(&request(1, "ada", "racon_gpu")).unwrap();
        fleet.place(&request(2, "bob", "racon_gpu")).unwrap();
        let lost = fleet.fail_node("k80-000").expect("known node");
        assert_eq!(lost, vec![1]);
        assert_eq!(fleet.node_of(1), None, "booking gone");
        assert_eq!(fleet.shard_named("k80-000").unwrap().table.lease_count(), 0);
        // Job 2 on the surviving node is untouched.
        assert_eq!(fleet.node_of(2), Some(1));
        // The dead node takes no further placements and cannot be merely
        // cordoned; uncordon models a repaired host rejoining.
        assert_eq!(fleet.place(&request(3, "ada", "racon_gpu")).unwrap().node, 1);
        assert!(!fleet.cordon("k80-000"));
        assert_eq!(fleet.drain("k80-000"), None);
        let log = recorder.to_jsonl();
        assert!(log.contains(NODE_LOST_REASON), "{log}");
        assert!(log.contains("\"action\":\"fail\""), "{log}");
        let gauge = recorder.metrics().gauge_value("fleet_node_cordoned{node=\"k80-000\"}");
        assert_eq!(gauge, Some(1.0));
    }

    #[test]
    fn audits_and_labeled_metrics_flow_through_the_recorder() {
        let recorder = Recorder::new();
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).recorder(recorder.clone()).build();
        fleet.place(&request(1, "ada", "racon_gpu")).unwrap();
        fleet.release(1, "ok");
        let m = recorder.metrics();
        assert_eq!(m.counter_value("fleet_placements_total{node=\"k80-000\"}"), 1);
        assert_eq!(m.gauge_value("fleet_leases_active{node=\"k80-000\"}"), Some(0.0));
        let log = recorder.to_jsonl();
        assert!(log.contains(FLEET_DECISION_EVENT), "{log}");
        assert!(log.contains(FLEET_RELEASE_EVENT), "{log}");
        assert!(log.contains("\"node_class\":\"k80\""), "{log}");
    }
}
