//! Galaxy wiring: the fleet-level [`JobHook`] and [`install_fleet`].
//!
//! Mirrors `gyan::setup::install_gyan`, but the hook's allocation step is
//! the fleet's two-phase placement: pick a node, then lease minors on
//! that node's shard. On success the job's environment carries
//! `CUDA_VISIBLE_DEVICES` (shard-local minors) *and* `GALAXY_NODE` (the
//! chosen node's name) — the queue engine copies the latter onto the
//! jobs ledger so every snapshot is node-labeled.

use crate::fleet::Fleet;
use crate::placement::PlacementRequest;
use galaxy::job::conf::Destination;
use galaxy::job::Job;
use galaxy::runners::{JobConclusion, JobHook};
use galaxy::tool::Tool;
use galaxy::GalaxyApp;
use gyan::footprint::{
    EstimateSource, FootprintRegistry, MemoryHint, GALAXY_INPUT_SIZE_MIB_ENV,
    GPU_MEMORY_BUDGET_ENV, GPU_OBSERVED_PEAK_ENV,
};
use gyan::orchestrator::{DEFAULT_GPU_MEMORY_HINT_MIB, GPU_MEMORY_HINT_PARAM};
use gyan::setup::ClusterTime;
use gyan::{CUDA_VISIBLE_DEVICES, GALAXY_GPU_ENABLED, GPU_ENABLED_PARAM};
use obs::Value;

/// Counter: `gpu_memory_hint_mib` params that failed to parse (the hook
/// fell back to its default instead of silently ignoring the typo).
pub const FLEET_INVALID_HINT_COUNTER: &str = "fleet_invalid_memory_hint_total";
/// Decision-audit event emitted per malformed `gpu_memory_hint_mib`.
pub const FLEET_INVALID_HINT_EVENT: &str = "fleet.hook.invalid_memory_hint";

/// Options for [`install_fleet`] (the fleet-level `GyanConfig`).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Destination id the dynamic rule picks for GPU jobs.
    pub gpu_destination: String,
    /// Destination id for CPU fallback.
    pub cpu_destination: String,
    /// All destination ids the hook treats as GPU destinations.
    pub gpu_destinations: Vec<String>,
    /// Name under which the dynamic rule is registered.
    pub rule_name: String,
    /// Memory (MiB) a GPU job is assumed to allocate when its destination
    /// carries no `gpu_memory_hint_mib` param.
    pub gpu_memory_hint_mib: u64,
    /// Memory-hint resolution mode: [`MemoryHint::Static`] always uses
    /// the hint above; [`MemoryHint::Learned`] right-sizes from footprint
    /// profiles once they converge — admitting borderline jobs to shared
    /// leases the static hint would have rejected, and letting the queue
    /// engine revise budgets before the blind GPU→CPU fallback.
    pub memory_hint: MemoryHint,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            gpu_destination: "fleet_gpu".to_string(),
            cpu_destination: "local_cpu".to_string(),
            gpu_destinations: vec!["fleet_gpu".to_string(), "local_gpu".to_string()],
            rule_name: "gpu_dynamic_destination".to_string(),
            gpu_memory_hint_mib: DEFAULT_GPU_MEMORY_HINT_MIB,
            memory_hint: MemoryHint::Static,
        }
    }
}

impl FleetConfig {
    /// Resolve memory hints from learned footprint profiles (default
    /// sample threshold) instead of the static hint.
    pub fn with_learned_hints(mut self) -> Self {
        self.memory_hint = MemoryHint::learned();
        self
    }
}

/// The fleet orchestration hook. Register with
/// [`galaxy::GalaxyApp::add_hook`] (or let [`install_fleet`] do it).
pub struct FleetHook {
    fleet: Fleet,
    gpu_destinations: Vec<String>,
    default_memory_hint_mib: u64,
    footprint: Option<FootprintRegistry>,
    hint_mode: MemoryHint,
}

impl FleetHook {
    /// Create a hook placing onto `fleet` for jobs landing on any of
    /// `gpu_destinations`.
    pub fn new(
        fleet: &Fleet,
        gpu_destinations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        FleetHook {
            fleet: fleet.clone(),
            gpu_destinations: gpu_destinations.into_iter().map(Into::into).collect(),
            default_memory_hint_mib: DEFAULT_GPU_MEMORY_HINT_MIB,
            footprint: None,
            hint_mode: MemoryHint::Static,
        }
    }

    /// Override the assumed per-job GPU memory (MiB).
    pub fn with_default_memory_hint(mut self, mib: u64) -> Self {
        self.default_memory_hint_mib = mib;
        self
    }

    /// Feed concluded GPU attempts into `registry` and resolve memory
    /// hints per `mode` (learned p95 over the static hint once a
    /// profile converges).
    pub fn with_footprint(mut self, registry: FootprintRegistry, mode: MemoryHint) -> Self {
        self.footprint = Some(registry);
        self.hint_mode = mode;
        self
    }

    fn is_gpu_destination(&self, destination: &Destination) -> bool {
        self.gpu_destinations.iter().any(|d| d == &destination.id)
    }

    fn memory_hint(&self, job_id: u64, destination: &Destination) -> u64 {
        match destination.params.get(GPU_MEMORY_HINT_PARAM) {
            None => self.default_memory_hint_mib,
            Some(raw) => match raw.parse() {
                Ok(mib) => mib,
                Err(_) => {
                    // A typo'd hint must not pass silently: audit the
                    // fallback so the operator sees the config is wrong.
                    if let Some(rec) = self.fleet.recorder() {
                        rec.metrics().inc_counter(FLEET_INVALID_HINT_COUNTER, 1);
                        rec.event(
                            FLEET_INVALID_HINT_EVENT,
                            vec![
                                ("job_id", Value::from(job_id)),
                                ("destination", Value::from(destination.id.as_str())),
                                ("raw", Value::from(raw)),
                                ("fallback_mib", Value::from(self.default_memory_hint_mib)),
                            ],
                        );
                    }
                    self.default_memory_hint_mib
                }
            },
        }
    }

    /// Declared input size for profile bucketing (0 when unset).
    fn input_mib(job: &Job) -> u64 {
        job.env_var(GALAXY_INPUT_SIZE_MIB_ENV).and_then(|v| v.parse().ok()).unwrap_or(0)
    }

    /// Resolve the memory hint for this attempt: footprint-revised
    /// override env > learned p95 > static (destination param /
    /// default), mirroring `gyan::GyanHook`. Returns the resolved hint,
    /// the static hint it would replace (resolved exactly once, so a
    /// malformed destination param is audited exactly once per
    /// dispatch), and the source tag.
    fn resolve_memory_hint(
        &self,
        job: &Job,
        destination: &Destination,
    ) -> (u64, u64, EstimateSource) {
        let static_hint = self.memory_hint(job.id, destination);
        if let Some(over) =
            job.env_var(galaxy::GALAXY_GPU_BUDGET_OVERRIDE_ENV).and_then(|v| v.parse().ok())
        {
            return (over, static_hint, EstimateSource::Override);
        }
        if let (MemoryHint::Learned { min_samples }, Some(registry)) =
            (self.hint_mode, self.footprint.as_ref())
        {
            if let Some(learned) =
                registry.estimate(&job.tool_id, Self::input_mib(job), min_samples)
            {
                return (learned, static_hint, EstimateSource::Learned);
            }
        }
        (static_hint, static_hint, EstimateSource::Static)
    }
}

/// Resolve a destination's `gpu_memory_hint_mib` the way [`FleetHook`]
/// does — per-destination param first, then the configured default — so
/// the dynamic rule, the placement advisor, and the hook can never
/// disagree about the hint for the same destination.
fn destination_memory_hint(
    conf: &galaxy::job::conf::JobConfig,
    destination_id: &str,
    default_mib: u64,
) -> u64 {
    conf.destination(destination_id)
        .and_then(|d| d.params.get(GPU_MEMORY_HINT_PARAM))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_mib)
}

impl JobHook for FleetHook {
    fn before_dispatch(&self, job: &mut Job, tool: &Tool, destination: &Destination) {
        if tool.requires_gpu() && self.is_gpu_destination(destination) {
            let requested = tool.requested_gpu_ids();
            // The queue engine exports the fair-share user before
            // preparing the plan; direct GalaxyApp::submit has no user.
            let user = job.env_var(galaxy::GALAXY_USER_ENV).unwrap_or("").to_string();
            // Placement-aware resubmission: the engine exports the nodes
            // previous attempts failed on; phase-1a filters them out.
            let excluded: Vec<String> = job
                .env_var(galaxy::GALAXY_EXCLUDED_NODES_ENV)
                .map(parse_excluded_nodes)
                .unwrap_or_default();
            let (hint_mib, static_hint_mib, source) = self.resolve_memory_hint(job, destination);
            let req = PlacementRequest {
                job_id: job.id,
                user: &user,
                tool_id: &tool.id,
                requested: &requested,
                memory_hint_mib: hint_mib,
                excluded_nodes: &excluded,
            };
            if let Some(placement) = self.fleet.place(&req) {
                job.set_env(GALAXY_GPU_ENABLED, "true");
                job.set_env(CUDA_VISIBLE_DEVICES, placement.allocation.cuda_visible_devices);
                job.set_env(galaxy::GALAXY_NODE_ENV, placement.node_name);
                job.set_env(GPU_MEMORY_BUDGET_ENV, hint_mib.to_string());
                job.params.set(GPU_ENABLED_PARAM, "true");
                if let Some(registry) = &self.footprint {
                    let now = self.fleet.recorder().map(|r| r.now()).unwrap_or(0.0);
                    registry.note_dispatch(
                        job.id,
                        &job.tool_id,
                        Self::input_mib(job),
                        hint_mib,
                        static_hint_mib,
                        source,
                        job.env_var(GPU_OBSERVED_PEAK_ENV).and_then(|v| v.parse().ok()),
                        now,
                    );
                }
                return;
            }
        }
        job.set_env(GALAXY_GPU_ENABLED, "false");
        // On a resubmitted attempt this CPU branch runs with the failed
        // GPU attempt's exports still on the job record: drop them, or
        // the ledger would label a CPU retry with a node and device mask
        // it never touched.
        job.remove_env(CUDA_VISIBLE_DEVICES);
        job.remove_env(GPU_MEMORY_BUDGET_ENV);
        job.remove_env(galaxy::GALAXY_NODE_ENV);
        job.params.set(GPU_ENABLED_PARAM, "false");
        if let Some(registry) = &self.footprint {
            registry.forget(job.id);
        }
    }

    fn after_conclude(&self, job_id: u64, conclusion: JobConclusion) {
        self.fleet.release(job_id, conclusion.as_str());
        if let Some(registry) = &self.footprint {
            let now = self.fleet.recorder().map(|r| r.now()).unwrap_or(0.0);
            registry.conclude(job_id, conclusion == JobConclusion::Ok, now, self.fleet.recorder());
        }
    }
}

/// Split the comma-joined `GALAXY_EXCLUDED_NODES` export back into node
/// names.
fn parse_excluded_nodes(raw: &str) -> Vec<String> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
}

/// Install the fleet into `app`: registers a dynamic destination rule
/// (GPU tools the fleet can host → `gpu_destination`, everything else →
/// `cpu_destination`), the [`FleetHook`], both container GPU mutators,
/// and switches the app's time source to the fleet's shared clock.
///
/// The app's recorder becomes the fleet's decision-audit sink (with the
/// flight-recorder ring enabled), clocked on the fleet timeline. Note the
/// fleet must have been built with [`crate::FleetBuilder::recorder`] for
/// placement audits/metrics — `install_fleet` cannot retrofit a recorder
/// into an already-built fleet's shards.
pub fn install_fleet(app: &mut GalaxyApp, fleet: &Fleet, config: FleetConfig) {
    let _ = install_fleet_with_footprint(app, fleet, config);
}

/// [`install_fleet`] also returning the [`FootprintRegistry`] the hook
/// feeds, for ops surfaces and benches. In [`MemoryHint::Learned`] mode
/// the learned tool-wide p95 replaces the static hint in the dynamic
/// rule's and the placement advisor's admission checks (per-job context
/// does not exist there), and the registry backs a
/// [`galaxy::FootprintAdvisor`] so the queue engine can revise a failed
/// attempt's budget before falling back to CPU.
pub fn install_fleet_with_footprint(
    app: &mut GalaxyApp,
    fleet: &Fleet,
    config: FleetConfig,
) -> FootprintRegistry {
    let recorder = app.recorder().clone();
    let recorder_clock = fleet.clock().clone();
    recorder.set_clock(move || recorder_clock.now());
    recorder.enable_flight(gyan::ops::DEFAULT_FLIGHT_CAPACITY);

    let footprint = FootprintRegistry::new();
    // Tool-wide learned estimate used by the rule and advisor closures;
    // None in static mode or before the profiles converge.
    let learned_hint = {
        let registry = footprint.clone();
        let mode = config.memory_hint;
        move |tool_id: &str| match mode {
            MemoryHint::Static => None,
            MemoryHint::Learned { min_samples } => registry.estimate_tool(tool_id, min_samples),
        }
    };

    let rule_fleet = fleet.clone();
    let gpu_dest = config.gpu_destination.clone();
    let cpu_dest = config.cpu_destination.clone();
    let default_hint = config.gpu_memory_hint_mib;
    let rule_learned = learned_hint.clone();
    app.register_rule(
        config.rule_name.clone(),
        Box::new(move |tool: &Tool, _job: &Job, conf: &galaxy::job::conf::JobConfig| {
            // Resolve the hint exactly as the hook will (learned profile
            // over per-destination param over config default), so the
            // rule never routes a job to `fleet_gpu` that placement is
            // then forced to reject — and, in learned mode, admits
            // borderline tools the static hint would have turned away.
            let hint = rule_learned(&tool.id)
                .unwrap_or_else(|| destination_memory_hint(conf, &gpu_dest, default_hint));
            let hosts = tool.requires_gpu()
                && rule_fleet.shards().iter().any(|s| {
                    s.is_placeable() && rule_fleet.rules().admits(&tool.id, &s.class, hint)
                });
            Ok(if hosts { gpu_dest.clone() } else { cpu_dest.clone() })
        }),
    );
    // Placement-aware resubmission seam: the queue engine asks, per
    // failed attempt, whether the fleet still hosts the tool on this
    // destination once the failed nodes are excluded — retrying on the
    // fleet when yes, falling down the ladder (CPU) when no.
    let advisor_fleet = fleet.clone();
    let advisor_conf = app.config().clone();
    let advisor_gpu_dests = config.gpu_destinations.clone();
    let advisor_learned = learned_hint.clone();
    app.set_placement_advisor(Box::new(move |tool_id, dest_id, excluded| {
        if !advisor_gpu_dests.iter().any(|d| d == dest_id) {
            return false;
        }
        let hint = advisor_learned(tool_id)
            .unwrap_or_else(|| destination_memory_hint(&advisor_conf, dest_id, default_hint));
        advisor_fleet.shards().iter().any(|s| {
            s.is_placeable()
                && !excluded.iter().any(|n| n == &s.name)
                && advisor_fleet.rules().admits(tool_id, &s.class, hint)
        })
    }));
    if config.memory_hint != MemoryHint::Static {
        app.set_footprint_advisor(Box::new(gyan::footprint_advisor(footprint.clone())));
    }
    app.add_hook(Box::new(
        FleetHook::new(fleet, config.gpu_destinations.clone())
            .with_default_memory_hint(config.gpu_memory_hint_mib)
            .with_footprint(footprint.clone(), config.memory_hint),
    ));
    app.add_mutator(Box::new(gyan::container_gpu::DockerGpuMutator));
    app.add_mutator(Box::new(gyan::container_gpu::SingularityGpuMutator));
    app.set_time_source(Box::new(ClusterTime::new(fleet.clock().clone())));
    footprint
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeClass;
    use crate::rules::{DestinationRule, DestinationRules};
    use galaxy::params::ParamDict;
    use galaxy::tool::macros::MacroLibrary;
    use galaxy::tool::wrapper::parse_tool;

    fn gpu_tool(id: &str) -> Tool {
        parse_tool(
            &format!(
                r#"<tool id="{id}"><requirements>
                     <requirement type="compute">gpu</requirement>
                   </requirements><command>{id}</command></tool>"#
            ),
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn dest(id: &str) -> Destination {
        Destination { id: id.into(), runner: "local".into(), params: ParamDict::new() }
    }

    #[test]
    fn hook_exports_node_and_mask_then_releases() {
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).build();
        let hook = FleetHook::new(&fleet, ["fleet_gpu"]);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        hook.before_dispatch(&mut job, &gpu_tool("racon_gpu"), &dest("fleet_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
        assert_eq!(job.env_var(galaxy::GALAXY_NODE_ENV), Some("k80-000"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0,1"));
        assert_eq!(fleet.total_lease_count(), 2);
        hook.after_conclude(1, JobConclusion::Ok);
        assert_eq!(fleet.total_lease_count(), 0);
    }

    #[test]
    fn cpu_destination_and_cpu_tool_skip_placement() {
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).build();
        let hook = FleetHook::new(&fleet, ["fleet_gpu"]);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        hook.before_dispatch(&mut job, &gpu_tool("racon_gpu"), &dest("local_cpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
        assert!(job.env_var(galaxy::GALAXY_NODE_ENV).is_none());
        assert_eq!(fleet.total_lease_count(), 0);
    }

    #[test]
    fn rejected_placement_falls_back_to_cpu_env() {
        // bonito only runs on a100; this fleet has none.
        let rules =
            DestinationRules::new().with(DestinationRule::any("bonito*").on_classes(["a100"]));
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).rules(rules).build();
        let hook = FleetHook::new(&fleet, ["fleet_gpu"]);
        let mut job = Job::new(1, "bonito", ParamDict::new());
        hook.before_dispatch(&mut job, &gpu_tool("bonito"), &dest("fleet_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
        assert_eq!(fleet.total_lease_count(), 0);
    }

    #[test]
    fn learned_hint_admits_what_the_static_hint_rejected() {
        // The k80 shard holds 2 devices x 12 GiB. A 20 GiB static hint
        // makes placement impossible; the learned profile knows the tool
        // really peaks near 4 GiB and rescues the admission.
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).build();
        let registry = FootprintRegistry::new();
        for i in 0..8 {
            registry.observe("racon_gpu", 1000, 4000.0, 10.0, i as f64);
        }
        let static_hook = FleetHook::new(&fleet, ["fleet_gpu"]).with_default_memory_hint(20_000);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        job.set_env(GALAXY_INPUT_SIZE_MIB_ENV, "1000");
        static_hook.before_dispatch(&mut job, &gpu_tool("racon_gpu"), &dest("fleet_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"), "static hint rejects");

        let learned_hook = FleetHook::new(&fleet, ["fleet_gpu"])
            .with_default_memory_hint(20_000)
            .with_footprint(registry.clone(), MemoryHint::learned());
        let mut job = Job::new(2, "racon_gpu", ParamDict::new());
        job.set_env(GALAXY_INPUT_SIZE_MIB_ENV, "1000");
        learned_hook.before_dispatch(&mut job, &gpu_tool("racon_gpu"), &dest("fleet_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"), "learned hint admits");
        let budget: u64 = job.env_var(GPU_MEMORY_BUDGET_ENV).unwrap().parse().unwrap();
        assert!((3900..=4100).contains(&budget), "budget {budget}");
        assert_eq!(registry.pending_count(), 1);
        learned_hook.after_conclude(2, JobConclusion::Ok);
        assert_eq!(registry.pending_count(), 0);
    }

    #[test]
    fn install_fleet_routes_and_places_end_to_end() {
        let conf = galaxy::job::conf::JobConfig::from_xml(
            r#"<job_conf>
              <plugins><plugin id="local" type="runner" load="x"/></plugins>
              <destinations default="dyn">
                <destination id="dyn" runner="dynamic">
                  <param id="function">gpu_dynamic_destination</param>
                </destination>
                <destination id="fleet_gpu" runner="local"/>
                <destination id="local_cpu" runner="local"/>
              </destinations>
            </job_conf>"#,
        )
        .unwrap();
        let mut app = GalaxyApp::new(conf);
        app.install_tool_xml(
            r#"<tool id="racon_gpu"><requirements>
                 <requirement type="compute">gpu</requirement>
               </requirements><command>racon_gpu</command></tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap();
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).nodes(NodeClass::a100(), 1).build();
        install_fleet(&mut app, &fleet, FleetConfig::default());

        let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
        let job = app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("fleet_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
        // Least-loaded ties break to node 0 (the K80 node).
        assert_eq!(job.env_var(galaxy::GALAXY_NODE_ENV), Some("k80-000"));
        // submit() runs the full lifecycle: the conclusion released the
        // booking and its leases.
        assert_eq!(fleet.node_of(id), None);
        assert_eq!(fleet.total_lease_count(), 0);
    }

    #[test]
    fn install_fleet_sends_unhostable_tools_to_cpu() {
        let conf = galaxy::job::conf::JobConfig::from_xml(
            r#"<job_conf>
              <plugins><plugin id="local" type="runner" load="x"/></plugins>
              <destinations default="dyn">
                <destination id="dyn" runner="dynamic">
                  <param id="function">gpu_dynamic_destination</param>
                </destination>
                <destination id="fleet_gpu" runner="local"/>
                <destination id="local_cpu" runner="local"/>
              </destinations>
            </job_conf>"#,
        )
        .unwrap();
        let mut app = GalaxyApp::new(conf);
        app.install_tool_xml(
            r#"<tool id="bonito"><requirements>
                 <requirement type="compute">gpu</requirement>
               </requirements><command>bonito</command></tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap();
        let rules =
            DestinationRules::new().with(DestinationRule::any("bonito*").on_classes(["a100"]));
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).rules(rules).build();
        install_fleet(&mut app, &fleet, FleetConfig::default());

        let id = app.submit("bonito", &ParamDict::new()).unwrap();
        let job = app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
    }
}
