//! Galaxy wiring: the fleet-level [`JobHook`] and [`install_fleet`].
//!
//! Mirrors `gyan::setup::install_gyan`, but the hook's allocation step is
//! the fleet's two-phase placement: pick a node, then lease minors on
//! that node's shard. On success the job's environment carries
//! `CUDA_VISIBLE_DEVICES` (shard-local minors) *and* `GALAXY_NODE` (the
//! chosen node's name) — the queue engine copies the latter onto the
//! jobs ledger so every snapshot is node-labeled.

use crate::fleet::Fleet;
use crate::placement::PlacementRequest;
use galaxy::job::conf::Destination;
use galaxy::job::Job;
use galaxy::runners::{JobConclusion, JobHook};
use galaxy::tool::Tool;
use galaxy::GalaxyApp;
use gyan::orchestrator::{DEFAULT_GPU_MEMORY_HINT_MIB, GPU_MEMORY_HINT_PARAM};
use gyan::setup::ClusterTime;
use gyan::{CUDA_VISIBLE_DEVICES, GALAXY_GPU_ENABLED, GPU_ENABLED_PARAM};
use obs::Value;

/// Counter: `gpu_memory_hint_mib` params that failed to parse (the hook
/// fell back to its default instead of silently ignoring the typo).
pub const FLEET_INVALID_HINT_COUNTER: &str = "fleet_invalid_memory_hint_total";
/// Decision-audit event emitted per malformed `gpu_memory_hint_mib`.
pub const FLEET_INVALID_HINT_EVENT: &str = "fleet.hook.invalid_memory_hint";

/// Options for [`install_fleet`] (the fleet-level `GyanConfig`).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Destination id the dynamic rule picks for GPU jobs.
    pub gpu_destination: String,
    /// Destination id for CPU fallback.
    pub cpu_destination: String,
    /// All destination ids the hook treats as GPU destinations.
    pub gpu_destinations: Vec<String>,
    /// Name under which the dynamic rule is registered.
    pub rule_name: String,
    /// Memory (MiB) a GPU job is assumed to allocate when its destination
    /// carries no `gpu_memory_hint_mib` param.
    pub gpu_memory_hint_mib: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            gpu_destination: "fleet_gpu".to_string(),
            cpu_destination: "local_cpu".to_string(),
            gpu_destinations: vec!["fleet_gpu".to_string(), "local_gpu".to_string()],
            rule_name: "gpu_dynamic_destination".to_string(),
            gpu_memory_hint_mib: DEFAULT_GPU_MEMORY_HINT_MIB,
        }
    }
}

/// The fleet orchestration hook. Register with
/// [`galaxy::GalaxyApp::add_hook`] (or let [`install_fleet`] do it).
pub struct FleetHook {
    fleet: Fleet,
    gpu_destinations: Vec<String>,
    default_memory_hint_mib: u64,
}

impl FleetHook {
    /// Create a hook placing onto `fleet` for jobs landing on any of
    /// `gpu_destinations`.
    pub fn new(
        fleet: &Fleet,
        gpu_destinations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        FleetHook {
            fleet: fleet.clone(),
            gpu_destinations: gpu_destinations.into_iter().map(Into::into).collect(),
            default_memory_hint_mib: DEFAULT_GPU_MEMORY_HINT_MIB,
        }
    }

    /// Override the assumed per-job GPU memory (MiB).
    pub fn with_default_memory_hint(mut self, mib: u64) -> Self {
        self.default_memory_hint_mib = mib;
        self
    }

    fn is_gpu_destination(&self, destination: &Destination) -> bool {
        self.gpu_destinations.iter().any(|d| d == &destination.id)
    }

    fn memory_hint(&self, job_id: u64, destination: &Destination) -> u64 {
        match destination.params.get(GPU_MEMORY_HINT_PARAM) {
            None => self.default_memory_hint_mib,
            Some(raw) => match raw.parse() {
                Ok(mib) => mib,
                Err(_) => {
                    // A typo'd hint must not pass silently: audit the
                    // fallback so the operator sees the config is wrong.
                    if let Some(rec) = self.fleet.recorder() {
                        rec.metrics().inc_counter(FLEET_INVALID_HINT_COUNTER, 1);
                        rec.event(
                            FLEET_INVALID_HINT_EVENT,
                            vec![
                                ("job_id", Value::from(job_id)),
                                ("destination", Value::from(destination.id.as_str())),
                                ("raw", Value::from(raw)),
                                ("fallback_mib", Value::from(self.default_memory_hint_mib)),
                            ],
                        );
                    }
                    self.default_memory_hint_mib
                }
            },
        }
    }
}

/// Resolve a destination's `gpu_memory_hint_mib` the way [`FleetHook`]
/// does — per-destination param first, then the configured default — so
/// the dynamic rule, the placement advisor, and the hook can never
/// disagree about the hint for the same destination.
fn destination_memory_hint(
    conf: &galaxy::job::conf::JobConfig,
    destination_id: &str,
    default_mib: u64,
) -> u64 {
    conf.destination(destination_id)
        .and_then(|d| d.params.get(GPU_MEMORY_HINT_PARAM))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_mib)
}

impl JobHook for FleetHook {
    fn before_dispatch(&self, job: &mut Job, tool: &Tool, destination: &Destination) {
        if tool.requires_gpu() && self.is_gpu_destination(destination) {
            let requested = tool.requested_gpu_ids();
            // The queue engine exports the fair-share user before
            // preparing the plan; direct GalaxyApp::submit has no user.
            let user = job.env_var(galaxy::GALAXY_USER_ENV).unwrap_or("").to_string();
            // Placement-aware resubmission: the engine exports the nodes
            // previous attempts failed on; phase-1a filters them out.
            let excluded: Vec<String> = job
                .env_var(galaxy::GALAXY_EXCLUDED_NODES_ENV)
                .map(parse_excluded_nodes)
                .unwrap_or_default();
            let req = PlacementRequest {
                job_id: job.id,
                user: &user,
                tool_id: &tool.id,
                requested: &requested,
                memory_hint_mib: self.memory_hint(job.id, destination),
                excluded_nodes: &excluded,
            };
            if let Some(placement) = self.fleet.place(&req) {
                job.set_env(GALAXY_GPU_ENABLED, "true");
                job.set_env(CUDA_VISIBLE_DEVICES, placement.allocation.cuda_visible_devices);
                job.set_env(galaxy::GALAXY_NODE_ENV, placement.node_name);
                job.params.set(GPU_ENABLED_PARAM, "true");
                return;
            }
        }
        job.set_env(GALAXY_GPU_ENABLED, "false");
        // On a resubmitted attempt this CPU branch runs with the failed
        // GPU attempt's exports still on the job record: drop them, or
        // the ledger would label a CPU retry with a node and device mask
        // it never touched.
        job.remove_env(CUDA_VISIBLE_DEVICES);
        job.remove_env(galaxy::GALAXY_NODE_ENV);
        job.params.set(GPU_ENABLED_PARAM, "false");
    }

    fn after_conclude(&self, job_id: u64, conclusion: JobConclusion) {
        self.fleet.release(job_id, conclusion.as_str());
    }
}

/// Split the comma-joined `GALAXY_EXCLUDED_NODES` export back into node
/// names.
fn parse_excluded_nodes(raw: &str) -> Vec<String> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
}

/// Install the fleet into `app`: registers a dynamic destination rule
/// (GPU tools the fleet can host → `gpu_destination`, everything else →
/// `cpu_destination`), the [`FleetHook`], both container GPU mutators,
/// and switches the app's time source to the fleet's shared clock.
///
/// The app's recorder becomes the fleet's decision-audit sink (with the
/// flight-recorder ring enabled), clocked on the fleet timeline. Note the
/// fleet must have been built with [`crate::FleetBuilder::recorder`] for
/// placement audits/metrics — `install_fleet` cannot retrofit a recorder
/// into an already-built fleet's shards.
pub fn install_fleet(app: &mut GalaxyApp, fleet: &Fleet, config: FleetConfig) {
    let recorder = app.recorder().clone();
    let recorder_clock = fleet.clock().clone();
    recorder.set_clock(move || recorder_clock.now());
    recorder.enable_flight(gyan::ops::DEFAULT_FLIGHT_CAPACITY);

    let rule_fleet = fleet.clone();
    let gpu_dest = config.gpu_destination.clone();
    let cpu_dest = config.cpu_destination.clone();
    let default_hint = config.gpu_memory_hint_mib;
    app.register_rule(
        config.rule_name.clone(),
        Box::new(move |tool: &Tool, _job: &Job, conf: &galaxy::job::conf::JobConfig| {
            // Resolve the hint exactly as the hook will (per-destination
            // param over config default), so the rule never routes a job
            // to `fleet_gpu` that placement is then forced to reject.
            let hint = destination_memory_hint(conf, &gpu_dest, default_hint);
            let hosts = tool.requires_gpu()
                && rule_fleet.shards().iter().any(|s| {
                    s.is_placeable() && rule_fleet.rules().admits(&tool.id, &s.class, hint)
                });
            Ok(if hosts { gpu_dest.clone() } else { cpu_dest.clone() })
        }),
    );
    // Placement-aware resubmission seam: the queue engine asks, per
    // failed attempt, whether the fleet still hosts the tool on this
    // destination once the failed nodes are excluded — retrying on the
    // fleet when yes, falling down the ladder (CPU) when no.
    let advisor_fleet = fleet.clone();
    let advisor_conf = app.config().clone();
    let advisor_gpu_dests = config.gpu_destinations.clone();
    app.set_placement_advisor(Box::new(move |tool_id, dest_id, excluded| {
        if !advisor_gpu_dests.iter().any(|d| d == dest_id) {
            return false;
        }
        let hint = destination_memory_hint(&advisor_conf, dest_id, default_hint);
        advisor_fleet.shards().iter().any(|s| {
            s.is_placeable()
                && !excluded.iter().any(|n| n == &s.name)
                && advisor_fleet.rules().admits(tool_id, &s.class, hint)
        })
    }));
    app.add_hook(Box::new(
        FleetHook::new(fleet, config.gpu_destinations.clone())
            .with_default_memory_hint(config.gpu_memory_hint_mib),
    ));
    app.add_mutator(Box::new(gyan::container_gpu::DockerGpuMutator));
    app.add_mutator(Box::new(gyan::container_gpu::SingularityGpuMutator));
    app.set_time_source(Box::new(ClusterTime::new(fleet.clock().clone())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeClass;
    use crate::rules::{DestinationRule, DestinationRules};
    use galaxy::params::ParamDict;
    use galaxy::tool::macros::MacroLibrary;
    use galaxy::tool::wrapper::parse_tool;

    fn gpu_tool(id: &str) -> Tool {
        parse_tool(
            &format!(
                r#"<tool id="{id}"><requirements>
                     <requirement type="compute">gpu</requirement>
                   </requirements><command>{id}</command></tool>"#
            ),
            &MacroLibrary::new(),
        )
        .unwrap()
    }

    fn dest(id: &str) -> Destination {
        Destination { id: id.into(), runner: "local".into(), params: ParamDict::new() }
    }

    #[test]
    fn hook_exports_node_and_mask_then_releases() {
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).build();
        let hook = FleetHook::new(&fleet, ["fleet_gpu"]);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        hook.before_dispatch(&mut job, &gpu_tool("racon_gpu"), &dest("fleet_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
        assert_eq!(job.env_var(galaxy::GALAXY_NODE_ENV), Some("k80-000"));
        assert_eq!(job.env_var(CUDA_VISIBLE_DEVICES), Some("0,1"));
        assert_eq!(fleet.total_lease_count(), 2);
        hook.after_conclude(1, JobConclusion::Ok);
        assert_eq!(fleet.total_lease_count(), 0);
    }

    #[test]
    fn cpu_destination_and_cpu_tool_skip_placement() {
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).build();
        let hook = FleetHook::new(&fleet, ["fleet_gpu"]);
        let mut job = Job::new(1, "racon_gpu", ParamDict::new());
        hook.before_dispatch(&mut job, &gpu_tool("racon_gpu"), &dest("local_cpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
        assert!(job.env_var(galaxy::GALAXY_NODE_ENV).is_none());
        assert_eq!(fleet.total_lease_count(), 0);
    }

    #[test]
    fn rejected_placement_falls_back_to_cpu_env() {
        // bonito only runs on a100; this fleet has none.
        let rules =
            DestinationRules::new().with(DestinationRule::any("bonito*").on_classes(["a100"]));
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).rules(rules).build();
        let hook = FleetHook::new(&fleet, ["fleet_gpu"]);
        let mut job = Job::new(1, "bonito", ParamDict::new());
        hook.before_dispatch(&mut job, &gpu_tool("bonito"), &dest("fleet_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
        assert_eq!(fleet.total_lease_count(), 0);
    }

    #[test]
    fn install_fleet_routes_and_places_end_to_end() {
        let conf = galaxy::job::conf::JobConfig::from_xml(
            r#"<job_conf>
              <plugins><plugin id="local" type="runner" load="x"/></plugins>
              <destinations default="dyn">
                <destination id="dyn" runner="dynamic">
                  <param id="function">gpu_dynamic_destination</param>
                </destination>
                <destination id="fleet_gpu" runner="local"/>
                <destination id="local_cpu" runner="local"/>
              </destinations>
            </job_conf>"#,
        )
        .unwrap();
        let mut app = GalaxyApp::new(conf);
        app.install_tool_xml(
            r#"<tool id="racon_gpu"><requirements>
                 <requirement type="compute">gpu</requirement>
               </requirements><command>racon_gpu</command></tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap();
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 1).nodes(NodeClass::a100(), 1).build();
        install_fleet(&mut app, &fleet, FleetConfig::default());

        let id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
        let job = app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("fleet_gpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("true"));
        // Least-loaded ties break to node 0 (the K80 node).
        assert_eq!(job.env_var(galaxy::GALAXY_NODE_ENV), Some("k80-000"));
        // submit() runs the full lifecycle: the conclusion released the
        // booking and its leases.
        assert_eq!(fleet.node_of(id), None);
        assert_eq!(fleet.total_lease_count(), 0);
    }

    #[test]
    fn install_fleet_sends_unhostable_tools_to_cpu() {
        let conf = galaxy::job::conf::JobConfig::from_xml(
            r#"<job_conf>
              <plugins><plugin id="local" type="runner" load="x"/></plugins>
              <destinations default="dyn">
                <destination id="dyn" runner="dynamic">
                  <param id="function">gpu_dynamic_destination</param>
                </destination>
                <destination id="fleet_gpu" runner="local"/>
                <destination id="local_cpu" runner="local"/>
              </destinations>
            </job_conf>"#,
        )
        .unwrap();
        let mut app = GalaxyApp::new(conf);
        app.install_tool_xml(
            r#"<tool id="bonito"><requirements>
                 <requirement type="compute">gpu</requirement>
               </requirements><command>bonito</command></tool>"#,
            &MacroLibrary::new(),
        )
        .unwrap();
        let rules =
            DestinationRules::new().with(DestinationRule::any("bonito*").on_classes(["a100"]));
        let fleet = Fleet::builder().nodes(NodeClass::k80(), 2).rules(rules).build();
        install_fleet(&mut app, &fleet, FleetConfig::default());

        let id = app.submit("bonito", &ParamDict::new()).unwrap();
        let job = app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
        assert_eq!(job.env_var(GALAXY_GPU_ENABLED), Some("false"));
    }
}
