//! Scenario minimization.
//!
//! Given a failing scenario, try structurally smaller variants (fewer
//! jobs, fewer workflows, fewer faults) that still fail, and iterate to a
//! fixpoint. Everything stays deterministic: candidates are derived from
//! the scenario value, never from fresh randomness, so the shrink path
//! itself reproduces from the seed.

use crate::harness::run_scenario;
use crate::scenario::Scenario;
use crate::SimOptions;

/// Cap on candidate evaluations, so shrinking a pathological scenario
/// cannot dominate the test run.
const MAX_SHRINK_RUNS: usize = 200;

/// Smaller variants of `s`, most aggressive first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Halve the job list, then drop one job at a time (from the back, so
    // earlier fair-share ordering is preserved).
    if s.jobs.len() > 1 {
        let mut half = s.clone();
        half.jobs.truncate(s.jobs.len() / 2);
        out.push(half);
    }
    if !s.jobs.is_empty() {
        let mut one_less = s.clone();
        one_less.jobs.pop();
        out.push(one_less);
    }
    // Drop each workflow.
    for i in 0..s.dags.len() {
        let mut fewer = s.clone();
        fewer.dags.remove(i);
        out.push(fewer);
    }
    // Clear per-job runner faults.
    if s.jobs.iter().any(|j| j.fault.is_some()) {
        let mut clean = s.clone();
        for job in &mut clean.jobs {
            job.fault = None;
        }
        out.push(clean);
    }
    // Clear cluster-level fault fields one at a time.
    if s.faults.smi_query_failures > 0 {
        let mut f = s.clone();
        f.faults.smi_query_failures = 0;
        out.push(f);
    }
    if s.faults.freeze_smi_at_wave.is_some() {
        let mut f = s.clone();
        f.faults.freeze_smi_at_wave = None;
        out.push(f);
    }
    if s.faults.discard_at_wave.is_some() {
        let mut f = s.clone();
        f.faults.discard_at_wave = None;
        out.push(f);
    }
    // Relax queue pressure back to defaults.
    if s.queue_capacity != 64 {
        let mut relaxed = s.clone();
        relaxed.queue_capacity = 64;
        out.push(relaxed);
    }
    if s.per_user_limit.is_some() {
        let mut relaxed = s.clone();
        relaxed.per_user_limit = None;
        out.push(relaxed);
    }
    out
}

/// Shrink `scenario` to a locally minimal variant that still fails under
/// `options`. If nothing smaller fails, the input comes back unchanged.
pub fn shrink(scenario: &Scenario, options: &SimOptions) -> Scenario {
    let mut best = scenario.clone();
    let mut runs = 0usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            runs += 1;
            if runs > MAX_SHRINK_RUNS {
                return best;
            }
            if run_scenario(&candidate, options).is_err() {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FaultSpec, JobSpec, RunnerFault, ToolKind};

    fn scenario_with(jobs: usize) -> Scenario {
        Scenario {
            seed: 0,
            gpu_count: 2,
            workers: 2,
            queue_capacity: 64,
            per_user_limit: None,
            resubmit_to_cpu: false,
            jobs: (0..jobs)
                .map(|i| JobSpec {
                    user: i % 3,
                    priority: 0,
                    kind: ToolKind::Echo,
                    fault: if i == 0 { Some(RunnerFault::Crash) } else { None },
                })
                .collect(),
            dags: Vec::new(),
            faults: FaultSpec { smi_query_failures: 2, ..FaultSpec::default() },
        }
    }

    #[test]
    fn candidates_are_strictly_smaller_or_less_faulty() {
        let s = scenario_with(6);
        for candidate in candidates(&s) {
            let shrunk_jobs = candidate.jobs.len() < s.jobs.len();
            let shrunk_faults = candidate.faults.smi_query_failures < s.faults.smi_query_failures
                || candidate.jobs.iter().filter(|j| j.fault.is_some()).count()
                    < s.jobs.iter().filter(|j| j.fault.is_some()).count();
            assert!(shrunk_jobs || shrunk_faults, "candidate did not shrink: {candidate:?}");
        }
    }

    #[test]
    fn passing_scenario_shrinks_to_itself() {
        let s = scenario_with(2);
        let options = SimOptions::default();
        assert!(run_scenario(&s, &options).is_ok(), "fixture passes under correct options");
        assert_eq!(shrink(&s, &options), s);
    }
}
