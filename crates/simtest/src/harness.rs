//! Run one [`Scenario`] through the real stack.
//!
//! Nothing here is mocked: the harness builds a [`GalaxyApp`] from the
//! shipped `GYAN_JOB_CONF`, installs GYAN (dynamic rule + hook + lease
//! table) against a simulated [`GpuCluster`], wraps the `seqtools`
//! executor in a [`FaultInjectingExecutor`], and pumps a real
//! [`QueueEngine`] wave by wave — checking invariants at every barrier.

use crate::invariants;
use crate::scenario::{DagShape, JobSpec, RunnerFault, Scenario, ToolKind, USERS};
use crate::{SimFailure, SimOptions, SimReport};
use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{
    DagStep, DagWorkflow, QueueConfig, QueueEngine, ResubmitPolicy, SubmissionState,
};
use galaxy::runners::faults::{FaultInjectingExecutor, FaultPlan, InjectedFault};
use galaxy::tool::macros::MacroLibrary;
use galaxy::{GalaxyApp, GalaxyError};
use gpusim::{GpuArch, GpuCluster};
use gyan::setup::{install_gyan, GyanConfig};
use obs::slo::{AlertEngine, AlertExpr, AlertRule, Compare};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

/// Upper bound on waves per scenario: generation caps work at ~25 queue
/// entries, so hundreds of waves can only mean a dispatch livelock.
const MAX_WAVES: usize = 300;

fn racon_dataset() -> DatasetSpec {
    DatasetSpec {
        name: "sim_racon",
        genome_len: 1_500,
        n_reads: 12,
        read_len: 1_200,
        ..DatasetSpec::alzheimers_nfl()
    }
}

fn fast5_dataset() -> DatasetSpec {
    DatasetSpec {
        name: "sim_fast5",
        genome_len: 1_200,
        n_reads: 2,
        read_len: 250,
        ..DatasetSpec::acinetobacter_pittii()
    }
}

const ECHO_TOOL: &str = r#"<tool id="sim_echo" name="Echo">
  <command>echo $text</command>
  <inputs><param name="text" type="text" value="tick"/></inputs>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

const RACON_CPU_TOOL: &str = r#"<tool id="sim_racon_cpu" name="Racon CPU">
  <command>racon -t 2 sim_racon > out.fa</command>
  <outputs><data name="out" format="fasta"/></outputs>
</tool>"#;

/// GPU wrapper with the paper's `$__galaxy_gpu_enabled__` conditional:
/// the CPU branch runs when allocation fails (or the host has no GPUs).
fn racon_gpu_tool(id: &str, pinned: Option<u32>) -> String {
    let version = pinned.map(|m| format!(" version=\"{m}\"")).unwrap_or_default();
    format!(
        r#"<tool id="{id}" name="Racon">
  <requirements><requirement type="compute"{version}>gpu</requirement></requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
racon_gpu -t 2 sim_racon > out.fa
#else
racon -t 2 sim_racon > out.fa
#end if
]]></command>
  <outputs><data name="out" format="fasta"/></outputs>
</tool>"#
    )
}

fn bonito_tool(id: &str, pinned: Option<u32>) -> String {
    let version = pinned.map(|m| format!(" version=\"{m}\"")).unwrap_or_default();
    format!(
        r#"<tool id="{id}" name="Bonito">
  <requirements><requirement type="compute"{version}>gpu</requirement></requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
bonito basecaller dna_r9.4.1 sim_fast5 > calls.fa
#else
bonito basecaller --device=cpu dna_r9.4.1 sim_fast5 > calls.fa
#end if
]]></command>
  <outputs><data name="out" format="fasta"/></outputs>
</tool>"#
    )
}

fn install_tools(app: &mut GalaxyApp, gpu_count: u32) -> Result<(), GalaxyError> {
    let lib = MacroLibrary::new();
    app.install_tool_xml(ECHO_TOOL, &lib)?;
    app.install_tool_xml(RACON_CPU_TOOL, &lib)?;
    app.install_tool_xml(&racon_gpu_tool("sim_racon_gpu", None), &lib)?;
    app.install_tool_xml(&bonito_tool("sim_bonito", None), &lib)?;
    for m in 0..gpu_count {
        app.install_tool_xml(&racon_gpu_tool(&format!("sim_racon_gpu_p{m}"), Some(m)), &lib)?;
        app.install_tool_xml(&bonito_tool(&format!("sim_bonito_p{m}"), Some(m)), &lib)?;
    }
    Ok(())
}

fn dag_for(shape: DagShape, index: usize) -> DagWorkflow {
    let name = format!("sim_dag_{index}");
    match shape {
        DagShape::Chain(n) => {
            let mut dag =
                DagWorkflow::new(name).step(DagStep::new("sim_echo").with_param("text", "c0"));
            for i in 1..n {
                dag =
                    dag.step(DagStep::new("sim_echo").with_input_from("text", i - 1).after(i - 1));
            }
            dag
        }
        DagShape::Diamond => DagWorkflow::new(name)
            .step(DagStep::new("sim_echo").with_param("text", "prep"))
            .step(DagStep::new("sim_echo").with_input_from("text", 0).after(0))
            .step(DagStep::new("sim_echo").with_input_from("text", 0).after(0))
            .step(DagStep::new("sim_echo").with_input_from("text", 1).after(1).after(2)),
        DagShape::FanOut(n) => {
            let mut dag =
                DagWorkflow::new(name).step(DagStep::new("sim_echo").with_param("text", "root"));
            for _ in 0..n {
                dag = dag.step(DagStep::new("sim_echo").with_input_from("text", 0).after(0));
            }
            dag
        }
    }
}

fn injected(fault: RunnerFault) -> InjectedFault {
    match fault {
        RunnerFault::ContainerLaunch => InjectedFault::ContainerLaunch,
        RunnerFault::OutOfMemory => InjectedFault::OutOfMemory,
        RunnerFault::Crash => InjectedFault::Crash,
    }
}

/// Execute `scenario` under `options`, checking invariants at every wave
/// barrier and once more after shutdown.
// SimFailure is large (it carries the fired-alert list and flight dump),
// but the Err path is terminal — a failure report, not a hot return.
#[allow(clippy::result_large_err)]
pub fn run_scenario(scenario: &Scenario, options: &SimOptions) -> Result<SimReport, SimFailure> {
    let fail = |wave: Option<usize>, v: invariants::Violation| SimFailure {
        seed: scenario.seed,
        wave,
        invariant: v.invariant,
        detail: v.detail,
        scenario: scenario.describe(),
        fired_alerts: Vec::new(),
        flight_jsonl: None,
    };

    // --- Build the real stack -------------------------------------------
    let cluster = GpuCluster::node(GpuArch::tesla_k80(), scenario.gpu_count);
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).expect("shipped job conf"));
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(racon_dataset());
    executor.register_dataset(fast5_dataset());
    let fault_plan = FaultPlan::new();
    let faulty: Arc<FaultInjectingExecutor<Arc<ToolExecutor>>> =
        Arc::new(FaultInjectingExecutor::new(executor, fault_plan.clone()));
    app.set_executor(Box::new(faulty.clone()));
    let table = install_gyan(&mut app, &cluster, GyanConfig::default());
    if let Err(e) = install_tools(&mut app, scenario.gpu_count) {
        return Err(fail(
            None,
            invariants::Violation { invariant: "setup", detail: format!("tool install: {e}") },
        ));
    }
    let recorder = app.recorder().clone();

    // The live operations plane runs alongside the postmortem invariant
    // checker: a leaked-lease SLO rule, evaluated at every wave barrier,
    // must page on the same condition `no_leaked_leases` trips on —
    // proving an operator watching `/api/alerts` would have seen the bug.
    let alerts = AlertEngine::new(&recorder);
    let alert_table = table.clone();
    alerts.add_rule(AlertRule::new(
        "leaked-lease",
        AlertExpr::Custom(Arc::new(move || Some(alert_table.lease_count() as f64))),
        Compare::Gt,
        0.0,
    ));
    // Failures carry the alert + flight-recorder context of the moment
    // they tripped, so a repro seed comes with its own black box.
    let enrich = |mut failure: SimFailure| -> SimFailure {
        failure.fired_alerts = alerts.firing();
        failure.flight_jsonl = recorder.flight_snapshot().map(|s| s.to_jsonl());
        failure
    };

    let resubmit = if scenario.resubmit_to_cpu {
        ResubmitPolicy::gpu_to_cpu("local_cpu")
    } else {
        ResubmitPolicy::none()
    };
    let config = QueueConfig {
        capacity: scenario.queue_capacity,
        workers: scenario.workers,
        per_user_limit: scenario.per_user_limit,
        resubmit,
        time_charging: None,
        dispatch: Default::default(),
    };
    let mut engine = QueueEngine::new(app, faulty, config);
    if options.release_on_discard {
        engine.set_discard_listener(table.discard_listener(Some(recorder.clone())));
    }

    // --- Submit the schedule --------------------------------------------
    let mut submitted = 0usize;
    let mut rejected = 0usize;
    for (index, job) in scenario.jobs.iter().enumerate() {
        match submit_job(&mut engine, job, index) {
            Ok(handle) => {
                submitted += 1;
                if let Some(f) = job.fault {
                    fault_plan.inject(handle, injected(f));
                }
            }
            Err(GalaxyError::QueueRejected(_)) => rejected += 1,
            Err(e) => {
                return Err(fail(
                    None,
                    invariants::Violation {
                        invariant: "submission",
                        detail: format!("job {index} ({:?}): {e}", job.kind),
                    },
                ));
            }
        }
    }
    for (index, shape) in scenario.dags.iter().enumerate() {
        let user = USERS[index % USERS.len()];
        match engine.submit_dag(user, dag_for(*shape, index)) {
            Ok(_) => submitted += 1,
            Err(GalaxyError::QueueRejected(_)) => rejected += 1,
            Err(e) => {
                return Err(fail(
                    None,
                    invariants::Violation {
                        invariant: "submission",
                        detail: format!("dag {index} ({shape:?}): {e}"),
                    },
                ));
            }
        }
    }

    // --- Arm cluster-level faults ---------------------------------------
    cluster.inject_smi_query_failures(scenario.faults.smi_query_failures);
    let discard_wave = options.force_wave_discard.or(scenario.faults.discard_at_wave);

    // --- Pump to idle, checking at every barrier ------------------------
    let mut waves = 0usize;
    let mut frozen_at: Option<usize> = None;
    loop {
        if scenario.faults.freeze_smi_at_wave == Some(waves) {
            cluster.freeze_smi_snapshot();
            frozen_at = Some(waves);
        }
        if discard_wave == Some(waves) {
            engine.discard_next_wave();
        }
        let dispatched = engine.pump_wave();
        if frozen_at == Some(waves) {
            cluster.thaw_smi_snapshot();
        }
        alerts.evaluate();
        invariants::no_leaked_leases(&table, waves).map_err(|v| enrich(fail(Some(waves), v)))?;
        if dispatched == 0 {
            break;
        }
        waves += 1;
        if waves >= MAX_WAVES {
            return Err(enrich(fail(
                Some(waves),
                invariants::Violation {
                    invariant: "wave_bound",
                    detail: format!("still dispatching after {MAX_WAVES} waves"),
                },
            )));
        }
    }

    // --- Whole-run invariants -------------------------------------------
    invariants::conservation(&engine).map_err(|v| enrich(fail(None, v)))?;
    let events = recorder.events();
    invariants::exclusive_isolation(&events).map_err(|v| enrich(fail(None, v)))?;
    invariants::export_matches_acquire(&events).map_err(|v| enrich(fail(None, v)))?;

    let states = engine.submission_states();
    let count = |want: SubmissionState| states.iter().filter(|(_, s)| *s == want).count();
    let report = SimReport {
        seed: scenario.seed,
        waves,
        submitted,
        rejected,
        ok: count(SubmissionState::Ok),
        error: count(SubmissionState::Error),
        cancelled: count(SubmissionState::Cancelled),
    };

    engine.shutdown();
    invariants::spans_balanced(&recorder).map_err(|v| enrich(fail(None, v)))?;
    Ok(report)
}

fn submit_job(engine: &mut QueueEngine, job: &JobSpec, index: usize) -> Result<u64, GalaxyError> {
    let user = USERS[job.user % USERS.len()];
    let mut params = ParamDict::new();
    if matches!(job.kind, ToolKind::Echo) {
        params.set("text", format!("sim {index}"));
    }
    engine
        .submit_with_priority(user, &job.kind.tool_id(), &params, job.priority)
        .map(|handle| handle.0)
}
