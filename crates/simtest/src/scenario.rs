//! Seeded scenario generation.
//!
//! A [`Scenario`] is everything one simulation run needs: topology, queue
//! shape, the tool mix, workflow shapes, submission schedule, and the
//! fault plan. It is derived *only* from the seed, so a failure report
//! carrying `SIMTEST_SEED=<n>` reconstructs the run bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The simulated users jobs are attributed to (fair-share actors).
pub const USERS: &[&str] = &["alice", "bob", "carol"];

/// Which simulated tool a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolKind {
    /// A trivial CPU tool (no requirements, instant).
    Echo,
    /// CPU racon polishing (no GPU requirement).
    RaconCpu,
    /// GPU racon; `pinned` requests a specific minor via the
    /// `<requirement version>` attribute.
    RaconGpu {
        /// Requested minor, when the wrapper pins one.
        pinned: Option<u32>,
    },
    /// GPU bonito basecalling, optionally pinned the same way.
    Bonito {
        /// Requested minor, when the wrapper pins one.
        pinned: Option<u32>,
    },
}

impl ToolKind {
    /// The installed tool id this kind submits.
    pub fn tool_id(self) -> String {
        match self {
            ToolKind::Echo => "sim_echo".to_string(),
            ToolKind::RaconCpu => "sim_racon_cpu".to_string(),
            ToolKind::RaconGpu { pinned: None } => "sim_racon_gpu".to_string(),
            ToolKind::RaconGpu { pinned: Some(m) } => format!("sim_racon_gpu_p{m}"),
            ToolKind::Bonito { pinned: None } => "sim_bonito".to_string(),
            ToolKind::Bonito { pinned: Some(m) } => format!("sim_bonito_p{m}"),
        }
    }

    /// Whether the wrapper declares a GPU requirement.
    pub fn wants_gpu(self) -> bool {
        matches!(self, ToolKind::RaconGpu { .. } | ToolKind::Bonito { .. })
    }
}

/// An execution fault queued for a job's first attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerFault {
    /// Container runtime failed to launch (exit 125).
    ContainerLaunch,
    /// OOM-killed attempt (exit 137).
    OutOfMemory,
    /// Segfaulting attempt (exit 139).
    Crash,
}

/// One plain (non-workflow) submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Index into [`USERS`].
    pub user: usize,
    /// Submission priority (0–9).
    pub priority: u8,
    /// Tool to run.
    pub kind: ToolKind,
    /// Fault injected on this job's first execution attempt, if any.
    pub fault: Option<RunnerFault>,
}

/// Shape of a submitted DAG workflow (steps are all echo tools, so the
/// shapes stress the scheduler, not the tools).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagShape {
    /// A strict chain of `n` steps.
    Chain(usize),
    /// The classic prep → {left, right} → join diamond.
    Diamond,
    /// One root fanning out to `n` independent children.
    FanOut(usize),
}

impl DagShape {
    /// Number of steps the shape expands to.
    pub fn steps(self) -> usize {
        match self {
            DagShape::Chain(n) => n,
            DagShape::Diamond => 4,
            DagShape::FanOut(n) => n + 1,
        }
    }
}

/// The scenario's fault plan (beyond per-job [`RunnerFault`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Number of SMI queries that fail before recovering.
    pub smi_query_failures: u32,
    /// Freeze the SMI snapshot for the duration of this wave (stale
    /// observations), thawing before the next.
    pub freeze_smi_at_wave: Option<usize>,
    /// Discard the plans of this wave at the pool (mid-wave discard).
    pub discard_at_wave: Option<usize>,
}

impl FaultSpec {
    /// Whether any fault is armed.
    pub fn any(&self) -> bool {
        self.smi_query_failures > 0
            || self.freeze_smi_at_wave.is_some()
            || self.discard_at_wave.is_some()
    }
}

/// A fully specified simulation run, derived deterministically from a
/// seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The generating seed (kept for failure reports).
    pub seed: u64,
    /// GPUs on the node (0 = CPU-only host).
    pub gpu_count: u32,
    /// Handler pool workers = wave width.
    pub workers: u32,
    /// Queue admission capacity.
    pub queue_capacity: usize,
    /// Optional per-user admission cap.
    pub per_user_limit: Option<usize>,
    /// Whether the engine resubmits failed GPU jobs to the CPU
    /// destination.
    pub resubmit_to_cpu: bool,
    /// Plain submissions, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Workflow submissions (submitted after the plain jobs).
    pub dags: Vec<DagShape>,
    /// The fault plan.
    pub faults: FaultSpec,
}

impl Scenario {
    /// Generate the scenario for `seed`. Same seed → same scenario,
    /// always; this is the reproduction contract.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Two-GPU nodes dominate (the paper's K80 board); CPU-only and
        // single-GPU hosts keep the degraded paths honest.
        let gpu_count = *pick(&mut rng, &[2, 2, 2, 1, 0]);
        let workers = rng.gen_range(1..=4u32);
        let queue_capacity = if rng.gen_bool(0.25) { rng.gen_range(2..=4usize) } else { 64 };
        let per_user_limit = if rng.gen_bool(0.2) { Some(rng.gen_range(1..=3usize)) } else { None };
        let resubmit_to_cpu = rng.gen_bool(0.6);

        let n_jobs = rng.gen_range(2..=10usize);
        let jobs = (0..n_jobs).map(|_| Self::gen_job(&mut rng, gpu_count)).collect();

        let n_dags = rng.gen_range(0..=2usize);
        let dags = (0..n_dags)
            .map(|_| match rng.gen_range(0..3u32) {
                0 => DagShape::Chain(rng.gen_range(2..=4usize)),
                1 => DagShape::Diamond,
                _ => DagShape::FanOut(rng.gen_range(2..=3usize)),
            })
            .collect();

        let faults = FaultSpec {
            smi_query_failures: if rng.gen_bool(0.4) { rng.gen_range(1..=3u32) } else { 0 },
            freeze_smi_at_wave: if rng.gen_bool(0.3) {
                Some(rng.gen_range(0..=2usize))
            } else {
                None
            },
            discard_at_wave: if rng.gen_bool(0.3) { Some(rng.gen_range(0..=2usize)) } else { None },
        };

        Scenario {
            seed,
            gpu_count,
            workers,
            queue_capacity,
            per_user_limit,
            resubmit_to_cpu,
            jobs,
            dags,
            faults,
        }
    }

    fn gen_job(rng: &mut StdRng, gpu_count: u32) -> JobSpec {
        let user = rng.gen_range(0..USERS.len());
        let priority = rng.gen_range(0..=9u8);
        let pin = |rng: &mut StdRng| {
            if gpu_count > 0 && rng.gen_bool(0.4) {
                Some(rng.gen_range(0..gpu_count))
            } else {
                None
            }
        };
        let kind = match rng.gen_range(0..5u32) {
            0 => ToolKind::Echo,
            1 => ToolKind::RaconCpu,
            2 | 3 => ToolKind::RaconGpu { pinned: pin(rng) },
            _ => ToolKind::Bonito { pinned: pin(rng) },
        };
        let fault = if rng.gen_bool(0.25) {
            Some(*pick(
                rng,
                &[RunnerFault::ContainerLaunch, RunnerFault::OutOfMemory, RunnerFault::Crash],
            ))
        } else {
            None
        };
        JobSpec { user, priority, kind, fault }
    }

    /// One-line human summary for failure reports.
    pub fn describe(&self) -> String {
        let faulted = self.jobs.iter().filter(|j| j.fault.is_some()).count();
        format!(
            "gpus={} workers={} capacity={} per_user={:?} resubmit={} jobs={} \
             (gpu {}, faulted {}) dags={:?} smi_failures={} freeze@{:?} discard@{:?}",
            self.gpu_count,
            self.workers,
            self.queue_capacity,
            self.per_user_limit,
            self.resubmit_to_cpu,
            self.jobs.len(),
            self.jobs.iter().filter(|j| j.kind.wants_gpu()).count(),
            faulted,
            self.dags,
            self.faults.smi_query_failures,
            self.faults.freeze_smi_at_wave,
            self.faults.discard_at_wave,
        )
    }
}

fn pick<'a, T>(rng: &mut StdRng, options: &'a [T]) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn seeds_produce_varied_scenarios() {
        let scenarios: Vec<Scenario> = (0..100).map(Scenario::generate).collect();
        assert!(scenarios.iter().any(|s| s.gpu_count == 0), "some CPU-only hosts");
        assert!(scenarios.iter().any(|s| s.gpu_count == 2), "some dual-GPU hosts");
        assert!(scenarios.iter().any(|s| s.faults.any()), "some faulted runs");
        assert!(scenarios.iter().any(|s| !s.dags.is_empty()), "some workflow runs");
        assert!(
            scenarios.iter().any(|s| s.jobs.iter().any(|j| j.fault.is_some())),
            "some runner faults"
        );
    }

    #[test]
    fn pinned_jobs_only_appear_with_gpus() {
        for seed in 0..200 {
            let s = Scenario::generate(seed);
            for job in &s.jobs {
                if let ToolKind::RaconGpu { pinned: Some(m) }
                | ToolKind::Bonito { pinned: Some(m) } = job.kind
                {
                    assert!(m < s.gpu_count, "seed {seed}: pin {m} on {} gpus", s.gpu_count);
                }
            }
        }
    }
}
