//! Run one [`FleetScenario`] against a real [`fleet::Fleet`], checking
//! shard-level and fleet-wide invariants at every wave barrier.
//!
//! The invariants are the multi-node generalization of the single-node
//! checks in [`crate::invariants`]:
//!
//! * **per-shard conservation** — every lease on shard S belongs to a
//!   job the fleet has booked *on S* (a lease whose holder is booked
//!   elsewhere, or not at all, has leaked);
//! * **fleet-wide no-double-booking** — no job holds leases on two
//!   shards at once;
//! * **export↔acquire equality** — the set of jobs with a successful
//!   `fleet.placement.decision` audit equals the set of jobs with
//!   `gyan.reservation.acquire` audits (checked fleet-wide at the end:
//!   a placement without a lease, or a lease without a placement, means
//!   the two phases disagreed);
//! * **no dead-node bookings** — once the scenario's
//!   [`NodeFault`](crate::fleet_scenario::NodeFault) has killed a node,
//!   no booking or lease may ever point at it again, and every job the
//!   death orphaned either resubmits onto a surviving node (with the
//!   dead node in its exclusion set, mirroring the queue engine's
//!   placement-aware resubmission) or fails finally;
//! * **drained** — after the last wave every shard's lease table and the
//!   fleet's booking map are empty.
//!
//! [`FleetSimOptions::double_place`] is the canonical known-bad wiring:
//! it re-runs placement for a job that already holds leases (as a buggy
//! dispatch layer would after a spurious retry). The fleet's booking map
//! forgets the first node, the first shard's leases leak, and the
//! per-shard conservation check trips — reproducibly, from the seed.
//!
//! [`FleetSimOptions::ignore_node_death`] is the shard-failure sibling:
//! the harness releases the dead node's leases (as the lost-job cleanup
//! would) but never marks the shard dead, so the placement layer keeps
//! seeing a freshly emptied — and therefore attractive — node. The next
//! wave books a job onto the corpse and `fleet_no_dead_node_booking`
//! trips with a reproducing seed.

use crate::fleet_scenario::{FleetScenario, FLEET_RULES};
use crate::{SimFailure, SimReport};
use fleet::{policy_by_name, DestinationRules, Fleet, NodeClass, PlacementRequest};
use obs::{EventData, Recorder};
use std::collections::{BTreeMap, BTreeSet};

/// Fleet-harness knobs. Defaults model the correct system; tests flip
/// options to prove the checker catches known-bad wirings.
#[derive(Debug, Clone, Default)]
pub struct FleetSimOptions {
    /// Re-place every Nth placed job in its submit wave *without*
    /// releasing it first — the double-placement bug. `None` is the
    /// correct wiring.
    pub double_place: Option<usize>,
    /// On the scenario's node fault, release the dying node's leases but
    /// skip `Fleet::fail_node` — the stale-wiring bug where placement
    /// keeps treating a dead node as a candidate. `false` is the correct
    /// wiring.
    pub ignore_node_death: bool,
}

/// Build the scenario's fleet (shared so tests can inspect the same
/// topology the harness ran).
pub fn build_fleet(scenario: &FleetScenario, recorder: &Recorder) -> Fleet {
    let mut builder = Fleet::builder()
        .rules(DestinationRules::parse(FLEET_RULES).expect("stock rules parse"))
        .policy(policy_by_name(scenario.policy).expect("stock policy"))
        .recorder(recorder.clone());
    for (class, count) in &scenario.nodes {
        builder = builder.nodes(NodeClass::by_name(class).expect("stock class"), *count);
    }
    builder.build()
}

/// Execute `scenario` under `options`, checking invariants at every wave
/// barrier and once more after the fleet drains.
#[allow(clippy::result_large_err)]
pub fn run_fleet_scenario(
    scenario: &FleetScenario,
    options: &FleetSimOptions,
) -> Result<SimReport, SimFailure> {
    let recorder = Recorder::new();
    let fleet = build_fleet(scenario, &recorder);
    let fail = |wave: Option<usize>, invariant: &'static str, detail: String| SimFailure {
        seed: scenario.seed,
        wave,
        invariant,
        detail,
        scenario: scenario.describe(),
        fired_alerts: Vec::new(),
        flight_jsonl: None,
    };

    // job index → (job id, release wave). Job ids are 1-based indices so
    // audits map straight back to the schedule.
    let mut active: BTreeMap<u64, usize> = BTreeMap::new();
    let mut dead: BTreeSet<u32> = BTreeSet::new();
    let mut placed = 0usize;
    let mut rejected = 0usize;
    let mut lost_failed = 0usize;
    for wave in 0..scenario.waves {
        // Release jobs whose hold expired before this wave places.
        let due: Vec<u64> =
            active.iter().filter(|(_, release)| **release <= wave).map(|(id, _)| *id).collect();
        for id in due {
            fleet.release(id, "ok");
            active.remove(&id);
        }

        for (index, job) in scenario.jobs.iter().enumerate().filter(|(_, j)| j.submit_wave == wave)
        {
            let job_id = index as u64 + 1;
            let user = format!("user-{}", job.user);
            let req = PlacementRequest {
                job_id,
                user: &user,
                tool_id: job.tool,
                requested: &[0],
                memory_hint_mib: job.memory_hint_mib,
                excluded_nodes: &[],
            };
            match fleet.place(&req) {
                Some(_) => {
                    placed += 1;
                    active.insert(job_id, wave + job.hold_waves);
                    // Known-bad wiring: a buggy retry path hands the job
                    // to placement again while it still holds leases.
                    if let Some(every) = options.double_place {
                        if every > 0 && placed.is_multiple_of(every) {
                            fleet.place(&req);
                        }
                    }
                }
                None => rejected += 1,
            }
        }

        // Mid-wave shard failure: the fault plan kills its node after
        // this wave's placements land, before the barrier check.
        if let Some(fault) = scenario.node_fault.filter(|f| f.wave == wave) {
            let name = fleet
                .shard(fault.node)
                .unwrap_or_else(|| panic!("fault targets unknown node {}", fault.node))
                .name
                .clone();
            let lost: Vec<u64> = if options.ignore_node_death {
                // Known-bad wiring: clean up the leases (the lost-job
                // conclusion path does that much) but never mark the
                // shard dead — placement keeps scoring the corpse.
                let lost: Vec<u64> = fleet
                    .active_placements()
                    .into_iter()
                    .filter(|(_, node)| *node == fault.node)
                    .map(|(job, _)| job)
                    .collect();
                for id in &lost {
                    fleet.release(*id, "node_lost");
                }
                lost
            } else {
                fleet.fail_node(&name).expect("fault targets a known node")
            };
            dead.insert(fault.node);
            // Every orphaned job was concluded failed-retryable: retry
            // it with the dead node excluded (the queue engine's
            // placement-aware resubmission), or fail it finally.
            let excluded = [name];
            for job_id in lost {
                active.remove(&job_id);
                let job = &scenario.jobs[(job_id - 1) as usize];
                let user = format!("user-{}", job.user);
                let retry = PlacementRequest {
                    job_id,
                    user: &user,
                    tool_id: job.tool,
                    requested: &[0],
                    memory_hint_mib: job.memory_hint_mib,
                    excluded_nodes: &excluded,
                };
                match fleet.place(&retry) {
                    Some(placement) => {
                        if dead.contains(&placement.node) {
                            return Err(fail(
                                Some(wave),
                                "fleet_no_dead_node_booking",
                                format!(
                                    "lost job {job_id} resubmitted onto dead node {}",
                                    placement.node
                                ),
                            ));
                        }
                        active.insert(job_id, wave + job.hold_waves);
                    }
                    None => lost_failed += 1,
                }
            }
        }

        check_shard_invariants(&fleet).map_err(|(inv, detail)| fail(Some(wave), inv, detail))?;
        check_no_dead_node_bookings(&fleet, &dead)
            .map_err(|(inv, detail)| fail(Some(wave), inv, detail))?;
    }

    // Drain and re-check.
    let remaining: Vec<u64> = active.keys().copied().collect();
    for id in remaining {
        fleet.release(id, "ok");
    }
    check_shard_invariants(&fleet).map_err(|(inv, detail)| fail(None, inv, detail))?;
    check_no_dead_node_bookings(&fleet, &dead).map_err(|(inv, detail)| fail(None, inv, detail))?;
    if fleet.total_lease_count() != 0 || !fleet.active_placements().is_empty() {
        return Err(fail(
            None,
            "fleet_drained",
            format!(
                "{} lease(s) and {} booking(s) survive the drain",
                fleet.total_lease_count(),
                fleet.active_placements().len()
            ),
        ));
    }
    fleet_export_matches_acquire(&recorder.events())
        .map_err(|(inv, detail)| fail(None, inv, detail))?;

    Ok(SimReport {
        seed: scenario.seed,
        waves: scenario.waves,
        submitted: scenario.jobs.len(),
        rejected,
        ok: placed,
        error: lost_failed,
        cancelled: 0,
    })
}

/// Per-shard conservation + fleet-wide no-double-booking, from the
/// fleet's live state.
fn check_shard_invariants(fleet: &Fleet) -> Result<(), (&'static str, String)> {
    let mut seen_on: BTreeMap<u64, u32> = BTreeMap::new();
    for (node, holders) in fleet.holders_by_node() {
        for holder in holders {
            // Fleet-wide: one job, one shard.
            if let Some(previous) = seen_on.insert(holder, node) {
                return Err((
                    "fleet_no_double_booking",
                    format!("job {holder} holds leases on node {previous} and node {node}"),
                ));
            }
            // Per-shard: the lease must be backed by a booking here.
            match fleet.node_of(holder) {
                Some(booked) if booked == node => {}
                Some(booked) => {
                    return Err((
                        "fleet_lease_conservation",
                        format!(
                            "job {holder} leases on node {node} but is booked on node {booked} \
                             (leaked by a re-placement?)"
                        ),
                    ));
                }
                None => {
                    return Err((
                        "fleet_lease_conservation",
                        format!("job {holder} leases on node {node} with no fleet booking"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// No booking or lease may point at a node the fault plan has killed.
/// Correct wiring marks the shard dead (so placement filters it); the
/// stale wiring leaves it placeable and this check trips on the first
/// job booked onto the corpse.
fn check_no_dead_node_bookings(
    fleet: &Fleet,
    dead: &BTreeSet<u32>,
) -> Result<(), (&'static str, String)> {
    if dead.is_empty() {
        return Ok(());
    }
    for (job, node) in fleet.active_placements() {
        if dead.contains(&node) {
            return Err((
                "fleet_no_dead_node_booking",
                format!("job {job} is booked on dead node {node}"),
            ));
        }
    }
    for (node, holders) in fleet.holders_by_node() {
        if dead.contains(&node) && !holders.is_empty() {
            return Err((
                "fleet_no_dead_node_booking",
                format!("dead node {node} still holds leases for jobs {holders:?}"),
            ));
        }
    }
    Ok(())
}

/// Fleet-wide export↔acquire equality from the audit trail: jobs with a
/// successful placement decision must equal jobs with reservation
/// acquires.
fn fleet_export_matches_acquire(events: &[EventData]) -> Result<(), (&'static str, String)> {
    let job_of = |ev: &EventData| ev.field("job_id").and_then(|v| v.as_f64()).map(|j| j as u64);
    let placed: BTreeSet<u64> = events
        .iter()
        .filter(|e| {
            e.name == fleet::fleet::FLEET_DECISION_EVENT
                && e.field("placed").and_then(|v| v.as_bool()) == Some(true)
        })
        .filter_map(job_of)
        .collect();
    let acquired: BTreeSet<u64> =
        events.iter().filter(|e| e.name == "gyan.reservation.acquire").filter_map(job_of).collect();
    if placed != acquired {
        let unbacked: Vec<u64> = placed.difference(&acquired).copied().collect();
        let silent: Vec<u64> = acquired.difference(&placed).copied().collect();
        return Err((
            "fleet_export_matches_acquire",
            format!(
                "placements without acquires: {unbacked:?}; acquires without placements: \
                 {silent:?}"
            ),
        ));
    }
    Ok(())
}

/// Run the fleet scenario generated by `seed`.
#[allow(clippy::result_large_err)]
pub fn run_fleet_seed(seed: u64, options: &FleetSimOptions) -> Result<SimReport, SimFailure> {
    run_fleet_scenario(&FleetScenario::generate(seed), options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_wiring_passes_a_seed_sweep() {
        let options = FleetSimOptions::default();
        for seed in 0..10 {
            let report = run_fleet_seed(seed, &options)
                .unwrap_or_else(|f| panic!("seed {seed} failed:\n{f}"));
            assert_eq!(report.seed, seed);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let options = FleetSimOptions::default();
        let a = run_fleet_seed(4, &options).expect("seed 4 passes");
        let b = run_fleet_seed(4, &options).expect("seed 4 passes");
        assert_eq!(a, b);
    }

    #[test]
    fn double_placement_is_caught_with_a_reproducing_seed() {
        let options = FleetSimOptions { double_place: Some(2), ..Default::default() };
        let failure = (0..20)
            .find_map(|seed| run_fleet_seed(seed, &options).err())
            .expect("some seed must trip the checker");
        assert!(
            failure.invariant == "fleet_lease_conservation"
                || failure.invariant == "fleet_no_double_booking",
            "unexpected invariant: {}",
            failure.invariant
        );
        // The report reproduces from the seed alone.
        let again = run_fleet_seed(failure.seed, &options).expect_err("same seed re-fails");
        assert_eq!(again.invariant, failure.invariant);
        assert!(failure.to_string().contains(&format!("SIMTEST_SEED={}", failure.seed)));
    }

    #[test]
    fn node_death_survives_under_correct_wiring() {
        // Some swept seed must actually lose in-flight work to its fault
        // (a fault on an idle node proves nothing) and still pass every
        // barrier — deterministically.
        let options = FleetSimOptions::default();
        let seed = (0..50)
            .find(|&seed| fault_loses_jobs(&FleetScenario::generate(seed)))
            .expect("some seed must kill a loaded node");
        let a = run_fleet_seed(seed, &options).expect("correct wiring passes");
        let b = run_fleet_seed(seed, &options).expect("correct wiring passes");
        assert_eq!(a, b);
    }

    /// Does the scenario's fault catch at least one job in flight?
    fn fault_loses_jobs(scenario: &FleetScenario) -> bool {
        let fault = match scenario.node_fault {
            Some(f) => f,
            None => return false,
        };
        let recorder = obs::Recorder::new();
        let fleet = build_fleet(scenario, &recorder);
        let mut active: std::collections::BTreeMap<u64, usize> = Default::default();
        for wave in 0..=fault.wave {
            let due: Vec<u64> =
                active.iter().filter(|(_, r)| **r <= wave).map(|(id, _)| *id).collect();
            for id in due {
                fleet.release(id, "ok");
                active.remove(&id);
            }
            for (index, job) in
                scenario.jobs.iter().enumerate().filter(|(_, j)| j.submit_wave == wave)
            {
                let job_id = index as u64 + 1;
                let user = format!("user-{}", job.user);
                let req = PlacementRequest {
                    job_id,
                    user: &user,
                    tool_id: job.tool,
                    requested: &[0],
                    memory_hint_mib: job.memory_hint_mib,
                    excluded_nodes: &[],
                };
                if fleet.place(&req).is_some() {
                    active.insert(job_id, wave + job.hold_waves);
                }
            }
        }
        fleet.active_placements().iter().any(|(_, node)| *node == fault.node)
    }

    #[test]
    fn ignoring_node_death_is_caught_with_a_reproducing_seed() {
        let options = FleetSimOptions { ignore_node_death: true, ..Default::default() };
        let failure = (0..50)
            .find_map(|seed| run_fleet_seed(seed, &options).err())
            .expect("some seed must book onto the corpse");
        assert_eq!(failure.invariant, "fleet_no_dead_node_booking", "{failure}");
        // The report reproduces from the seed alone.
        let again = run_fleet_seed(failure.seed, &options).expect_err("same seed re-fails");
        assert_eq!(again.invariant, failure.invariant);
        assert!(failure.to_string().contains(&format!("SIMTEST_SEED={}", failure.seed)));
        assert!(failure.scenario.contains("fault=node"), "{}", failure.scenario);
    }

    #[test]
    fn large_scenario_holds_invariants() {
        let scenario = FleetScenario::large(11);
        assert!(scenario.node_fault.is_some(), "the gate scale always loses a node");
        let report =
            run_fleet_scenario(&scenario, &FleetSimOptions::default()).expect("large fleet passes");
        assert!(report.ok > 0, "some placements must land: {report:?}");
    }
}
