//! Run one [`FleetScenario`] against a real [`fleet::Fleet`], checking
//! shard-level and fleet-wide invariants at every wave barrier.
//!
//! The invariants are the multi-node generalization of the single-node
//! checks in [`crate::invariants`]:
//!
//! * **per-shard conservation** — every lease on shard S belongs to a
//!   job the fleet has booked *on S* (a lease whose holder is booked
//!   elsewhere, or not at all, has leaked);
//! * **fleet-wide no-double-booking** — no job holds leases on two
//!   shards at once;
//! * **export↔acquire equality** — the set of jobs with a successful
//!   `fleet.placement.decision` audit equals the set of jobs with
//!   `gyan.reservation.acquire` audits (checked fleet-wide at the end:
//!   a placement without a lease, or a lease without a placement, means
//!   the two phases disagreed);
//! * **drained** — after the last wave every shard's lease table and the
//!   fleet's booking map are empty.
//!
//! [`FleetSimOptions::double_place`] is the canonical known-bad wiring:
//! it re-runs placement for a job that already holds leases (as a buggy
//! dispatch layer would after a spurious retry). The fleet's booking map
//! forgets the first node, the first shard's leases leak, and the
//! per-shard conservation check trips — reproducibly, from the seed.

use crate::fleet_scenario::{FleetScenario, FLEET_RULES};
use crate::{SimFailure, SimReport};
use fleet::{policy_by_name, DestinationRules, Fleet, NodeClass, PlacementRequest};
use obs::{EventData, Recorder};
use std::collections::{BTreeMap, BTreeSet};

/// Fleet-harness knobs. Defaults model the correct system; tests flip
/// options to prove the checker catches known-bad wirings.
#[derive(Debug, Clone, Default)]
pub struct FleetSimOptions {
    /// Re-place every Nth placed job in its submit wave *without*
    /// releasing it first — the double-placement bug. `None` is the
    /// correct wiring.
    pub double_place: Option<usize>,
}

/// Build the scenario's fleet (shared so tests can inspect the same
/// topology the harness ran).
pub fn build_fleet(scenario: &FleetScenario, recorder: &Recorder) -> Fleet {
    let mut builder = Fleet::builder()
        .rules(DestinationRules::parse(FLEET_RULES).expect("stock rules parse"))
        .policy(policy_by_name(scenario.policy).expect("stock policy"))
        .recorder(recorder.clone());
    for (class, count) in &scenario.nodes {
        builder = builder.nodes(NodeClass::by_name(class).expect("stock class"), *count);
    }
    builder.build()
}

/// Execute `scenario` under `options`, checking invariants at every wave
/// barrier and once more after the fleet drains.
#[allow(clippy::result_large_err)]
pub fn run_fleet_scenario(
    scenario: &FleetScenario,
    options: &FleetSimOptions,
) -> Result<SimReport, SimFailure> {
    let recorder = Recorder::new();
    let fleet = build_fleet(scenario, &recorder);
    let fail = |wave: Option<usize>, invariant: &'static str, detail: String| SimFailure {
        seed: scenario.seed,
        wave,
        invariant,
        detail,
        scenario: scenario.describe(),
        fired_alerts: Vec::new(),
        flight_jsonl: None,
    };

    // job index → (job id, release wave). Job ids are 1-based indices so
    // audits map straight back to the schedule.
    let mut active: BTreeMap<u64, usize> = BTreeMap::new();
    let mut placed = 0usize;
    let mut rejected = 0usize;
    for wave in 0..scenario.waves {
        // Release jobs whose hold expired before this wave places.
        let due: Vec<u64> =
            active.iter().filter(|(_, release)| **release <= wave).map(|(id, _)| *id).collect();
        for id in due {
            fleet.release(id, "ok");
            active.remove(&id);
        }

        for (index, job) in scenario.jobs.iter().enumerate().filter(|(_, j)| j.submit_wave == wave)
        {
            let job_id = index as u64 + 1;
            let user = format!("user-{}", job.user);
            let req = PlacementRequest {
                job_id,
                user: &user,
                tool_id: job.tool,
                requested: &[0],
                memory_hint_mib: job.memory_hint_mib,
            };
            match fleet.place(&req) {
                Some(_) => {
                    placed += 1;
                    active.insert(job_id, wave + job.hold_waves);
                    // Known-bad wiring: a buggy retry path hands the job
                    // to placement again while it still holds leases.
                    if let Some(every) = options.double_place {
                        if every > 0 && placed.is_multiple_of(every) {
                            fleet.place(&req);
                        }
                    }
                }
                None => rejected += 1,
            }
        }

        check_shard_invariants(&fleet).map_err(|(inv, detail)| fail(Some(wave), inv, detail))?;
    }

    // Drain and re-check.
    let remaining: Vec<u64> = active.keys().copied().collect();
    for id in remaining {
        fleet.release(id, "ok");
    }
    check_shard_invariants(&fleet).map_err(|(inv, detail)| fail(None, inv, detail))?;
    if fleet.total_lease_count() != 0 || !fleet.active_placements().is_empty() {
        return Err(fail(
            None,
            "fleet_drained",
            format!(
                "{} lease(s) and {} booking(s) survive the drain",
                fleet.total_lease_count(),
                fleet.active_placements().len()
            ),
        ));
    }
    fleet_export_matches_acquire(&recorder.events())
        .map_err(|(inv, detail)| fail(None, inv, detail))?;

    Ok(SimReport {
        seed: scenario.seed,
        waves: scenario.waves,
        submitted: scenario.jobs.len(),
        rejected,
        ok: placed,
        error: 0,
        cancelled: 0,
    })
}

/// Per-shard conservation + fleet-wide no-double-booking, from the
/// fleet's live state.
fn check_shard_invariants(fleet: &Fleet) -> Result<(), (&'static str, String)> {
    let mut seen_on: BTreeMap<u64, u32> = BTreeMap::new();
    for (node, holders) in fleet.holders_by_node() {
        for holder in holders {
            // Fleet-wide: one job, one shard.
            if let Some(previous) = seen_on.insert(holder, node) {
                return Err((
                    "fleet_no_double_booking",
                    format!("job {holder} holds leases on node {previous} and node {node}"),
                ));
            }
            // Per-shard: the lease must be backed by a booking here.
            match fleet.node_of(holder) {
                Some(booked) if booked == node => {}
                Some(booked) => {
                    return Err((
                        "fleet_lease_conservation",
                        format!(
                            "job {holder} leases on node {node} but is booked on node {booked} \
                             (leaked by a re-placement?)"
                        ),
                    ));
                }
                None => {
                    return Err((
                        "fleet_lease_conservation",
                        format!("job {holder} leases on node {node} with no fleet booking"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Fleet-wide export↔acquire equality from the audit trail: jobs with a
/// successful placement decision must equal jobs with reservation
/// acquires.
fn fleet_export_matches_acquire(events: &[EventData]) -> Result<(), (&'static str, String)> {
    let job_of = |ev: &EventData| ev.field("job_id").and_then(|v| v.as_f64()).map(|j| j as u64);
    let placed: BTreeSet<u64> = events
        .iter()
        .filter(|e| {
            e.name == fleet::fleet::FLEET_DECISION_EVENT
                && e.field("placed").and_then(|v| v.as_bool()) == Some(true)
        })
        .filter_map(job_of)
        .collect();
    let acquired: BTreeSet<u64> =
        events.iter().filter(|e| e.name == "gyan.reservation.acquire").filter_map(job_of).collect();
    if placed != acquired {
        let unbacked: Vec<u64> = placed.difference(&acquired).copied().collect();
        let silent: Vec<u64> = acquired.difference(&placed).copied().collect();
        return Err((
            "fleet_export_matches_acquire",
            format!(
                "placements without acquires: {unbacked:?}; acquires without placements: \
                 {silent:?}"
            ),
        ));
    }
    Ok(())
}

/// Run the fleet scenario generated by `seed`.
#[allow(clippy::result_large_err)]
pub fn run_fleet_seed(seed: u64, options: &FleetSimOptions) -> Result<SimReport, SimFailure> {
    run_fleet_scenario(&FleetScenario::generate(seed), options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_wiring_passes_a_seed_sweep() {
        let options = FleetSimOptions::default();
        for seed in 0..10 {
            let report = run_fleet_seed(seed, &options)
                .unwrap_or_else(|f| panic!("seed {seed} failed:\n{f}"));
            assert_eq!(report.seed, seed);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let options = FleetSimOptions::default();
        let a = run_fleet_seed(4, &options).expect("seed 4 passes");
        let b = run_fleet_seed(4, &options).expect("seed 4 passes");
        assert_eq!(a, b);
    }

    #[test]
    fn double_placement_is_caught_with_a_reproducing_seed() {
        let options = FleetSimOptions { double_place: Some(2) };
        let failure = (0..20)
            .find_map(|seed| run_fleet_seed(seed, &options).err())
            .expect("some seed must trip the checker");
        assert!(
            failure.invariant == "fleet_lease_conservation"
                || failure.invariant == "fleet_no_double_booking",
            "unexpected invariant: {}",
            failure.invariant
        );
        // The report reproduces from the seed alone.
        let again = run_fleet_seed(failure.seed, &options).expect_err("same seed re-fails");
        assert_eq!(again.invariant, failure.invariant);
        assert!(failure.to_string().contains(&format!("SIMTEST_SEED={}", failure.seed)));
    }

    #[test]
    fn large_scenario_holds_invariants() {
        let scenario = FleetScenario::large(11);
        let report =
            run_fleet_scenario(&scenario, &FleetSimOptions::default()).expect("large fleet passes");
        assert!(report.ok > 0, "some placements must land: {report:?}");
    }
}
