//! Seeded fleet-scenario generation: multi-node topologies, large user
//! populations, and wave-structured place/hold/release schedules.
//!
//! Like [`crate::scenario::Scenario`], a [`FleetScenario`] derives
//! entirely from its seed, so a failure report carrying
//! `SIMTEST_SEED=<n>` reconstructs the run bit for bit. Unlike the
//! single-node scenario it does not pump a real queue engine — the fleet
//! sweep stresses the *placement* layer (node choice, shard isolation,
//! booking/lease consistency) at scales (100 nodes, 10k users) where
//! running every job through tool execution would drown the signal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One placement in the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetJobSpec {
    /// Submitting user index (rendered as `user-<n>`).
    pub user: usize,
    /// Tool id submitted (drives destination-rule filtering).
    pub tool: &'static str,
    /// Declared GPU memory hint (MiB).
    pub memory_hint_mib: u64,
    /// Wave at which the job is placed.
    pub submit_wave: usize,
    /// How many waves the job holds its leases before release.
    pub hold_waves: usize,
}

/// The simulated GPU tools a fleet job may run. `bonito*` is constrained
/// to big-memory classes by the stock rule set; `racon_gpu` runs
/// anywhere; `sort` is CPU-only and must always be rejected.
pub const FLEET_TOOLS: &[&str] = &["racon_gpu", "bonito", "bonito_gpu", "medaka"];

/// The stock rule file every fleet scenario installs (exercises class
/// lists, memory floors, prefix globs, and right-sizing).
pub const FLEET_RULES: &str = "\
# basecallers need modern dies
tool=bonito* classes=v100,a100 min_gpu_mem_mib=12000 cores=8 mem_mib=65536
tool=medaka min_gpu_mem_mib=8000 cores=4
tool=*
";

/// A seed-derived shard failure: the node dies at the barrier of `wave`
/// (after that wave's placements land, before the invariant check), its
/// leases force-released as `node_lost` and its in-flight jobs either
/// resubmitted to a surviving node class or failed finally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// Wave at which the node dies.
    pub wave: usize,
    /// Fleet-wide id of the dying node.
    pub node: u32,
}

/// A fully specified fleet simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetScenario {
    /// The generating seed.
    pub seed: u64,
    /// Nodes per class, in node-id order: (class label, count).
    pub nodes: Vec<(&'static str, u32)>,
    /// Size of the user population.
    pub users: usize,
    /// Placement policy name (`least_loaded` / `bin_pack` / `fair_share`).
    pub policy: &'static str,
    /// The schedule, ordered by (submit_wave, index).
    pub jobs: Vec<FleetJobSpec>,
    /// Total waves to pump (≥ last release).
    pub waves: usize,
    /// The fault plan: an optional mid-run shard failure (seed-derived,
    /// like everything else — a reproducing seed reproduces the death).
    pub node_fault: Option<NodeFault>,
}

impl FleetScenario {
    /// Generate the scenario for `seed`: a small heterogeneous fleet and
    /// a few dozen placements — the per-seed unit of the sweep.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // K80s always exist; V100/A100 may be absent, so rule-constrained
        // tools and big memory hints sometimes have no admissible node —
        // the rejection path is part of the sweep.
        let nodes = vec![
            ("k80", rng.gen_range(1..=4u32)),
            ("v100", rng.gen_range(0..=3u32)),
            ("a100", rng.gen_range(0..=2u32)),
        ];
        let users = rng.gen_range(2..=12usize);
        let policy = ["least_loaded", "bin_pack", "fair_share"][rng.gen_range(0..3usize)];
        let waves = rng.gen_range(4..=10usize);
        let n_jobs = rng.gen_range(5..=40usize);
        let jobs = (0..n_jobs).map(|_| Self::gen_job(&mut rng, users, waves)).collect();
        // Drawn last so the fault plan never perturbs the topology or
        // schedule a seed produced before faults existed.
        let node_count: u32 = nodes.iter().map(|(_, n)| n).sum();
        let node_fault = rng.gen_bool(0.6).then(|| NodeFault {
            // Strictly mid-run: never the first wave (some placements
            // should exist to lose) and never the last (the death must
            // have waves left in which stale wiring could misplace).
            wave: rng.gen_range(1..waves.saturating_sub(1).max(2)),
            node: rng.gen_range(0..node_count),
        });
        FleetScenario { seed, nodes, users, policy, jobs, waves, node_fault }
    }

    /// The verify-gate scale: a 100-node heterogeneous fleet and a
    /// 10,000-user population. Job count stays bounded (placement is the
    /// system under test, not submission throughput).
    pub fn large(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = vec![("k80", 60u32), ("v100", 30), ("a100", 10)];
        let users = 10_000;
        let policy = ["least_loaded", "bin_pack", "fair_share"][rng.gen_range(0..3usize)];
        let waves = 8;
        let jobs = (0..400).map(|_| Self::gen_job(&mut rng, users, waves)).collect();
        // The gate scale always loses a node mid-run: surviving a shard
        // death at 100 nodes/400 jobs is part of what the gate certifies.
        let node_fault =
            Some(NodeFault { wave: rng.gen_range(1..waves - 1), node: rng.gen_range(0..100u32) });
        FleetScenario { seed, nodes, users, policy, jobs, waves, node_fault }
    }

    fn gen_job(rng: &mut StdRng, users: usize, waves: usize) -> FleetJobSpec {
        let submit_wave = rng.gen_range(0..waves.saturating_sub(1).max(1));
        FleetJobSpec {
            user: rng.gen_range(0..users),
            tool: FLEET_TOOLS[rng.gen_range(0..FLEET_TOOLS.len())],
            // Spans the interesting range: fits-everywhere up to
            // A100-only (> 16,160 MiB excludes K80 and V100 dies).
            memory_hint_mib: [256u64, 1024, 8_000, 12_000, 20_000][rng.gen_range(0..5usize)],
            submit_wave,
            hold_waves: rng.gen_range(1..=3usize),
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> u32 {
        self.nodes.iter().map(|(_, n)| n).sum()
    }

    /// One-line human summary for failure reports.
    pub fn describe(&self) -> String {
        let classes: Vec<String> = self.nodes.iter().map(|(c, n)| format!("{n}x{c}")).collect();
        let fault = match self.node_fault {
            Some(f) => format!(" fault=node{}@wave{}", f.node, f.wave),
            None => String::new(),
        };
        format!(
            "fleet=[{}] users={} policy={} jobs={} waves={}{}",
            classes.join(","),
            self.users,
            self.policy,
            self.jobs.len(),
            self.waves,
            fault,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(FleetScenario::generate(seed), FleetScenario::generate(seed));
        }
        assert_eq!(FleetScenario::large(7), FleetScenario::large(7));
    }

    #[test]
    fn seeds_vary_topology_and_policy() {
        let scenarios: Vec<FleetScenario> = (0..60).map(FleetScenario::generate).collect();
        assert!(scenarios.iter().any(|s| s.policy == "bin_pack"));
        assert!(scenarios.iter().any(|s| s.policy == "fair_share"));
        assert!(scenarios.iter().any(|s| s.nodes.iter().any(|(c, n)| *c == "v100" && *n == 0)));
        assert!(scenarios.iter().any(|s| s.jobs.iter().any(|j| j.memory_hint_mib == 20_000)));
    }

    #[test]
    fn large_scenario_hits_the_gate_scale() {
        let s = FleetScenario::large(1);
        assert_eq!(s.node_count(), 100);
        assert_eq!(s.users, 10_000);
        assert!(s.jobs.len() >= 100);
        assert!(s.describe().contains("users=10000"), "{}", s.describe());
    }

    #[test]
    fn schedule_is_well_formed() {
        for seed in 0..30 {
            let s = FleetScenario::generate(seed);
            for job in &s.jobs {
                assert!(job.submit_wave < s.waves, "seed {seed}");
                assert!(job.hold_waves >= 1, "seed {seed}");
                assert!(job.user < s.users, "seed {seed}");
            }
            if let Some(fault) = s.node_fault {
                assert!(fault.wave >= 1, "seed {seed}");
                assert!(fault.wave < s.waves, "seed {seed}");
                assert!(fault.node < s.node_count(), "seed {seed}");
            }
        }
    }

    #[test]
    fn seeds_vary_the_fault_plan() {
        let scenarios: Vec<FleetScenario> = (0..40).map(FleetScenario::generate).collect();
        assert!(scenarios.iter().any(|s| s.node_fault.is_some()));
        assert!(scenarios.iter().any(|s| s.node_fault.is_none()));
        let faulted = scenarios.iter().find(|s| s.node_fault.is_some()).expect("some fault");
        assert!(faulted.describe().contains("fault=node"), "{}", faulted.describe());
        // The gate scale always kills a node.
        assert!(FleetScenario::large(3).node_fault.is_some());
    }
}
