//! Global invariants checked against the real stack's own state and
//! audit trail.
//!
//! Each check returns a [`Violation`] naming the broken invariant plus
//! enough detail to debug without re-running. The harness turns a
//! violation into a [`crate::SimFailure`] carrying the reproducing seed.

use galaxy::queue::{QueueEngine, SubmissionState};
use galaxy::JobState;
use gyan::LeaseTable;
use obs::{EventData, Recorder};
use std::collections::{BTreeMap, BTreeSet};

/// One broken invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable invariant name (used by the shrinker and failure reports).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        Violation { invariant, detail: detail.into() }
    }
}

/// Between waves the engine's barrier guarantees every attempt concluded,
/// and every conclusion releases its leases — so any lease still active
/// here has leaked.
pub fn no_leaked_leases(table: &LeaseTable, wave: usize) -> Result<(), Violation> {
    let leases = table.all_leases();
    if leases.is_empty() {
        return Ok(());
    }
    let holders: Vec<String> =
        leases.iter().map(|l| format!("job {} on gpu {}", l.holder, l.device)).collect();
    Err(Violation::new(
        "no_leaked_leases",
        format!(
            "{} lease(s) active after wave {} barrier: {}",
            leases.len(),
            wave,
            holders.join(", ")
        ),
    ))
}

/// Replay the `gyan.reservation.{acquire,release}` audit trail and assert
/// exclusive grants are honest: an exclusive lease is only granted on a
/// device with no active leases (which also bounds exclusives at one per
/// minor). Shared grants may legitimately pile onto a busy device — the
/// paper's all-busy placements oversubscribe by design — so they are
/// never a conflict.
pub fn exclusive_isolation(events: &[EventData]) -> Result<(), Violation> {
    // device → active (holder, exclusive) leases, in audit order.
    let mut active: BTreeMap<u64, Vec<(u64, bool)>> = BTreeMap::new();
    for ev in events {
        let device = ev.field("device").and_then(|v| v.as_f64()).map(|d| d as u64);
        let holder = ev.field("job_id").and_then(|v| v.as_f64()).map(|j| j as u64);
        let (Some(device), Some(holder)) = (device, holder) else { continue };
        match ev.name.as_str() {
            "gyan.reservation.acquire" => {
                let exclusive = ev.field("exclusive").and_then(|v| v.as_bool()).unwrap_or(false);
                let slot = active.entry(device).or_default();
                if exclusive && !slot.is_empty() {
                    return Err(Violation::new(
                        "exclusive_isolation",
                        format!(
                            "job {holder} acquired gpu {device} (exclusive={exclusive}) while \
                             held by {:?}",
                            slot
                        ),
                    ));
                }
                slot.push((holder, exclusive));
            }
            "gyan.reservation.release" => {
                if let Some(slot) = active.get_mut(&device) {
                    if let Some(i) = slot.iter().position(|(h, _)| *h == holder) {
                        slot.remove(i);
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Every job exported with `GALAXY_GPU_ENABLED=true` must hold an audited
/// reservation, and every audited reservation must belong to a job that
/// was exported GPU-enabled — the observe→dispatch pipeline may not skip
/// either half.
pub fn export_matches_acquire(events: &[EventData]) -> Result<(), Violation> {
    let job_of = |ev: &EventData| ev.field("job_id").and_then(|v| v.as_f64()).map(|j| j as u64);
    let exported: BTreeSet<u64> = events
        .iter()
        .filter(|e| {
            e.name == "gyan.hook.export"
                && e.field("gpu_enabled").and_then(|v| v.as_bool()) == Some(true)
        })
        .filter_map(job_of)
        .collect();
    let acquired: BTreeSet<u64> =
        events.iter().filter(|e| e.name == "gyan.reservation.acquire").filter_map(job_of).collect();
    if exported != acquired {
        let unbacked: Vec<u64> = exported.difference(&acquired).copied().collect();
        let silent: Vec<u64> = acquired.difference(&exported).copied().collect();
        return Err(Violation::new(
            "export_matches_acquire",
            format!(
                "GPU-enabled exports without reservations: {unbacked:?}; reservations without \
                 GPU-enabled export: {silent:?}"
            ),
        ));
    }
    Ok(())
}

/// Job-count conservation: the engine's submission ledger and the app's
/// job table must agree entry for entry, and terminal states must be
/// consistent between the two layers.
pub fn conservation(engine: &QueueEngine) -> Result<(), Violation> {
    let states = engine.submission_states();
    let jobs = engine.app().jobs();
    if states.len() != jobs.len() {
        return Err(Violation::new(
            "conservation",
            format!("engine tracks {} submissions but app has {} jobs", states.len(), jobs.len()),
        ));
    }
    for (job_id, state) in states {
        let Some(job) = engine.app().job(job_id) else {
            return Err(Violation::new(
                "conservation",
                format!("engine tracks job {job_id} missing from the app"),
            ));
        };
        let consistent = match state {
            SubmissionState::Ok => job.state() == JobState::Ok,
            SubmissionState::Error => job.state() == JobState::Error,
            // A cancelled/discarded submission never finished.
            SubmissionState::Cancelled => job.state() != JobState::Ok,
            // Nothing may still be queued once the engine reports idle.
            SubmissionState::Queued => false,
        };
        if !consistent {
            return Err(Violation::new(
                "conservation",
                format!(
                    "job {job_id}: engine state {state:?} inconsistent with app state {:?}",
                    job.state()
                ),
            ));
        }
    }
    Ok(())
}

/// Every opened span must be closed once the system quiesces.
pub fn spans_balanced(recorder: &Recorder) -> Result<(), Violation> {
    let open = recorder.open_spans();
    if open.is_empty() {
        return Ok(());
    }
    let names: Vec<&str> = open.iter().map(|s| s.name.as_str()).collect();
    Err(Violation::new("spans_balanced", format!("{} span(s) never closed: {names:?}", open.len())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Value;

    fn event(name: &str, fields: Vec<(&'static str, Value)>) -> EventData {
        let rec = Recorder::new();
        rec.event(name, fields);
        rec.events().pop().unwrap()
    }

    #[test]
    fn exclusive_overlap_is_flagged() {
        let acquire = |job: u64, dev: u64, excl: bool| {
            event(
                "gyan.reservation.acquire",
                vec![
                    ("job_id", Value::from(job)),
                    ("device", Value::from(dev)),
                    ("exclusive", Value::from(excl)),
                ],
            )
        };
        let release = |job: u64, dev: u64| {
            event(
                "gyan.reservation.release",
                vec![("job_id", Value::from(job)), ("device", Value::from(dev))],
            )
        };

        // Shared leases may pile up — even onto an exclusively-held
        // device (the all-busy placements oversubscribe by design).
        let ok = vec![acquire(1, 0, false), acquire(2, 0, false), release(1, 0), release(2, 0)];
        assert!(exclusive_isolation(&ok).is_ok());
        let oversubscribed = vec![acquire(1, 0, true), acquire(2, 0, false)];
        assert!(exclusive_isolation(&oversubscribed).is_ok());

        // An exclusive grant on an already-leased device is dishonest.
        let bad = vec![acquire(1, 0, false), acquire(2, 0, true)];
        let violation = exclusive_isolation(&bad).unwrap_err();
        assert_eq!(violation.invariant, "exclusive_isolation");

        // Release in between clears the conflict.
        let healed = vec![acquire(1, 0, true), release(1, 0), acquire(2, 0, true)];
        assert!(exclusive_isolation(&healed).is_ok());
    }

    #[test]
    fn export_acquire_mismatch_is_flagged() {
        let export = event(
            "gyan.hook.export",
            vec![("job_id", Value::from(5u64)), ("gpu_enabled", Value::from(true))],
        );
        let violation = export_matches_acquire(std::slice::from_ref(&export)).unwrap_err();
        assert!(violation.detail.contains("[5]"), "{}", violation.detail);

        let acquire = event(
            "gyan.reservation.acquire",
            vec![("job_id", Value::from(5u64)), ("device", Value::from(0u64))],
        );
        assert!(export_matches_acquire(&[export, acquire]).is_ok());
    }

    #[test]
    fn cpu_disabled_exports_need_no_reservation() {
        let export = event(
            "gyan.hook.export",
            vec![("job_id", Value::from(9u64)), ("gpu_enabled", Value::from(false))],
        );
        assert!(export_matches_acquire(&[export]).is_ok());
    }
}
