//! Criterion microbenchmarks of the XML substrate: parsing tool wrappers
//! and nvidia-smi query documents (the hot path of GYAN's Pseudocode 1,
//! which re-queries on every allocation decision).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpusim::{smi, GpuCluster, GpuProcess};
use gyan::gpu_usage::get_gpu_usage;
use xmlparse::parse;

const RACON_WRAPPER: &str = r#"<tool id="racon_gpu" name="Racon" version="1.4.3">
  <requirements>
    <requirement type="package" version="1.4.3">racon</requirement>
    <requirement type="compute">gpu</requirement>
    <container type="docker">gulsumgudukbay/racon_dockerfile</container>
  </requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
racon_gpu -t $threads --cudapoa-batches $batches $reads $overlaps $target > $consensus
#else
racon -t $threads $reads $overlaps $target > $consensus
#end if
]]></command>
  <inputs>
    <param name="reads" type="data"/>
    <param name="overlaps" type="data"/>
    <param name="target" type="data"/>
    <param name="threads" type="integer" value="4"/>
    <param name="batches" type="integer" value="1"/>
  </inputs>
  <outputs><data name="consensus" format="fasta"/></outputs>
</tool>"#;

fn busy_cluster() -> GpuCluster {
    let cluster = GpuCluster::k80_node();
    for (minor, pid) in [(0u32, 39953u32), (0, 41105), (1, 40534), (1, 41872)] {
        cluster.attach_process(minor, GpuProcess::compute(pid, "/usr/bin/racon_gpu", 60)).unwrap();
    }
    cluster
}

fn bench_parse_wrapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml");
    group.throughput(Throughput::Bytes(RACON_WRAPPER.len() as u64));
    group.bench_function("parse_tool_wrapper", |b| b.iter(|| parse(RACON_WRAPPER).unwrap()));
    group.finish();
}

fn bench_smi_query(c: &mut Criterion) {
    let cluster = busy_cluster();
    let xml = smi::query_xml(&cluster);
    let mut group = c.benchmark_group("nvidia_smi");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("emit_query_xml", |b| b.iter(|| smi::query_xml(&cluster)));
    group.bench_function("parse_query_xml", |b| b.iter(|| parse(&xml).unwrap()));
    // The whole Pseudocode-1 round trip: emit + parse + build the
    // proc_gpu_dict — this runs on every GYAN allocation decision.
    group.bench_function("get_gpu_usage_roundtrip", |b| b.iter(|| get_gpu_usage(&cluster)));
    group.finish();
}

criterion_group!(benches, bench_parse_wrapper, bench_smi_query);
criterion_main!(benches);
