//! Criterion microbenchmarks of GYAN's orchestration overhead: the
//! dynamic destination rule vs a static mapping (DESIGN.md ablation #5).
//! The paper claims GYAN "does not introduce any extra overhead"; this
//! bench quantifies the rule's actual cost.

use criterion::{criterion_group, criterion_main, Criterion};
use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::tool::macros::MacroLibrary;
use galaxy::tool::wrapper::parse_tool;
use galaxy::GalaxyApp;
use gpusim::{GpuCluster, GpuProcess};
use gyan::rules::GpuDestinationRule;
use gyan::{get_gpu_usage, select_gpus, AllocationPolicy};

const GPU_TOOL: &str = r#"<tool id="racon_gpu"><requirements>
  <requirement type="compute">gpu</requirement>
</requirements><command>racon_gpu</command></tool>"#;

fn bench_dynamic_rule(c: &mut Criterion) {
    let cluster = GpuCluster::k80_node();
    cluster.attach_process(0, GpuProcess::compute(1, "t", 60)).unwrap();
    let tool = parse_tool(GPU_TOOL, &MacroLibrary::new()).unwrap();
    let config = JobConfig::from_xml(GYAN_JOB_CONF).unwrap();
    let job = galaxy::job::Job::new(1, "racon_gpu", ParamDict::new());
    let rule = GpuDestinationRule::new(&cluster, "local_gpu", "local_cpu");

    let mut group = c.benchmark_group("scheduler");
    group.bench_function("gyan_dynamic_rule", |b| {
        b.iter(|| rule.decide(&tool, &job, &config).unwrap())
    });
    group.bench_function("static_lookup_baseline", |b| {
        b.iter(|| config.destination_for_tool("racon_gpu").unwrap())
    });
    group.bench_function("allocation_pid_policy", |b| {
        b.iter(|| select_gpus(&cluster, &[0], AllocationPolicy::ProcessId))
    });
    group.bench_function("allocation_memory_policy", |b| {
        b.iter(|| select_gpus(&cluster, &[0], AllocationPolicy::MemoryBased))
    });
    group.bench_function("get_gpu_usage", |b| b.iter(|| get_gpu_usage(&cluster)));
    group.finish();
}

fn bench_full_mapping_pipeline(c: &mut Criterion) {
    // The complete per-job orchestration: destination resolution through
    // a registered rule inside a GalaxyApp.
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.register_rule(
        "gpu_dynamic_destination",
        GpuDestinationRule::new(&cluster, "local_gpu", "local_cpu").into_rule(),
    );
    let tool = parse_tool(GPU_TOOL, &MacroLibrary::new()).unwrap();
    let job = galaxy::job::Job::new(1, "racon_gpu", ParamDict::new());

    let mut group = c.benchmark_group("scheduler");
    group.bench_function("app_map_destination", |b| {
        b.iter(|| app.map_destination(&tool, &job).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dynamic_rule, bench_full_mapping_pipeline);
criterion_main!(benches);
