//! Criterion microbenchmarks of the POA engine — the compute kernel of
//! Racon — including the banding ablation (DESIGN.md ablation #2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqtools::poa::PoaGraph;
use seqtools::sim::genome::random_genome;
use seqtools::sim::reads::{mutate_sequence, ErrorModel};

fn reads_for(backbone: &str, n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| mutate_sequence(backbone, &ErrorModel::pacbio(), &mut rng)).collect()
}

fn bench_poa_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("poa_window");
    group.sample_size(10);
    for window_len in [250usize, 500, 1000] {
        let backbone = random_genome(window_len, 7);
        let reads = reads_for(&backbone, 16, 11);
        let total_bases: usize = reads.iter().map(String::len).sum();
        group.throughput(Throughput::Bytes(total_bases as u64));
        group.bench_with_input(BenchmarkId::new("full", window_len), &window_len, |b, _| {
            b.iter(|| {
                let mut g = PoaGraph::from_sequence(backbone.as_bytes());
                for r in &reads {
                    g.add_sequence(r.as_bytes(), None);
                }
                g.consensus_anchored()
            })
        });
        group.bench_with_input(BenchmarkId::new("banded_100", window_len), &window_len, |b, _| {
            b.iter(|| {
                let mut g = PoaGraph::from_sequence(backbone.as_bytes());
                for r in &reads {
                    g.add_sequence(r.as_bytes(), Some(100));
                }
                g.consensus_anchored()
            })
        });
    }
    group.finish();
}

fn bench_poa_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("poa_coverage");
    group.sample_size(10);
    let backbone = random_genome(500, 3);
    for coverage in [4usize, 8, 16, 32] {
        let reads = reads_for(&backbone, coverage, 13);
        group.bench_with_input(BenchmarkId::from_parameter(coverage), &coverage, |b, _| {
            b.iter(|| {
                let mut g = PoaGraph::from_sequence(backbone.as_bytes());
                for r in &reads {
                    g.add_sequence(r.as_bytes(), Some(100));
                }
                g.consensus_anchored()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_poa_window, bench_poa_coverage);
criterion_main!(benches);
