//! Ablation: Process-ID vs Process-Allocated-Memory device allocation
//! (DESIGN.md ablation #1, the paper's Case 3 vs Case 4 argument).
//!
//! Benchmarks the decision cost of each policy across cluster load
//! states, and reports (once, at startup) the placement each policy
//! produces for the paper's Case-4 scenario — the memory policy avoids
//! scattering single-GPU tools across both devices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpusim::{GpuCluster, GpuProcess};
use gyan::{select_gpus, AllocationPolicy};

fn cluster_with_load(per_device: &[u64]) -> GpuCluster {
    let cluster = GpuCluster::k80_node();
    let mut pid = 50_000;
    for (minor, &mib) in per_device.iter().enumerate() {
        if mib > 0 {
            pid += 1;
            cluster.attach_process(minor as u32, GpuProcess::compute(pid, "tool", mib)).unwrap();
        }
    }
    cluster
}

fn report_case4_outcomes() {
    // Racon (60 MiB) on GPU 0, Bonito (2.7 GB) on GPU 1; who takes the
    // next job?
    let cluster = cluster_with_load(&[60, 2700]);
    let pid = select_gpus(&cluster, &[1], AllocationPolicy::ProcessId).unwrap();
    let mem = select_gpus(&cluster, &[1], AllocationPolicy::MemoryBased).unwrap();
    eprintln!("policy_ablation: case-4 placement — PID policy exposes {:?} (scatter), memory policy exposes {:?} (least loaded)",
        pid.devices, mem.devices);
    assert_eq!(pid.devices, vec![0, 1]);
    assert_eq!(mem.devices, vec![0]);
}

fn bench_policies(c: &mut Criterion) {
    report_case4_outcomes();
    let scenarios: [(&str, Vec<u64>); 3] =
        [("idle", vec![0, 0]), ("half", vec![60, 0]), ("full", vec![60, 2700])];
    let mut group = c.benchmark_group("allocation_policy");
    for (name, load) in &scenarios {
        let cluster = cluster_with_load(load);
        group.bench_with_input(BenchmarkId::new("pid", name), name, |b, _| {
            b.iter(|| select_gpus(&cluster, &[1], AllocationPolicy::ProcessId))
        });
        group.bench_with_input(BenchmarkId::new("memory", name), name, |b, _| {
            b.iter(|| select_gpus(&cluster, &[1], AllocationPolicy::MemoryBased))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
