//! Criterion microbenchmarks of the minimizer mapper (the overlap
//! substrate feeding Racon).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seqtools::mapper::{minimizers, MapperConfig, TargetIndex};
use seqtools::sim::genome::random_genome;
use seqtools::sim::reads::{sample_reads, ErrorModel};

fn bench_minimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimizers");
    for len in [10_000usize, 50_000] {
        let genome = random_genome(len, 5);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| minimizers(&genome, 11, 5))
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(20);
    for len in [10_000usize, 50_000] {
        let genome = random_genome(len, 6);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| TargetIndex::build(&genome, MapperConfig::default()))
        });
    }
    group.finish();
}

fn bench_map_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_reads");
    group.sample_size(20);
    let genome = random_genome(50_000, 7);
    let index = TargetIndex::build(&genome, MapperConfig::default());
    let reads: Vec<String> = sample_reads(&genome, 50, 2_000, &ErrorModel::pacbio(), 9)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let total: usize = reads.iter().map(String::len).sum();
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("50x2kb_pacbio", |b| b.iter(|| index.map_all(&reads)));
    group.finish();
}

criterion_group!(benches, bench_minimizers, bench_index_build, bench_map_reads);
criterion_main!(benches);
