//! Criterion microbenchmarks of the GEMM kernel (Bonito's compute core),
//! including the blocked-vs-naive ablation (DESIGN.md ablation #4) and
//! rayon thread scaling of the full network forward pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqtools::bonito::BonitoModel;
use seqtools::nn::Matrix;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked_parallel", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| a.matmul_naive(&b))
        });
    }
    group.finish();
}

fn bench_network_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("bonito_forward");
    group.sample_size(10);
    let model = BonitoModel::pretrained(9);
    for chunk in [500usize, 2000, 8000] {
        let signal: Vec<f32> = (0..chunk).map(|i| (i as f32 * 0.01).sin()).collect();
        group.throughput(Throughput::Elements(model.flops(chunk) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, _| {
            b.iter(|| model.forward(&signal))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_network_forward);
criterion_main!(benches);
