//! Queue-engine workflow benchmark: DAG fan-out vs sequential makespan on
//! the virtual clock, and fair-share queue throughput at several worker
//! counts. Writes a machine-readable summary to `target/BENCH_workflow.json`.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{DagStep, DagWorkflow, QueueConfig, QueueEngine, WaveTimeCharging};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::VirtualClock;
use gyan::setup::ClusterTime;
use gyan_bench::table::banner;
use seqtools::ToolExecutor;
use std::sync::Arc;

/// Virtual cost charged per tool by the wave-time model.
const STEP_COSTS: &[(&str, f64)] =
    &[("prep", 10.0), ("polish", 20.0), ("basecall", 30.0), ("join", 5.0), ("unit", 1.0)];

fn cost_of(tool_id: &str) -> f64 {
    STEP_COSTS.iter().find(|(id, _)| *id == tool_id).map(|(_, c)| *c).unwrap_or(0.0)
}

/// A queue engine over echo tools whose only time cost is the duration
/// model — so the makespans below are exact properties of the scheduler.
fn engine(clock: VirtualClock, workers: u32) -> QueueEngine {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.register_rule(
        "gpu_dynamic_destination",
        Box::new(|_tool, _job, _conf| Ok("local_cpu".to_string())),
    );
    let lib = MacroLibrary::new();
    for (id, _) in STEP_COSTS {
        let xml = format!(
            r#"<tool id="{id}"><command>echo {id}</command>
               <outputs><data name="out" format="txt"/></outputs></tool>"#
        );
        app.install_tool_xml(&xml, &lib).unwrap();
    }
    app.set_time_source(Box::new(ClusterTime::new(clock.clone())));
    let recorder_clock = clock.clone();
    app.recorder().set_clock(move || recorder_clock.now());
    let config = QueueConfig {
        workers,
        capacity: 4096,
        time_charging: Some(WaveTimeCharging {
            clock: Box::new(ClusterTime::new(clock)),
            model: Box::new(|plan: &galaxy::runners::ExecutionPlan| cost_of(&plan.tool_id)),
        }),
        ..QueueConfig::default()
    };
    let executor = Arc::new(ToolExecutor::new(&gpusim::GpuCluster::cpu_only_node()));
    QueueEngine::new(app, executor, config)
}

fn diamond() -> DagWorkflow {
    DagWorkflow::new("diamond")
        .step(DagStep::new("prep"))
        .step(DagStep::new("polish").after(0))
        .step(DagStep::new("basecall").after(0))
        .step(DagStep::new("join").after(1).after(2))
}

fn chain() -> DagWorkflow {
    DagWorkflow::new("chain")
        .step(DagStep::new("prep"))
        .step(DagStep::new("polish").after(0))
        .step(DagStep::new("basecall").after(1))
        .step(DagStep::new("join").after(2))
}

fn run_dag(dag: DagWorkflow) -> f64 {
    let clock = VirtualClock::new();
    let mut eng = engine(clock, 4);
    let wf = eng.submit_dag("bench", dag).unwrap();
    eng.run_until_idle();
    let report = eng.workflow_report(wf).unwrap();
    assert!(report.ok(), "benchmark workflow failed: {:?}", report.failed_step);
    report.makespan
}

/// Virtual time to drain `jobs` one-second jobs from `users` users with
/// `workers` pool workers.
fn drain_time(jobs: usize, users: usize, workers: u32) -> f64 {
    let clock = VirtualClock::new();
    let mut eng = engine(clock.clone(), workers);
    for i in 0..jobs {
        let user = format!("user{}", i % users);
        eng.submit_async(&user, "unit", &ParamDict::new()).unwrap();
    }
    eng.run_until_idle();
    clock.now()
}

fn main() {
    banner("Workflow throughput", "Queue engine: DAG makespan and fair-share drain rate");

    let parallel = run_dag(diamond());
    let sequential = run_dag(chain());
    let speedup = sequential / parallel;
    println!("\nDAG makespan (virtual seconds, 4 workers):");
    println!("  diamond (fan-out):  {parallel:>6.1}s  = prep + max(polish, basecall) + join");
    println!("  chain (sequential): {sequential:>6.1}s  = prep + polish + basecall + join");
    println!("  speedup:            {speedup:>6.2}x");
    assert!(parallel < sequential, "fan-out must beat the chain");

    const JOBS: usize = 64;
    const USERS: usize = 4;
    println!("\nQueue drain: {JOBS} one-second jobs from {USERS} users:");
    let mut drains = Vec::new();
    for workers in [1u32, 2, 4, 8] {
        let t = drain_time(JOBS, USERS, workers);
        let rate = JOBS as f64 / t;
        drains.push((workers, t, rate));
        println!("  {workers} worker(s): {t:>6.1}s virtual, {rate:>5.2} jobs/s");
    }

    let drain_json: Vec<String> = drains
        .iter()
        .map(|(w, t, rate)| {
            format!(
                "{{\"workers\": {w}, \"virtual_seconds\": {t:.1}, \"jobs_per_second\": {rate:.4}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"workflow_throughput\",\n  \"dag_makespan_s\": {parallel:.1},\n  \"sequential_makespan_s\": {sequential:.1},\n  \"speedup\": {speedup:.4},\n  \"drain\": [{}]\n}}\n",
        drain_json.join(", ")
    );
    let path = std::path::Path::new("target");
    std::fs::create_dir_all(path).ok();
    let out = path.join("BENCH_workflow.json");
    std::fs::write(&out, &json).expect("write summary");
    println!("\nsummary written to {}", out.display());
}
