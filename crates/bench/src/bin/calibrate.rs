//! Calibration probe: prints every headline number of the paper next to
//! the model's current output, for tuning the cost-model constants in
//! `seqtools::racon::model` and `seqtools::bonito::costs`.

use gpusim::{CudaContext, GpuCluster, HostSpec, VirtualClock};
use gyan_bench::paper;
use seqtools::bonito::{basecall_cpu, basecall_gpu, BonitoInput, BonitoModel, BonitoOpts};
use seqtools::racon::{polish_cpu, polish_gpu, RaconInput, RaconOpts};
use seqtools::DatasetSpec;

fn main() {
    // ---- Racon on the Alzheimers NFL instance --------------------------
    let spec = DatasetSpec::alzheimers_nfl();
    println!("racon instance: work_scale = {:.0}", spec.work_scale());
    let input = RaconInput::from_dataset(&spec);
    println!(
        "  overlaps {}/{} reads, synthetic bytes {:.0}",
        input.overlaps.len(),
        input.reads.len(),
        input.synthetic_bytes()
    );

    let opts = RaconOpts { threads: 4, batches: 1, banded: false, window_len: 500 };
    let cpu = polish_cpu(&input, &opts, &HostSpec::xeon_e5_2670(), &VirtualClock::new());
    println!(
        "  CPU: other {:.0}s polish {:.0}s total {:.0}s   (paper: other ~{:.0} polish {:.0} total {:.0})",
        cpu.other_s,
        cpu.polish_s,
        cpu.total_s,
        paper::racon::END_TO_END_CPU_S - paper::racon::POLISH_CPU_S,
        paper::racon::POLISH_CPU_S,
        paper::racon::END_TO_END_CPU_S
    );
    println!("  cells (real) = {:.3e}", cpu.cells as f64);

    let cluster = GpuCluster::k80_node();
    let mut ctx = CudaContext::new(&cluster, None, 1, "racon_gpu").unwrap();
    let gpu = polish_gpu(&input, &opts, &cluster, &mut ctx).unwrap();
    let prof = ctx.destroy();
    println!(
        "  GPU: other {:.0}s polish {:.1}s (alloc {:.1} kernel {:.1} xfer {:.1}) total {:.0}s",
        gpu.other_s, gpu.polish_s, gpu.alloc_s, gpu.kernel_s, gpu.transfer_s, gpu.total_s
    );
    println!(
        "       (paper: polish {:.0} = alloc {:.0} + kernel {:.0}; total {:.0}; API overhead ~{:.0})",
        paper::racon::POLISH_GPU_S,
        paper::racon::POLISH_GPU_ALLOC_S,
        paper::racon::POLISH_GPU_KERNEL_S,
        paper::racon::END_TO_END_GPU_S,
        paper::racon::CUDA_API_OVERHEAD_S
    );
    println!("  end-to-end speedup = {:.2}x (paper ~2x)", cpu.total_s / gpu.total_s);
    let stalls = prof.stall_analysis();
    println!(
        "  stalls: mem {:.0}% exec {:.0}% other {:.0}%  (paper ~70/20/10)",
        stalls.memory_dependency * 100.0,
        stalls.execution_dependency * 100.0,
        stalls.other * 100.0
    );
    println!("  api report:");
    for (name, e) in prof.api_report() {
        println!("    {name:<26} {:>9.2}s  x{}", e.seconds, e.calls);
    }

    // ---- Bonito --------------------------------------------------------
    for spec in [DatasetSpec::acinetobacter_pittii(), DatasetSpec::klebsiella_ksb2()] {
        let input = BonitoInput::from_dataset(&spec);
        let model = BonitoModel::pretrained(spec.seed);
        let opts = BonitoOpts::default();
        let cpu =
            basecall_cpu(&input, &model, &opts, &HostSpec::xeon_e5_2670(), &VirtualClock::new());
        let cluster = GpuCluster::k80_node();
        let mut ctx = CudaContext::new(&cluster, None, 2, "bonito").unwrap();
        let gpu = basecall_gpu(&input, &model, &opts, &cluster, &mut ctx).unwrap();
        ctx.destroy();
        println!(
            "bonito {}: CPU {:.0} h, GPU {:.2} h, speedup {:.0}x (paper CPU >{:.0} h, speedup >50x)",
            spec.name,
            cpu.total_s / 3600.0,
            gpu.total_s / 3600.0,
            cpu.total_s / gpu.total_s,
            if spec.name.starts_with("Acineto") {
                paper::bonito::ACINETOBACTER_CPU_HOURS_MIN
            } else {
                paper::bonito::KLEBSIELLA_CPU_HOURS_MIN
            }
        );
    }
}
