//! Memory-hint ablation: learned right-sizing vs. static baselines.
//!
//! Runs six soaks — {learned, Process-Id static, Memory-Based static}
//! × {under_provisioned, gpu_flaky}, all with the stock
//! [`MemoryModel`](loadgen::MemoryModel)
//! attached so GPU jobs carry real peaks and the executor OOM-kills
//! attempts whose peak exceeds the granted budget — and records one
//! `BENCH_ablation.json` trajectory at the repo root.
//!
//! Two gates apply, in order:
//!
//! 1. **cross-arm acceptance** (absolute, every run): the learned arm
//!    must match-or-beat both statics on queue-wait p99, strictly cut
//!    GPU→CPU fallbacks on both scenarios, and keep its converged p95
//!    estimates within the 20% audit bound;
//! 2. **run-to-run regression** (relative): the learned arm's own
//!    metrics against the previous trajectory, under the shared
//!    `BENCH_TOLERANCE_PCT` delta rule.
//!
//! Env knobs:
//!
//! * `BENCH_TOLERANCE_PCT` — relative regression threshold in percent
//!   (default 40; shared with the other gates).
//! * `BENCH_ABLATION_OUT` — output path (default `BENCH_ablation.json`).
//! * `BENCH_ABLATION_BASELINE` — previous-trajectory path (default:
//!   same as the output path).
//! * `BENCH_ABLATION_USERS` — population per scenario (default 2000);
//!   a changed population makes trajectories incomparable.

use gyan::allocation::AllocationPolicy;
use gyan::footprint::MemoryHint;
use gyan_bench::ablation::{acceptance_violations, compare, AblationTrajectory, SCHEMA};
use gyan_bench::perf::summary_line;
use gyan_bench::table::banner;
use loadgen::{run_scenario, LoadOptions, LoadReport, LoadScenario};

/// Default population per scenario: big enough for the Pareto tail to
/// produce a steady trickle of over-budget jobs, small enough for CI.
const DEFAULT_USERS: usize = 2_000;

/// The gate seed: both scenarios and all three arms replay the exact
/// same arrival schedule, so arm deltas are pure policy effects.
const SEED: u64 = 0xF007;

/// Footprint-revised retries granted to the learned arm — enough
/// budget doublings to bootstrap the largest input bucket.
const FOOTPRINT_RETRIES: u32 = 3;

/// Queue-wait p99 slack for "match-or-beat" (percent).
const MATCH_PCT: f64 = 5.0;

/// Accuracy bound on converged learned estimates (percent).
const ERR_BOUND_PCT: f64 = 20.0;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One ablation arm: a memory-hint mode plus the knobs it implies.
struct Arm {
    name: &'static str,
    options: LoadOptions,
}

fn arms() -> Vec<Arm> {
    vec![
        Arm {
            name: "learned",
            options: LoadOptions {
                memory_hint: MemoryHint::learned(),
                footprint_retries: FOOTPRINT_RETRIES,
                ..Default::default()
            },
        },
        Arm {
            name: "static/process-id",
            options: LoadOptions {
                allocation_policy: Some(AllocationPolicy::ProcessId),
                ..Default::default()
            },
        },
        Arm {
            name: "static/memory-based",
            options: LoadOptions {
                allocation_policy: Some(AllocationPolicy::MemoryBased),
                ..Default::default()
            },
        },
    ]
}

fn run_arm(scenario: &LoadScenario, arm: &Arm) -> LoadReport {
    let report = match run_scenario(scenario, &arm.options) {
        Ok(report) => report,
        Err(failure) => {
            eprintln!("footprint_ablation: FAIL — arm {:?} did not complete\n{failure}", arm.name);
            std::process::exit(1);
        }
    };
    println!(
        "  {:<20} wait p99 {:>8.3}s  makespan {:>8.1}s  fallbacks {:>5}  \
         footprint retries {:>4}  learned audits {:>4} (worst err {:.1}%)",
        arm.name,
        report.queue_wait_p99,
        report.makespan_s,
        report.resubmitted_fallback,
        report.resubmitted_footprint,
        report.learned_estimates,
        report.estimate_err_pct_max,
    );
    report
}

fn main() {
    banner("Memory-hint ablation", "learned right-sizing vs static hints + regression check");

    let tolerance_pct = env_f64("BENCH_TOLERANCE_PCT", 40.0);
    let out_path =
        std::env::var("BENCH_ABLATION_OUT").unwrap_or_else(|_| "BENCH_ablation.json".into());
    let baseline_path =
        std::env::var("BENCH_ABLATION_BASELINE").unwrap_or_else(|_| out_path.clone());
    let users = env_usize("BENCH_ABLATION_USERS", DEFAULT_USERS);

    let up = LoadScenario::under_provisioned(SEED, users).with_memory_model();
    let flaky = LoadScenario::gpu_flaky(SEED, users).with_memory_model();

    let mut reports: Vec<Vec<LoadReport>> = Vec::new();
    for scenario in [&up, &flaky] {
        println!("\nscenario: {}", scenario.describe());
        reports.push(arms().iter().map(|arm| run_arm(scenario, arm)).collect());
    }
    let (up_runs, flaky_runs) = (&reports[0], &reports[1]);
    let learned_estimates = up_runs[0].learned_estimates + flaky_runs[0].learned_estimates;

    let new = AblationTrajectory {
        schema: SCHEMA.to_string(),
        commit: git_commit(),
        up_jobs: up_runs[0].arrivals as f64,
        flaky_jobs: flaky_runs[0].arrivals as f64,
        up_learned_wait_p99_s: up_runs[0].queue_wait_p99,
        up_static_pid_wait_p99_s: up_runs[1].queue_wait_p99,
        up_static_mem_wait_p99_s: up_runs[2].queue_wait_p99,
        up_learned_fallbacks: up_runs[0].resubmitted_fallback as f64,
        up_static_pid_fallbacks: up_runs[1].resubmitted_fallback as f64,
        up_static_mem_fallbacks: up_runs[2].resubmitted_fallback as f64,
        up_learned_makespan_s: up_runs[0].makespan_s,
        up_static_pid_makespan_s: up_runs[1].makespan_s,
        up_static_mem_makespan_s: up_runs[2].makespan_s,
        flaky_learned_wait_p99_s: flaky_runs[0].queue_wait_p99,
        flaky_static_pid_wait_p99_s: flaky_runs[1].queue_wait_p99,
        flaky_static_mem_wait_p99_s: flaky_runs[2].queue_wait_p99,
        flaky_learned_fallbacks: flaky_runs[0].resubmitted_fallback as f64,
        flaky_static_pid_fallbacks: flaky_runs[1].resubmitted_fallback as f64,
        flaky_static_mem_fallbacks: flaky_runs[2].resubmitted_fallback as f64,
        flaky_learned_makespan_s: flaky_runs[0].makespan_s,
        flaky_static_pid_makespan_s: flaky_runs[1].makespan_s,
        flaky_static_mem_makespan_s: flaky_runs[2].makespan_s,
        learned_estimates: learned_estimates as f64,
        estimate_err_pct_max: up_runs[0]
            .estimate_err_pct_max
            .max(flaky_runs[0].estimate_err_pct_max),
    };

    // Gate 1: absolute cross-arm acceptance.
    let violations = acceptance_violations(&new, MATCH_PCT, ERR_BOUND_PCT);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("footprint_ablation: ACCEPTANCE {v}");
        }
        eprintln!("footprint_ablation: FAIL — learned arm did not earn its keep");
        std::process::exit(1);
    }
    println!(
        "\nacceptance: learned ≤ static+{MATCH_PCT}% on wait p99 and makespan, \
         fewer fallbacks, {} audits within {ERR_BOUND_PCT}% — OK",
        new.learned_estimates
    );

    // Gate 2: run-to-run regression on the learned arm.
    let baseline = std::fs::read_to_string(&baseline_path).ok();
    if let Some(text) = &baseline {
        match AblationTrajectory::parse(text) {
            Ok(prev) => {
                let deltas = compare(&prev, &new, tolerance_pct);
                println!(
                    "\nvs {} ({}, tolerance {tolerance_pct}%):\n  {}",
                    baseline_path,
                    prev.commit,
                    summary_line(&deltas)
                );
                let regressed: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
                if !regressed.is_empty() {
                    for d in &regressed {
                        eprintln!(
                            "footprint_ablation: REGRESSION {}: {:.3} -> {:.3} \
                             ({:+.1}%, tolerance {}%)",
                            d.metric, d.prev, d.new, d.pct_change, tolerance_pct
                        );
                    }
                    eprintln!(
                        "footprint_ablation: FAIL — baseline {baseline_path} left untouched; \
                         rerun with BENCH_TOLERANCE_PCT higher to accept, or fix the regression"
                    );
                    std::process::exit(1);
                }
            }
            Err(err) => {
                println!(
                    "\nprevious trajectory at {baseline_path} unreadable ({err}); rebaselining"
                );
            }
        }
    } else {
        println!("\nno previous trajectory at {baseline_path}; recording baseline");
    }

    std::fs::write(&out_path, new.render_json()).expect("write trajectory");
    println!("trajectory written to {out_path} (commit {})", new.commit);
}
