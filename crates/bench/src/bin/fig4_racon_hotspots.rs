//! Figure 4: hotspot functions of the Racon-GPU run (NVProf analysis).
//!
//! The paper finds "the majority of the calls are kernel synchronization
//! calls, memory transfer API calls ... and lastly, ClaraGenomics library
//! kernel calls, which are generatePOAKernel and generateConsensusKernel",
//! plus a stall analysis of ~70% memory-dependency and ~20%
//! execution-dependency stalls.

use gyan_bench::table::{banner, Table};
use gyan_bench::{paper, Testbed};

fn bar(frac: f64) -> String {
    let n = (frac * 40.0).round() as usize;
    "#".repeat(n.min(40))
}

fn main() {
    banner("Fig. 4", "NVProf hotspots of Racon-GPU (Alzheimers NFL, 17 GB)");
    let mut tb = Testbed::k80();
    let id = tb.submit_racon(4, 1, false, "Alzheimers_NFL_IsoSeq").expect("racon gpu run");
    let prof = tb.executor.profiler_for_job(id).expect("gpu job has a profiler");

    println!("\nAPI calls (host time):");
    let total_api = prof.total_api_seconds();
    let mut t = Table::new(&["api call", "time", "calls", "share", ""]);
    for (name, e) in prof.api_report() {
        let share = e.seconds / total_api;
        t.row(&[
            name,
            format!("{:.2} s", e.seconds),
            e.calls.to_string(),
            format!("{:.1}%", share * 100.0),
            bar(share),
        ]);
    }
    t.print();

    println!("\nGPU activities (device time):");
    let total_gpu = prof.total_gpu_seconds();
    let mut t = Table::new(&["activity", "time", "calls", "share", ""]);
    for (name, e) in prof.gpu_report() {
        let share = e.seconds / total_gpu;
        t.row(&[
            name,
            format!("{:.2} s", e.seconds),
            e.calls.to_string(),
            format!("{:.1}%", share * 100.0),
            bar(share),
        ]);
    }
    t.print();

    let stalls = prof.stall_analysis();
    println!("\nStall analysis (paper: ~70% memory dependency, ~20% execution dependency):");
    println!(
        "  memory dependency    {:>5.1}%  {}",
        stalls.memory_dependency * 100.0,
        bar(stalls.memory_dependency)
    );
    println!(
        "  execution dependency {:>5.1}%  {}",
        stalls.execution_dependency * 100.0,
        bar(stalls.execution_dependency)
    );
    println!("  other                {:>5.1}%  {}", stalls.other * 100.0, bar(stalls.other));
    println!(
        "\npaper reference: memory {:.0}% / execution {:.0}%",
        paper::racon::STALL_MEMORY_DEP * 100.0,
        paper::racon::STALL_EXEC_DEP * 100.0
    );
}
