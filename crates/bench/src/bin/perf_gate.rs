//! Canonical scheduler benchmark + regression gate.
//!
//! Measures the allocation hot path and queue engine with the `obs`
//! profiler enabled, emits a schema-versioned trajectory to
//! `BENCH_scheduler.json` at the repo root (embedding the per-scope
//! profile breakdown), and compares against the previous trajectory —
//! failing on regressions beyond the tolerance so every PR inherits the
//! perf history. Wired into `scripts/verify.sh` as the `perf_gate` step.
//!
//! Env knobs:
//!
//! * `BENCH_TOLERANCE_PCT` — relative regression threshold in percent
//!   (default 40; wall-clock numbers are noisy on shared machines).
//! * `BENCH_OUT` — output path (default `BENCH_scheduler.json`).
//! * `BENCH_BASELINE` — previous-trajectory path to compare against
//!   (default: same as `BENCH_OUT`).
//!
//! On regression the baseline file is left untouched (the evidence
//! stays) and the process exits 1.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{
    JobSnapshot, JobsLedger, QueueConfig, QueueEngine, SubmissionState, WaveTimeCharging,
    QUEUE_WAIT_HISTOGRAM,
};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::{GpuCluster, VirtualClock};
use gyan::allocation::AllocationPolicy;
use gyan::reservations::LeaseTable;
use gyan::setup::ClusterTime;
use gyan_bench::perf::{compare, summary_line, Trajectory, SCHEMA};
use gyan_bench::table::banner;
use seqtools::ToolExecutor;
use std::sync::Arc;
use std::time::Instant;

/// How long each wall-clock measurement loop targets (seconds). Short
/// enough that verify.sh stays fast, long enough to average over noise.
const MEASURE_SECONDS: f64 = 0.6;

/// Queue-drain shape: enough jobs that the wait histogram has a real
/// tail, spread across users so fair share does real work.
const DRAIN_JOBS: usize = 256;
const DRAIN_USERS: usize = 8;
const DRAIN_WORKERS: u32 = 4;

/// Minimum share of allocation wall time that must land in named child
/// scopes for the profile to count as attributing the hot path.
const MIN_ATTRIBUTED_PCT: f64 = 90.0;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Allocation decisions per real second on a single K80 node: one
/// `allocate_and_lease` + `release` round-trip per decision, the loop the
/// ops plane's dispatch hook runs per wave member. Each decision runs
/// under an `alloc.decision` root scope so the profiler can attribute
/// the stage breakdown.
fn bench_decisions() -> f64 {
    let cluster = GpuCluster::k80_node();
    let table = LeaseTable::new();
    // Warm up allocator + SMI render once outside the measurement.
    let _ = table.allocate_and_lease(&cluster, &[], AllocationPolicy::ProcessId, 0, 100, None);
    table.release(0, "ok", None);

    let mut decisions = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < MEASURE_SECONDS {
        for _ in 0..64 {
            let holder = decisions % 7 + 1;
            let _scope = obs::profile::global().scope("alloc.decision");
            let alloc = table.allocate_and_lease(
                &cluster,
                &[(decisions % 2) as u32],
                AllocationPolicy::ProcessId,
                holder,
                100,
                None,
            );
            assert!(alloc.is_some(), "K80 node must always allocate");
            table.release(holder, "ok", None);
            decisions += 1;
        }
    }
    decisions as f64 / start.elapsed().as_secs_f64()
}

/// The canonical queue engine: echo tools on a CPU-only node with
/// wave-barrier time charging, mirroring `workflow_throughput`'s setup.
fn engine(clock: VirtualClock, workers: u32) -> QueueEngine {
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    app.register_rule(
        "gpu_dynamic_destination",
        Box::new(|_tool, _job, _conf| Ok("local_cpu".to_string())),
    );
    let lib = MacroLibrary::new();
    app.install_tool_xml(
        r#"<tool id="unit"><command>echo unit</command>
           <outputs><data name="out" format="txt"/></outputs></tool>"#,
        &lib,
    )
    .unwrap();
    app.set_time_source(Box::new(ClusterTime::new(clock.clone())));
    let recorder_clock = clock.clone();
    app.recorder().set_clock(move || recorder_clock.now());
    let config = QueueConfig {
        workers,
        capacity: 4096,
        time_charging: Some(WaveTimeCharging {
            clock: Box::new(ClusterTime::new(clock)),
            model: Box::new(|_plan: &galaxy::runners::ExecutionPlan| 1.0),
        }),
        ..QueueConfig::default()
    };
    let executor = Arc::new(ToolExecutor::new(&GpuCluster::cpu_only_node()));
    QueueEngine::new(app, executor, config)
}

/// Drain the canonical job mix; returns (p50, p99, jobs/sec-real).
/// The quantiles come off the virtual clock (deterministic across
/// machines); the throughput is real wall time.
fn bench_queue() -> (f64, f64, f64) {
    let clock = VirtualClock::new();
    let mut eng = engine(clock, DRAIN_WORKERS);
    for i in 0..DRAIN_JOBS {
        let user = format!("user{}", i % DRAIN_USERS);
        eng.submit_async(&user, "unit", &ParamDict::new()).unwrap();
    }
    let start = Instant::now();
    eng.run_until_idle();
    let wall = start.elapsed().as_secs_f64();
    let metrics = eng.app().recorder().metrics();
    let p50 = metrics.histogram_quantile(QUEUE_WAIT_HISTOGRAM, 0.5).unwrap_or(0.0);
    let p99 = metrics.histogram_quantile(QUEUE_WAIT_HISTOGRAM, 0.99).unwrap_or(0.0);
    let jobs_per_sec = DRAIN_JOBS as f64 / wall.max(1e-9);
    eng.shutdown();
    (p50, p99, jobs_per_sec)
}

/// `JobsLedger::all()` snapshots per real second with a canonical job
/// count — the number the Arc-backed snapshot change moves.
fn bench_ledger_snapshots() -> f64 {
    const JOBS: u64 = 512;
    let ledger = JobsLedger::new();
    for job_id in 0..JOBS {
        ledger.upsert(JobSnapshot {
            job_id,
            user: format!("user{}", job_id % 16),
            tool: "racon_gpu".to_string(),
            state: SubmissionState::Queued,
            attempts: 1,
            destination: Some("remote_cluster_gpu".to_string()),
            node: None,
            priority: 0,
            submitted_at: job_id as f64,
            finished_at: None,
        });
    }
    let mut snapshots = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < MEASURE_SECONDS / 2.0 {
        for _ in 0..16 {
            let all = ledger.all();
            assert_eq!(all.len(), JOBS as usize);
            std::hint::black_box(&all);
            snapshots += 1;
        }
    }
    snapshots as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    banner("Perf gate", "Canonical scheduler trajectory + regression check");

    let tolerance_pct = env_f64("BENCH_TOLERANCE_PCT", 40.0);
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_scheduler.json".into());
    let baseline_path = std::env::var("BENCH_BASELINE").unwrap_or_else(|_| out_path.clone());

    let profiler = obs::profile::global();
    profiler.enable_real_clock();
    profiler.reset();
    profiler.enable();

    let decisions_per_sec = bench_decisions();
    let (queue_wait_p50_s, queue_wait_p99_s, wave_dispatch_jobs_per_sec) = bench_queue();
    let ledger_snapshots_per_sec = bench_ledger_snapshots();

    profiler.disable();
    let attributed = profiler.attributed_pct("alloc.decision").unwrap_or(0.0);

    println!("\nmeasured:");
    println!("  decisions/sec (1 node):        {decisions_per_sec:>12.0}");
    println!("  queue wait p50 (virtual s):    {queue_wait_p50_s:>12.2}");
    println!("  queue wait p99 (virtual s):    {queue_wait_p99_s:>12.2}");
    println!("  wave dispatch jobs/sec (real): {wave_dispatch_jobs_per_sec:>12.0}");
    println!("  ledger snapshots/sec:          {ledger_snapshots_per_sec:>12.0}");
    println!("  alloc profile attribution:     {attributed:>11.1}%");

    println!("\nallocation profile (collapsed stacks, self-time µs):");
    for line in profiler.collapsed().lines().filter(|l| l.starts_with("alloc.decision")) {
        println!("  {line}");
    }

    if attributed < MIN_ATTRIBUTED_PCT {
        eprintln!(
            "perf_gate: FAIL — profile attributes only {attributed:.1}% of allocation wall \
             time to named scopes (need >= {MIN_ATTRIBUTED_PCT}%)"
        );
        std::process::exit(1);
    }

    let new = Trajectory {
        schema: SCHEMA.to_string(),
        commit: git_commit(),
        decisions_per_sec,
        queue_wait_p50_s,
        queue_wait_p99_s,
        wave_dispatch_jobs_per_sec,
        ledger_snapshots_per_sec,
        profile_attributed_pct: attributed,
    };

    let baseline = std::fs::read_to_string(&baseline_path).ok();
    if let Some(text) = &baseline {
        match Trajectory::parse(text) {
            Ok(prev) => {
                let deltas = compare(&prev, &new, tolerance_pct);
                println!(
                    "\nvs {} ({}, tolerance {tolerance_pct}%):\n  {}",
                    baseline_path,
                    prev.commit,
                    summary_line(&deltas)
                );
                let regressed: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
                if !regressed.is_empty() {
                    for d in &regressed {
                        eprintln!(
                            "perf_gate: REGRESSION {}: {:.4} -> {:.4} ({:+.1}%, tolerance {}%)",
                            d.metric, d.prev, d.new, d.pct_change, tolerance_pct
                        );
                    }
                    eprintln!(
                        "perf_gate: FAIL — baseline {baseline_path} left untouched; \
                         rerun with BENCH_TOLERANCE_PCT higher to accept, or fix the regression"
                    );
                    std::process::exit(1);
                }
            }
            Err(err) => {
                println!(
                    "\nprevious trajectory at {baseline_path} unreadable ({err}); rebaselining"
                );
            }
        }
    } else {
        println!("\nno previous trajectory at {baseline_path}; recording baseline");
    }

    let rendered = new.render_json(Some(&profiler.summary_json()));
    std::fs::write(&out_path, rendered).expect("write trajectory");
    println!("trajectory written to {out_path} (commit {})", new.commit);
}
