//! §III motivation: the life-science GPU speedups the paper cites, run
//! through our cost models as representative kernels.
//!
//! "The speedups for a few life sciences applications are as follows:
//! Direct Coulomb Summation ~45×; Cutoff Pair Potentials ~17×;
//! Fluorescence Microphotolysis ~11×; Multi-Level Summation Method
//! Short-Range ~25×."
//!
//! Each application is characterized by its kernel's arithmetic intensity
//! (FLOP per DRAM byte, taken from the structure of the cited
//! algorithms); the CPU baseline runs the same FLOPs through the host
//! model. The point of this harness is that a single roofline + Amdahl
//! model spans the whole motivation table.

use gpusim::{GpuArch, HostSpec, KernelSpec};
use gyan_bench::table::{banner, Table};

struct MotivApp {
    name: &'static str,
    paper_speedup: f64,
    /// Total work (FLOPs) — scale-free for the speedup ratio.
    flops: f64,
    /// Arithmetic intensity of the kernel, FLOP/byte.
    intensity: f64,
    /// Fraction of the CPU implementation that parallelizes.
    cpu_parallel_frac: f64,
}

const APPS: [MotivApp; 4] = [
    MotivApp {
        name: "Direct Coulomb Summation",
        paper_speedup: 45.0,
        flops: 1e13,
        intensity: 14.0, // each grid point reuses all atom data
        cpu_parallel_frac: 0.95,
    },
    MotivApp {
        name: "Cutoff Pair Potentials",
        paper_speedup: 17.0,
        flops: 1e13,
        intensity: 5.2, // neighbour-list gathers cut the reuse
        cpu_parallel_frac: 0.95,
    },
    MotivApp {
        name: "Fluorescence Microphotolysis",
        paper_speedup: 11.0,
        flops: 1e13,
        intensity: 3.3, // stencil-style diffusion update
        cpu_parallel_frac: 0.95,
    },
    MotivApp {
        name: "MSM Short-Range",
        paper_speedup: 25.0,
        flops: 1e13,
        intensity: 7.6, // blocked short-range interactions
        cpu_parallel_frac: 0.95,
    },
];

fn main() {
    banner("§III motivation", "Cited life-science GPU speedups through the roofline model");
    let host = HostSpec::xeon_e5_2670();
    let k80 = GpuArch::tesla_k80();

    let mut t = Table::new(&["application", "intensity", "paper", "modeled", "Δ"]);
    for app in &APPS {
        let cpu_s = host.time_for(app.flops, app.cpu_parallel_frac, host.logical_cpus);
        let kernel = KernelSpec::fp32("motiv", 8192, 256, app.flops, app.flops / app.intensity);
        let gpu_s = kernel.duration(&k80).unwrap().total_s;
        let speedup = cpu_s / gpu_s;
        t.row(&[
            app.name.to_string(),
            format!("{:.1} F/B", app.intensity),
            format!("~{:.0}x", app.paper_speedup),
            format!("{speedup:.0}x"),
            format!("{:+.0}%", (speedup / app.paper_speedup - 1.0) * 100.0),
        ]);
    }
    t.print();

    // The COVID-19 example: "speedups up to 5× (V100 GPU vs. CPU)" —
    // MD engines are near-perfectly parallel on the CPU node (NAMD) and
    // bandwidth-bound on the GPU (~0.9 FLOP/byte force kernels), which
    // caps the per-node win.
    let md = KernelSpec::fp32("md", 8192, 256, 1e13, 1e13 / 0.87);
    let cpu_s = host.time_for(1e13, 0.99, host.logical_cpus);
    let gpu_s = md.duration(&GpuArch::tesla_v100()).unwrap().total_s;
    println!("\nCOVID-19 MD example (V100 vs CPU node): paper ~5x, modeled {:.0}x", cpu_s / gpu_s);
}
