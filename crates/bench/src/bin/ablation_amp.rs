//! Ablation: automatic mixed precision for `bonito train`.
//!
//! The paper notes Bonito "has automatic mixed-precision support for
//! accelerating the training tool". This harness fine-tunes the model
//! head on simulated squiggle data and compares the modeled training time
//! at FP32 vs AMP across GPU generations: on the evaluation K80 (no
//! tensor cores) AMP only halves memory traffic, while on V100/A100 the
//! tensor cores dominate.

use gpusim::{CudaContext, GpuArch, GpuCluster};
use gyan_bench::table::{banner, fmt_secs, Table};
use seqtools::bonito::commands::convert_training_data;
use seqtools::bonito::{train_head, BonitoModel, TrainOpts};
use seqtools::sim::genome::random_genome;
use seqtools::sim::squiggle::{simulate_squiggle, PoreModel};

fn main() {
    banner("Ablation", "bonito train: FP32 vs automatic mixed precision");

    // A small training set of (signal, target) chunks.
    let genome = random_genome(4_000, 3);
    let pore = PoreModel::default();
    let signals: Vec<Vec<f32>> =
        (0..4).map(|i| simulate_squiggle(&genome, &pore, 900 + i)).collect();
    let targets = vec![genome.clone(); 4];
    let chunks = convert_training_data(&signals, &targets, 2_000, 10);
    println!("training set: {} chunks of 2000 samples\n", chunks.len());

    let mut table = Table::new(&["architecture", "FP32", "AMP (FP16)", "speedup"]);
    for arch in [GpuArch::tesla_k80(), GpuArch::tesla_v100(), GpuArch::a100()] {
        let time_for = |amp: bool| -> (f64, f64) {
            let cluster = GpuCluster::node(arch.clone(), 1);
            let mut ctx = CudaContext::new(&cluster, None, 1, "bonito_train").unwrap();
            let mut model = BonitoModel::pretrained(11);
            let report = train_head(
                &mut model,
                &chunks,
                &TrainOpts { epochs: 2, amp, ..TrainOpts::default() },
                Some((&cluster, &mut ctx)),
            );
            ctx.destroy();
            (report.gpu_seconds, *report.epoch_losses.last().unwrap())
        };
        let (fp32_s, fp32_loss) = time_for(false);
        let (amp_s, amp_loss) = time_for(true);
        // AMP changes timing, never results: the arithmetic is identical.
        assert!((fp32_loss - amp_loss).abs() < 1e-12);
        table.row(&[
            arch.name.to_string(),
            fmt_secs(fp32_s),
            fmt_secs(amp_s),
            format!("{:.2}x", fp32_s / amp_s),
        ]);
    }
    table.print();
    println!(
        "\nK80 (the paper's device) has no fast FP16 path, so AMP is a wash on\n\
         compute-bound training GEMMs; on V100/A100 the tensor cores turn AMP\n\
         into a large win — the reason the feature exists in Bonito."
    );
}
