//! Fleet-placement benchmark + regression gate.
//!
//! Drives `Fleet::place`/`release` cycles over the verify-gate fleet
//! (100 heterogeneous nodes: 60×K80, 30×V100, 10×A100) under each stock
//! placement policy, plus the worst-case rejection path (a memory hint
//! no die fits, so every candidate is scanned and filtered). Emits a
//! schema-versioned trajectory to `BENCH_placement.json` at the repo
//! root and compares against the previous one, failing on regressions
//! beyond the tolerance — the fleet-layer sibling of `perf_gate`. Wired
//! into `scripts/verify.sh` behind the same `BENCH_SKIP` knob.
//!
//! Env knobs:
//!
//! * `BENCH_TOLERANCE_PCT` — relative regression threshold in percent
//!   (default 40; shared with the scheduler gate).
//! * `BENCH_PLACEMENT_OUT` — output path (default `BENCH_placement.json`).
//! * `BENCH_PLACEMENT_BASELINE` — previous-trajectory path (default:
//!   same as the output path).

use fleet::{policy_by_name, DestinationRules, Fleet, NodeClass, PlacementRequest};
use gyan_bench::perf::summary_line;
use gyan_bench::placement::{compare, PlacementTrajectory, SCHEMA};
use gyan_bench::table::banner;
use std::collections::VecDeque;
use std::time::Instant;

/// How long each wall-clock measurement loop targets (seconds).
const MEASURE_SECONDS: f64 = 0.4;

/// The verify-gate topology (matches `simtest::FleetScenario::large`).
const TOPOLOGY: &[(&str, u32)] = &[("k80", 60), ("v100", 30), ("a100", 10)];

/// The stock rule set: class lists, memory floors, globs, right-sizing —
/// so every placement pays the real filter cost.
const RULES: &str = "\
tool=bonito* classes=v100,a100 min_gpu_mem_mib=12000 cores=8 mem_mib=65536
tool=medaka min_gpu_mem_mib=8000 cores=4
tool=*
";

/// Rotating job mix: an unconstrained tool, a class-constrained
/// basecaller, and a memory-floored polisher.
const JOB_MIX: &[(&str, u64)] = &[("racon_gpu", 256), ("bonito", 12_000), ("medaka", 8_000)];

/// Live placements kept in flight so the policies score a loaded fleet,
/// not an idle one (the 100-node fleet has 320 dies).
const LIVE_WINDOW: usize = 96;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn gate_fleet(policy: &str) -> Fleet {
    let mut builder = Fleet::builder()
        .rules(DestinationRules::parse(RULES).expect("stock rules parse"))
        .policy(policy_by_name(policy).expect("stock policy"));
    for (class, count) in TOPOLOGY {
        builder = builder.nodes(NodeClass::by_name(class).expect("stock class"), *count);
    }
    builder.build()
}

/// `place` + eventual `release` round-trips per real second under one
/// policy, with a rolling window of live placements loading the fleet.
fn bench_policy(policy: &str) -> f64 {
    let fleet = gate_fleet(policy);
    let users = ["ada", "bob", "cyd", "dee", "eve", "fay", "gus", "hal"];
    let mut live: VecDeque<u64> = VecDeque::new();
    let mut job = 0u64;
    let mut placed = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < MEASURE_SECONDS {
        for _ in 0..64 {
            job += 1;
            let (tool, hint) = JOB_MIX[(job % JOB_MIX.len() as u64) as usize];
            let req = PlacementRequest {
                job_id: job,
                user: users[(job % users.len() as u64) as usize],
                tool_id: tool,
                requested: &[0], // one die per placement
                memory_hint_mib: hint,
                excluded_nodes: &[],
            };
            if fleet.place(&req).is_some() {
                placed += 1;
                live.push_back(job);
            }
            if live.len() > LIVE_WINDOW {
                fleet.release(live.pop_front().expect("window non-empty"), "ok");
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    assert!(placed > 0, "the gate fleet must place under {policy}");
    for id in live {
        fleet.release(id, "ok");
    }
    assert_eq!(fleet.total_lease_count(), 0, "benchmark must drain cleanly");
    placed as f64 / wall
}

/// Full-fleet rejection scans per second: a 100 GB hint fits no die, so
/// every request walks the whole candidate filter and returns `None`.
fn bench_rejections() -> f64 {
    let fleet = gate_fleet("least_loaded");
    let mut scans = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < MEASURE_SECONDS / 2.0 {
        for _ in 0..64 {
            scans += 1;
            let req = PlacementRequest {
                job_id: scans,
                user: "ada",
                tool_id: "racon_gpu",
                requested: &[0],
                memory_hint_mib: 100_000,
                excluded_nodes: &[],
            };
            assert!(fleet.place(&req).is_none(), "no die holds 100 GB");
        }
    }
    scans as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    banner("Placement throughput", "Fleet placement trajectory + regression check");

    let tolerance_pct = env_f64("BENCH_TOLERANCE_PCT", 40.0);
    let out_path =
        std::env::var("BENCH_PLACEMENT_OUT").unwrap_or_else(|_| "BENCH_placement.json".into());
    let baseline_path =
        std::env::var("BENCH_PLACEMENT_BASELINE").unwrap_or_else(|_| out_path.clone());

    let nodes: u32 = TOPOLOGY.iter().map(|(_, n)| n).sum();
    let least_loaded_per_sec = bench_policy("least_loaded");
    let bin_pack_per_sec = bench_policy("bin_pack");
    let fair_share_per_sec = bench_policy("fair_share");
    let rejections_per_sec = bench_rejections();

    println!("\nmeasured ({nodes}-node fleet):");
    println!("  least-loaded placements/sec: {least_loaded_per_sec:>12.0}");
    println!("  bin-pack placements/sec:     {bin_pack_per_sec:>12.0}");
    println!("  fair-share placements/sec:   {fair_share_per_sec:>12.0}");
    println!("  rejection scans/sec:         {rejections_per_sec:>12.0}");

    let new = PlacementTrajectory {
        schema: SCHEMA.to_string(),
        commit: git_commit(),
        nodes: f64::from(nodes),
        least_loaded_per_sec,
        bin_pack_per_sec,
        fair_share_per_sec,
        rejections_per_sec,
    };

    let baseline = std::fs::read_to_string(&baseline_path).ok();
    if let Some(text) = &baseline {
        match PlacementTrajectory::parse(text) {
            Ok(prev) => {
                let deltas = compare(&prev, &new, tolerance_pct);
                println!(
                    "\nvs {} ({}, tolerance {tolerance_pct}%):\n  {}",
                    baseline_path,
                    prev.commit,
                    summary_line(&deltas)
                );
                let regressed: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
                if !regressed.is_empty() {
                    for d in &regressed {
                        eprintln!(
                            "placement_throughput: REGRESSION {}: {:.0} -> {:.0} \
                             ({:+.1}%, tolerance {}%)",
                            d.metric, d.prev, d.new, d.pct_change, tolerance_pct
                        );
                    }
                    eprintln!(
                        "placement_throughput: FAIL — baseline {baseline_path} left untouched; \
                         rerun with BENCH_TOLERANCE_PCT higher to accept, or fix the regression"
                    );
                    std::process::exit(1);
                }
            }
            Err(err) => {
                println!(
                    "\nprevious trajectory at {baseline_path} unreadable ({err}); rebaselining"
                );
            }
        }
    } else {
        println!("\nno previous trajectory at {baseline_path}; recording baseline");
    }

    std::fs::write(&out_path, new.render_json()).expect("write trajectory");
    println!("trajectory written to {out_path} (commit {})", new.commit);
}
