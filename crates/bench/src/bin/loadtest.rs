//! Load-harness benchmark + regression gate.
//!
//! Runs the 10^5-user diurnal [`loadgen`] scenario through the real
//! `GalaxyApp`/`QueueEngine`/`install_gyan` stack in
//! `DispatchMode::Event`, measures the sustained end-to-end submission
//! throughput (wall clock) and the virtual queue-wait quantiles, and
//! emits a schema-versioned trajectory to `BENCH_loadtest.json` at the
//! repo root — comparing against the previous one and failing on
//! regressions beyond the tolerance, like `perf_gate` and
//! `placement_throughput`. Wired into `scripts/verify.sh` behind the
//! same `BENCH_SKIP` knob.
//!
//! Env knobs:
//!
//! * `BENCH_TOLERANCE_PCT` — relative regression threshold in percent
//!   (default 40; shared with the other gates).
//! * `BENCH_LOADTEST_OUT` — output path (default `BENCH_loadtest.json`).
//! * `BENCH_LOADTEST_BASELINE` — previous-trajectory path (default:
//!   same as the output path).
//! * `BENCH_LOADTEST_USERS` — scenario population (default 100000);
//!   shrink for smoke runs, but a changed population makes throughput
//!   numbers incomparable, so the default baseline should stay 10^5.

use gyan_bench::loadtest::{compare, LoadTrajectory, SCHEMA};
use gyan_bench::perf::summary_line;
use gyan_bench::table::banner;
use loadgen::{run_scenario, LoadOptions, LoadScenario, DEFAULT_SLO_RULES};
use std::time::Instant;

/// The baseline population: every SLO must hold at 10^5 users.
const DEFAULT_USERS: usize = 100_000;

/// The gate seed: the whole schedule derives from it, so the measured
/// work is identical run to run.
const SEED: u64 = 0xBE7C;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    banner("Load-test throughput", "10^5-user soak trajectory + regression check");

    let tolerance_pct = env_f64("BENCH_TOLERANCE_PCT", 40.0);
    let out_path =
        std::env::var("BENCH_LOADTEST_OUT").unwrap_or_else(|_| "BENCH_loadtest.json".into());
    let baseline_path =
        std::env::var("BENCH_LOADTEST_BASELINE").unwrap_or_else(|_| out_path.clone());
    let users = env_usize("BENCH_LOADTEST_USERS", DEFAULT_USERS);

    let scenario = LoadScenario::diurnal(SEED, users);
    println!("\nscenario: {}", scenario.describe());

    // The gate run doubles as a soak: every stock SLO rule must stay
    // quiet at full population, or the benchmark itself fails.
    let options = LoadOptions {
        fail_on: DEFAULT_SLO_RULES.iter().map(|s| s.to_string()).collect(),
        ..Default::default()
    };
    let start = Instant::now();
    let report = match run_scenario(&scenario, &options) {
        Ok(report) => report,
        Err(failure) => {
            eprintln!("loadtest: FAIL — the gate scenario breached an SLO\n{failure}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(report.ok, report.submitted, "gate scenario must finish every job");
    let submissions_per_sec = report.submitted as f64 / wall;

    println!("\nmeasured ({} users, {} arrivals):", report.users, report.arrivals);
    println!("  submissions/sec (wall):      {submissions_per_sec:>12.0}");
    println!("  queue-wait p50 (virtual s):  {:>12.3}", report.queue_wait_p50);
    println!("  queue-wait p99 (virtual s):  {:>12.3}", report.queue_wait_p99);
    println!(
        "  waves: {}  peak depth: {}  wall: {wall:.1}s",
        report.waves, report.peak_queue_depth
    );

    let new = LoadTrajectory {
        schema: SCHEMA.to_string(),
        commit: git_commit(),
        users: report.users as f64,
        jobs: report.arrivals as f64,
        submissions_per_sec,
        queue_wait_p50_s: report.queue_wait_p50,
        queue_wait_p99_s: report.queue_wait_p99,
    };

    let baseline = std::fs::read_to_string(&baseline_path).ok();
    if let Some(text) = &baseline {
        match LoadTrajectory::parse(text) {
            Ok(prev) => {
                let deltas = compare(&prev, &new, tolerance_pct);
                println!(
                    "\nvs {} ({}, tolerance {tolerance_pct}%):\n  {}",
                    baseline_path,
                    prev.commit,
                    summary_line(&deltas)
                );
                let regressed: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
                if !regressed.is_empty() {
                    for d in &regressed {
                        eprintln!(
                            "loadtest: REGRESSION {}: {:.3} -> {:.3} \
                             ({:+.1}%, tolerance {}%)",
                            d.metric, d.prev, d.new, d.pct_change, tolerance_pct
                        );
                    }
                    eprintln!(
                        "loadtest: FAIL — baseline {baseline_path} left untouched; \
                         rerun with BENCH_TOLERANCE_PCT higher to accept, or fix the regression"
                    );
                    std::process::exit(1);
                }
            }
            Err(err) => {
                println!(
                    "\nprevious trajectory at {baseline_path} unreadable ({err}); rebaselining"
                );
            }
        }
    } else {
        println!("\nno previous trajectory at {baseline_path}; recording baseline");
    }

    std::fs::write(&out_path, new.render_json()).expect("write trajectory");
    println!("trajectory written to {out_path} (commit {})", new.commit);
}
