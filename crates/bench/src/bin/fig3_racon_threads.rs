//! Figure 3: Racon runtime across CPU thread counts, GPU vs CPU-only.
//!
//! The paper's best configurations: GPU 1.72 s (4 threads, 1 batch, no
//! banding), banded GPU 1.67 s (4 threads, 16 batches), CPU 3.22 s
//! (4 threads) — about a 2× GPU advantage. The paper's absolute axis is a
//! benchmark-slice scale; we report full-dataset virtual seconds plus a
//! column normalized so CPU@4 threads matches the paper's 3.22 s, making
//! the *shape* comparison direct.

use gyan_bench::table::{banner, fmt_secs, Table};
use gyan_bench::{paper, Testbed};

fn main() {
    banner("Fig. 3", "Racon GPU vs CPU across thread counts (Alzheimers NFL, 17 GB)");
    let dataset = "Alzheimers_NFL_IsoSeq";
    let threads_sweep = [1u32, 2, 4, 8];

    let mut cpu_times = Vec::new();
    let mut gpu_times = Vec::new();
    let mut gpu_banded_times = Vec::new();

    let mut tb = Testbed::k80();
    for &threads in &threads_sweep {
        // CPU-only: force the CPU path by using a GPU-less testbed
        // mapping? Simpler: the tool's CPU branch is exercised by
        // submitting on a CPU-only node.
        let mut cpu_tb = Testbed::cpu_only();
        let id = cpu_tb.submit_racon(threads, 1, false, dataset).expect("cpu racon run");
        cpu_times.push(cpu_tb.runtime(id));

        let id = tb.submit_racon(threads, 1, false, dataset).expect("gpu racon run");
        gpu_times.push(tb.runtime(id));

        let id = tb.submit_racon(threads, 16, true, dataset).expect("banded gpu racon run");
        gpu_banded_times.push(tb.runtime(id));
    }

    let cpu_at_4 = cpu_times[2];
    let norm = paper::racon::FIG3_CPU_S / cpu_at_4;

    let mut table = Table::new(&[
        "threads",
        "CPU",
        "GPU (1 batch)",
        "GPU banded (16)",
        "CPU norm",
        "GPU norm",
        "speedup",
    ]);
    for (i, &threads) in threads_sweep.iter().enumerate() {
        table.row(&[
            threads.to_string(),
            fmt_secs(cpu_times[i]),
            fmt_secs(gpu_times[i]),
            fmt_secs(gpu_banded_times[i]),
            format!("{:.2} s", cpu_times[i] * norm),
            format!("{:.2} s", gpu_times[i] * norm),
            format!("{:.2}x", cpu_times[i] / gpu_times[i]),
        ]);
    }
    table.print();

    println!();
    println!(
        "paper:    CPU@4t {:.2} s | GPU best {:.2} s | banded best {:.2} s | ~{:.0}x",
        paper::racon::FIG3_CPU_S,
        paper::racon::FIG3_GPU_BEST_S,
        paper::racon::FIG3_GPU_BANDED_BEST_S,
        paper::racon::SPEEDUP
    );
    println!(
        "measured: CPU@4t {:.2} s | GPU {:.2} s | banded {:.2} s | {:.2}x  (normalized axis)",
        cpu_at_4 * norm,
        gpu_times[2] * norm,
        gpu_banded_times[2] * norm,
        cpu_at_4 / gpu_times[2]
    );
}
