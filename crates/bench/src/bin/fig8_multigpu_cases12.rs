//! Figures 8 + 10: multi-GPU computation mapping, Cases 1 and 2.
//!
//! * **Case 1** — two different tools pinned to their own devices: Racon
//!   requests GPU 0, Bonito requests GPU 1; both must land on their
//!   requested device (Fig. 10's console output shows Racon on GPU 0 and
//!   Bonito driving GPU 1 to 2734 MiB / 95% utilization).
//! * **Case 2** — two instances of the same tool: both Bonito instances
//!   request GPU 1; the first gets it, the second is redirected to the
//!   free GPU 0.

use gpusim::smi;
use gyan::allocation::AllocationPolicy;
use gyan_bench::table::banner;
use gyan_bench::testbed::{bonito_tool_xml, racon_tool_xml};
use gyan_bench::Testbed;

fn main() {
    banner("Figs. 8 & 10", "Multi-GPU Cases 1–2: pinned devices and busy-device redirect");

    // ---- Case 1: Racon → GPU 0, Bonito → GPU 1 -------------------------
    let mut tb = Testbed::k80_linger(AllocationPolicy::ProcessId);
    tb.install_tool(&racon_tool_xml("racon_gpu_dev0", Some("0"))).expect("tool installs");
    tb.install_tool(&bonito_tool_xml("bonito_dev1", Some("1"))).expect("tool installs");

    println!("\nCase 1: Racon requests GPU 0, Bonito requests GPU 1");
    let racon_id = tb.app.submit("racon_gpu_dev0", &params("Alzheimers_NFL_IsoSeq")).unwrap();
    let bonito_id = tb.app.submit("bonito_dev1", &params("Acinetobacter_pittii")).unwrap();
    let racon_mask = tb.app.job(racon_id).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap();
    let bonito_mask = tb.app.job(bonito_id).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap();
    println!("  racon  -> CUDA_VISIBLE_DEVICES={racon_mask} (expected 0)");
    println!("  bonito -> CUDA_VISIBLE_DEVICES={bonito_mask} (expected 1)");
    assert_eq!(racon_mask, "0");
    assert_eq!(bonito_mask, "1");
    println!("\nnvidia-smi (compare paper Fig. 10):\n");
    println!("{}", smi::render_table(&tb.cluster));

    // ---- Case 2: two Bonito instances, both requesting GPU 1 -----------
    tb.executor.release_all();
    println!("Case 2: two Bonito instances both request GPU 1");
    let first = tb.app.submit("bonito_dev1", &params("Acinetobacter_pittii")).unwrap();
    let second = tb.app.submit("bonito_dev1", &params("Acinetobacter_pittii")).unwrap();
    let first_mask = tb.app.job(first).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap();
    let second_mask = tb.app.job(second).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap();
    println!("  bonito #1 -> CUDA_VISIBLE_DEVICES={first_mask} (expected 1: requested and free)");
    println!(
        "  bonito #2 -> CUDA_VISIBLE_DEVICES={second_mask} (expected 0: GPU 1 busy, redirected)"
    );
    assert_eq!(first_mask, "1");
    assert_eq!(second_mask, "0");
    println!("\nnvidia-smi:\n");
    println!("{}", smi::render_table(&tb.cluster));
    println!("Both cases match the paper's scheduling outcomes.");
}

fn params(dataset: &str) -> galaxy::params::ParamDict {
    let mut p = galaxy::params::ParamDict::new();
    p.set("dataset", dataset);
    p
}
