//! §VI-A in-text metrics: the Racon phase breakdown and stall analysis.
//!
//! Paper numbers for the 17 GB Alzheimers NFL dataset: CPU polishing
//! 117 s vs GPU 15 s (2 s allocation + 13 s kernels + ~0.1 ms residual
//! CPU polishing); CPU end-to-end ~410 s vs GPU ~200 s; ~40 s of CUDA API
//! overhead (transfers + kernel sync); NVProf stall analysis ~70% memory
//! dependency, ~20% execution dependency.

use gpusim::{CudaContext, GpuCluster, HostSpec, VirtualClock};
use gyan_bench::paper::racon as p;
use gyan_bench::table::Table;
use seqtools::racon::{polish_cpu, polish_gpu, RaconInput, RaconOpts};
use seqtools::DatasetSpec;

fn main() {
    gyan_bench::table::banner("§VI-A text metrics", "Racon phase breakdown, API overhead, stalls");

    let input = RaconInput::from_dataset(&DatasetSpec::alzheimers_nfl());
    let opts = RaconOpts { threads: 4, batches: 1, banded: false, window_len: 500 };

    let cpu = polish_cpu(&input, &opts, &HostSpec::xeon_e5_2670(), &VirtualClock::new());

    let cluster = GpuCluster::k80_node();
    let mut ctx = CudaContext::new(&cluster, None, 1, "racon_gpu").expect("gpu context");
    let gpu = polish_gpu(&input, &opts, &cluster, &mut ctx).expect("gpu polish");
    let prof = ctx.destroy();
    let stalls = prof.stall_analysis();
    let api_overhead = gpu.transfer_s + gpu.kernel_s + gpu.alloc_s;

    let mut t = Table::new(&["metric", "paper", "measured"]);
    let rows: Vec<(&str, String, String)> = vec![
        ("CPU polishing", format!("{:.0} s", p::POLISH_CPU_S), format!("{:.1} s", cpu.polish_s)),
        (
            "GPU polishing (alloc+kernels)",
            format!("{:.0} s", p::POLISH_GPU_S),
            format!("{:.1} s", gpu.alloc_s + gpu.kernel_s),
        ),
        (
            "  of which allocation",
            format!("{:.0} s", p::POLISH_GPU_ALLOC_S),
            format!("{:.1} s", gpu.alloc_s),
        ),
        (
            "  of which kernels",
            format!("{:.0} s", p::POLISH_GPU_KERNEL_S),
            format!("{:.1} s", gpu.kernel_s),
        ),
        (
            "CPU end-to-end",
            format!("~{:.0} s", p::END_TO_END_CPU_S),
            format!("{:.0} s", cpu.total_s),
        ),
        (
            "GPU end-to-end",
            format!("~{:.0} s", p::END_TO_END_GPU_S),
            format!("{:.0} s", gpu.total_s),
        ),
        (
            "CUDA API overhead (xfer+sync+alloc)",
            format!("~{:.0} s", p::CUDA_API_OVERHEAD_S),
            format!("{:.1} s", api_overhead),
        ),
        (
            "end-to-end speedup",
            format!("~{:.1}x", p::END_TO_END_CPU_S / p::END_TO_END_GPU_S),
            format!("{:.2}x", cpu.total_s / gpu.total_s),
        ),
        (
            "memory-dependency stalls",
            format!("~{:.0}%", p::STALL_MEMORY_DEP * 100.0),
            format!("{:.0}%", stalls.memory_dependency * 100.0),
        ),
        (
            "execution-dependency stalls",
            format!("~{:.0}%", p::STALL_EXEC_DEP * 100.0),
            format!("{:.0}%", stalls.execution_dependency * 100.0),
        ),
    ];
    for (name, paper_v, measured) in rows {
        t.row(&[name.to_string(), paper_v, measured]);
    }
    t.print();

    println!("\nConsensus quality (not reported by the paper, validated here):");
    println!(
        "  draft identity    {:.4}\n  polished identity {:.4}",
        seqtools::align::identity(&input.draft, &input.truth),
        seqtools::align::identity(&cpu.consensus, &input.truth)
    );
    assert_eq!(cpu.consensus, gpu.consensus, "CPU and GPU paths must agree bit-for-bit");
    println!("  CPU and GPU consensus outputs are identical.");
}
