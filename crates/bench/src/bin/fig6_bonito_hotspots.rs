//! Figure 6: Bonito hotspot functions (NVProf analysis).
//!
//! The paper: "The main hotspot functions were found to be CUDA kernel
//! launcher, kernel synchronizer functions, and GEneral Matrix to Matrix
//! Multiplication (GEMM) functions, which are a critical part of neural
//! networks."

use gyan_bench::table::{banner, Table};
use gyan_bench::Testbed;

fn bar(frac: f64) -> String {
    "#".repeat(((frac * 40.0).round() as usize).min(40))
}

fn main() {
    banner("Fig. 6", "NVProf hotspots of the Bonito basecaller (Acinetobacter_pittii)");
    let mut tb = Testbed::k80();
    let id = tb.submit_bonito("Acinetobacter_pittii").expect("gpu bonito run");
    let prof = tb.executor.profiler_for_job(id).expect("gpu job has a profiler");

    println!("\nAPI calls (host time):");
    let total_api = prof.total_api_seconds();
    let mut t = Table::new(&["api call", "time", "calls", "share", ""]);
    for (name, e) in prof.api_report() {
        let share = e.seconds / total_api;
        t.row(&[
            name,
            format!("{:.2} s", e.seconds),
            e.calls.to_string(),
            format!("{:.1}%", share * 100.0),
            bar(share),
        ]);
    }
    t.print();

    println!("\nGPU activities (device time) — GEMM kernels dominate:");
    let total_gpu = prof.total_gpu_seconds();
    let mut t = Table::new(&["activity", "time", "calls", "share", ""]);
    for (name, e) in prof.gpu_report() {
        let share = e.seconds / total_gpu;
        t.row(&[
            name,
            format!("{:.2} s", e.seconds),
            e.calls.to_string(),
            format!("{:.1}%", share * 100.0),
            bar(share),
        ]);
    }
    t.print();

    let gemm_share: f64 = prof
        .gpu_report()
        .iter()
        .filter(|(n, _)| n.starts_with("sgemm"))
        .map(|(_, e)| e.seconds)
        .sum::<f64>()
        / total_gpu;
    println!(
        "\nGEMM share of device time: {:.1}% (paper: GEMM functions are the main hotspot)",
        gemm_share * 100.0
    );
}
