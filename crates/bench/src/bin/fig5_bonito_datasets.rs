//! Figure 5: Bonito CPU vs GPU execution time on the two fast5 datasets.
//!
//! The paper: CPU on Acinetobacter_pittii (1.5 GB) ran "more than 210
//! hours" before being aborted; Klebsiella_pneumoniae_KSB2 (5.2 GB) was
//! approximated at 4× that (>850 h). GPU runs finish in hours, for a
//! speedup "more than 50×".

use gyan_bench::table::{banner, fmt_secs, Table};
use gyan_bench::{paper, Testbed};

fn main() {
    banner("Fig. 5", "Bonito CPU vs GPU on Acinetobacter_pittii and Klebsiella_KSB2");
    let datasets = ["Acinetobacter_pittii", "Klebsiella_pneumoniae_KSB2"];
    let paper_cpu_min_h =
        [paper::bonito::ACINETOBACTER_CPU_HOURS_MIN, paper::bonito::KLEBSIELLA_CPU_HOURS_MIN];

    let mut t = Table::new(&["dataset", "CPU", "GPU", "speedup", "paper CPU", "paper speedup"]);
    for (i, dataset) in datasets.iter().enumerate() {
        let mut cpu_tb = Testbed::cpu_only();
        let id = cpu_tb.submit_bonito(dataset).expect("cpu bonito run");
        let cpu_s = cpu_tb.runtime(id);

        let mut gpu_tb = Testbed::k80();
        let id = gpu_tb.submit_bonito(dataset).expect("gpu bonito run");
        let gpu_s = gpu_tb.runtime(id);

        t.row(&[
            dataset.to_string(),
            fmt_secs(cpu_s),
            fmt_secs(gpu_s),
            format!("{:.0}x", cpu_s / gpu_s),
            format!(">{:.0} h", paper_cpu_min_h[i]),
            format!(">{:.0}x", paper::bonito::SPEEDUP_MIN),
        ]);
    }
    t.print();
    println!("\nNote: the paper reports CPU times as lower bounds (runs were aborted).");
}
