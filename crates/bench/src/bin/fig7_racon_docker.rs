//! Figure 7: containerized Racon-GPU across thread counts and batch
//! sizes, with and without banding, plus the container launch overhead.
//!
//! The paper (Docker experiments): best configuration without banding was
//! 2 threads / 4 batches; with banding 2 threads / 8 batches; and "
//! approximately 0.6 s (36%) of the time was spent on container launching
//! and cold start overhead" (on the Fig. 3 benchmark-slice axis).

use gyan_bench::table::{banner, fmt_secs, Table};
use gyan_bench::{paper, Testbed};

fn main() {
    banner("Fig. 7", "Racon-GPU in Docker containers: threads × batches × banding");
    let dataset = "Alzheimers_NFL_IsoSeq";
    let threads_sweep = [1u32, 2, 4];
    let batches_sweep = [1u32, 4, 8, 16];

    let mut tb = Testbed::k80_docker();
    // Warm the image cache: the paper's overhead number is pull-free cold
    // start; the first job would otherwise pay a multi-second pull.
    tb.app.registry().pull("gulsumgudukbay/racon_dockerfile").expect("image published");

    for banded in [false, true] {
        println!("\n{} banding:", if banded { "WITH" } else { "WITHOUT" });
        let mut table = Table::new(&["threads\\batches", "1", "4", "8", "16"]);
        let mut best: Option<(f64, u32, u32)> = None;
        for &threads in &threads_sweep {
            let mut cells = vec![format!("{threads}")];
            for &batches in &batches_sweep {
                let id =
                    tb.submit_racon(threads, batches, banded, dataset).expect("docker racon run");
                let secs = tb.runtime(id);
                cells.push(format!("{secs:.1} s"));
                if best.map(|(b, _, _)| secs < b).unwrap_or(true) {
                    best = Some((secs, threads, batches));
                }
            }
            table.row(&cells);
        }
        table.print();
        let (secs, threads, batches) = best.expect("sweep non-empty");
        let (pt, pb) =
            if banded { paper::racon::FIG7_BEST_BANDED } else { paper::racon::FIG7_BEST };
        println!(
            "best: {threads} threads / {batches} batches at {} (paper best: {pt} threads / {pb} batches)",
            fmt_secs(secs)
        );
    }

    // Container overhead: compare a containerized run against bare metal.
    let mut bare = Testbed::k80();
    let id = bare.submit_racon(2, 4, false, dataset).expect("bare metal run");
    let bare_s = bare.runtime(id);
    let id = tb.submit_racon(2, 4, false, dataset).expect("docker run");
    let docker_s = tb.runtime(id);
    let overhead = docker_s - bare_s;
    println!(
        "\ncontainer launch + cold start overhead: {:.2} s ({:.2}% of the run)",
        overhead,
        overhead / docker_s * 100.0
    );
    println!(
        "paper: ~{:.1} s ({:.0}% on the benchmark-slice axis where runs take ~1.7 s)",
        paper::racon::CONTAINER_OVERHEAD_S,
        paper::racon::CONTAINER_OVERHEAD_FRAC * 100.0
    );
}
