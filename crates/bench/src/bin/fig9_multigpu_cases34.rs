//! Figures 9 + 11: multi-GPU computation mapping, Cases 3 and 4.
//!
//! * **Case 3** — four instances of the containerized Racon-GPU tool with
//!   the *Process ID* allocation: the first two fill GPUs 0 and 1, the
//!   remaining two are scattered across both (Fig. 11 shows PIDs 41105
//!   and 41872 on both devices).
//! * **Case 4** — Racon + Bonito + a second Bonito with the *Process
//!   Allocated Memory* allocation: the second Bonito lands on the GPU
//!   with the least allocated memory (GPU 0, which holds only Racon's
//!   60 MiB), instead of being scattered.

use gpusim::smi;
use gyan::allocation::AllocationPolicy;
use gyan_bench::table::banner;
use gyan_bench::testbed::{bonito_tool_xml, racon_tool_xml};
use gyan_bench::Testbed;

fn main() {
    banner("Figs. 9 & 11", "Multi-GPU Cases 3–4: PID vs process-memory allocation");

    // ---- Case 3: four Racon instances, PID approach ---------------------
    let mut tb = Testbed::k80_linger(AllocationPolicy::ProcessId);
    tb.install_tool(&racon_tool_xml("racon_gpu_dev0", Some("0"))).expect("tool installs");

    println!("\nCase 3: four Racon-GPU instances (PID allocation)");
    let mut masks = Vec::new();
    for i in 0..4 {
        let id = tb.app.submit("racon_gpu_dev0", &params("Alzheimers_NFL_IsoSeq")).unwrap();
        let job = tb.app.job(id).unwrap();
        let mask = job.env_var("CUDA_VISIBLE_DEVICES").unwrap().to_string();
        println!(
            "  instance {} (pid {:?}) -> CUDA_VISIBLE_DEVICES={mask}",
            i + 1,
            job.pid.unwrap()
        );
        masks.push(mask);
    }
    assert_eq!(masks, vec!["0", "1", "0,1", "0,1"], "paper Case 3 placement");
    println!("\nnvidia-smi process table (compare paper Fig. 11):\n");
    println!("{}", smi::render_table(&tb.cluster));

    // ---- Case 4: Racon + 2× Bonito, memory approach ---------------------
    let mut tb = Testbed::k80_linger(AllocationPolicy::MemoryBased);
    tb.install_tool(&racon_tool_xml("racon_gpu_dev0", Some("0"))).expect("tool installs");
    tb.install_tool(&bonito_tool_xml("bonito_dev1", Some("1"))).expect("tool installs");

    println!("Case 4: Racon→GPU0, Bonito→GPU1, second Bonito (memory allocation)");
    let racon = tb.app.submit("racon_gpu_dev0", &params("Alzheimers_NFL_IsoSeq")).unwrap();
    let bonito1 = tb.app.submit("bonito_dev1", &params("Acinetobacter_pittii")).unwrap();
    let bonito2 = tb.app.submit("bonito_dev1", &params("Acinetobacter_pittii")).unwrap();
    for (label, id, expect) in
        [("racon    ", racon, "0"), ("bonito #1", bonito1, "1"), ("bonito #2", bonito2, "0")]
    {
        let mask = tb.app.job(id).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap();
        println!("  {label} -> CUDA_VISIBLE_DEVICES={mask} (expected {expect})");
        assert_eq!(mask, expect);
    }
    println!(
        "\nThe second Bonito went to GPU 0 — \"at the time that the user executes the\n\
         second instance of Bonito, the GPU with minimum memory usage was GPU 0\n\
         (with 60 MiB usage)\" — instead of being scattered across both devices."
    );
    println!("\nnvidia-smi:\n");
    println!("{}", smi::render_table(&tb.cluster));
}

fn params(dataset: &str) -> galaxy::params::ParamDict {
    let mut p = galaxy::params::ParamDict::new();
    p.set("dataset", dataset);
    p
}
