//! Ablation: GPU architecture sweep.
//!
//! The paper's evaluation runs on Tesla K80s, but its motivation cites
//! V100/A100 deployments ("they expect more gains with A100"). This
//! harness re-runs both workloads' GPU paths on simulated K80, V100, and
//! A100 nodes to quantify how much of the end-to-end win is bounded by
//! the non-GPU phases (Amdahl) versus the device itself.

use gpusim::{CudaContext, GpuArch, GpuCluster, HostSpec, VirtualClock};
use gyan_bench::table::{banner, fmt_secs, Table};
use seqtools::bonito::{basecall_cpu, basecall_gpu, BonitoInput, BonitoModel, BonitoOpts};
use seqtools::racon::{polish_cpu, polish_gpu, RaconInput, RaconOpts};
use seqtools::DatasetSpec;

fn main() {
    banner("Ablation", "GPU architecture sweep: Tesla K80 vs V100 vs A100");
    let archs: [(&str, GpuArch); 3] = [
        ("Tesla K80", GpuArch::tesla_k80()),
        ("Tesla V100", GpuArch::tesla_v100()),
        ("A100", GpuArch::a100()),
    ];

    // ---- Racon ---------------------------------------------------------
    let input = RaconInput::from_dataset(&DatasetSpec::alzheimers_nfl());
    let opts = RaconOpts { threads: 4, batches: 4, banded: false, window_len: 500 };
    let cpu = polish_cpu(&input, &opts, &HostSpec::xeon_e5_2670(), &VirtualClock::new());

    let mut t = Table::new(&["Racon (17 GB)", "kernels", "polish", "end-to-end", "vs CPU"]);
    t.row(&[
        "CPU only (4 threads)".into(),
        "-".into(),
        fmt_secs(cpu.polish_s),
        fmt_secs(cpu.total_s),
        "1.00x".into(),
    ]);
    for (name, arch) in &archs {
        let cluster = GpuCluster::node(arch.clone(), 2);
        let mut ctx = CudaContext::new(&cluster, None, 1, "racon_gpu").unwrap();
        let gpu = polish_gpu(&input, &opts, &cluster, &mut ctx).unwrap();
        ctx.destroy();
        t.row(&[
            name.to_string(),
            fmt_secs(gpu.kernel_s),
            fmt_secs(gpu.polish_s),
            fmt_secs(gpu.total_s),
            format!("{:.2}x", cpu.total_s / gpu.total_s),
        ]);
    }
    t.print();
    println!(
        "Newer devices crush the kernel time, but Racon's end-to-end win saturates:\n\
         the non-polish phases (~{:.0} s) dominate once kernels are fast — Amdahl's law\n\
         on the paper's own phase breakdown.\n",
        cpu.other_s
    );

    // ---- Bonito --------------------------------------------------------
    let input = BonitoInput::from_dataset(&DatasetSpec::acinetobacter_pittii());
    let model = BonitoModel::pretrained(1);
    let opts = BonitoOpts::default();
    let cpu = basecall_cpu(&input, &model, &opts, &HostSpec::xeon_e5_2670(), &VirtualClock::new());

    let mut t = Table::new(&["Bonito (1.5 GB)", "inference", "total", "vs CPU"]);
    t.row(&[
        "CPU only (48 threads)".into(),
        fmt_secs(cpu.nn_s),
        fmt_secs(cpu.total_s),
        "1x".into(),
    ]);
    for (name, arch) in &archs {
        let cluster = GpuCluster::node(arch.clone(), 2);
        let mut ctx = CudaContext::new(&cluster, None, 1, "bonito").unwrap();
        let gpu = basecall_gpu(&input, &model, &opts, &cluster, &mut ctx).unwrap();
        ctx.destroy();
        t.row(&[
            name.to_string(),
            fmt_secs(gpu.nn_s),
            fmt_secs(gpu.total_s),
            format!("{:.0}x", cpu.total_s / gpu.total_s),
        ]);
    }
    t.print();
    println!(
        "Bonito is ~pure GEMM, so its speedup keeps scaling with the device —\n\
         consistent with the paper's expectation of larger gains on newer parts."
    );
}
