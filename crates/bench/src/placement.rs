//! Fleet-placement trajectory schema and regression comparator.
//!
//! The `placement_throughput` binary drives `Fleet::place`/`release`
//! cycles over the verify-gate fleet (100 heterogeneous nodes) and
//! records the results as a schema-versioned [`PlacementTrajectory`] in
//! `BENCH_placement.json` at the repo root — the fleet-layer sibling of
//! the scheduler trajectory in [`crate::perf`], sharing its delta rule
//! ([`crate::perf::delta`]) and one-line summary rendering.

use crate::perf::{delta, Delta, Direction};
use obs::json::{self, JsonValue};

/// Schema identifier embedded in every placement trajectory file.
pub const SCHEMA: &str = "gyan.bench.placement/v1";

/// One recorded fleet-placement benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementTrajectory {
    /// Schema identifier (see [`SCHEMA`]).
    pub schema: String,
    /// `git rev-parse --short` of the measured tree (or `"unknown"`).
    pub commit: String,
    /// Fleet size the throughput loops ran against (recorded for
    /// context, never gated).
    pub nodes: f64,
    /// `place` + `release` round-trips per real second, least-loaded
    /// policy.
    pub least_loaded_per_sec: f64,
    /// Same loop under the bin-pack policy.
    pub bin_pack_per_sec: f64,
    /// Same loop under the fair-share policy.
    pub fair_share_per_sec: f64,
    /// Full-fleet rejection scans per real second (a memory hint no die
    /// fits — the worst-case filter path).
    pub rejections_per_sec: f64,
}

/// One comparable placement metric: name and extractor (all placement
/// metrics are throughputs, so no per-metric direction).
type PlacementMetric = (&'static str, fn(&PlacementTrajectory) -> f64);

/// The comparable metrics; `nodes` is context, not a gate.
fn metrics() -> Vec<PlacementMetric> {
    vec![
        ("least_loaded_per_sec", |t: &PlacementTrajectory| t.least_loaded_per_sec),
        ("bin_pack_per_sec", |t: &PlacementTrajectory| t.bin_pack_per_sec),
        ("fair_share_per_sec", |t: &PlacementTrajectory| t.fair_share_per_sec),
        ("rejections_per_sec", |t: &PlacementTrajectory| t.rejections_per_sec),
    ]
}

fn fmt_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl PlacementTrajectory {
    /// Render the trajectory as the `BENCH_placement.json` document.
    pub fn render_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"commit\": \"{}\",\n  \"nodes\": {},\n  \
             \"least_loaded_per_sec\": {},\n  \"bin_pack_per_sec\": {},\n  \
             \"fair_share_per_sec\": {},\n  \"rejections_per_sec\": {}\n}}\n",
            obs::json_escape(&self.schema),
            obs::json_escape(&self.commit),
            fmt_json(self.nodes),
            fmt_json(self.least_loaded_per_sec),
            fmt_json(self.bin_pack_per_sec),
            fmt_json(self.fair_share_per_sec),
            fmt_json(self.rejections_per_sec),
        )
    }

    /// Parse a `BENCH_placement.json` document. Errors on malformed
    /// JSON, a missing field, or a schema mismatch.
    pub fn parse(text: &str) -> Result<PlacementTrajectory, String> {
        let doc = json::parse(text)?;
        let field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing field \"schema\"".to_string())?
            .to_string();
        if schema != SCHEMA {
            return Err(format!("schema mismatch: file has {schema:?}, expected {SCHEMA:?}"));
        }
        Ok(PlacementTrajectory {
            schema,
            commit: doc.get("commit").and_then(JsonValue::as_str).unwrap_or("unknown").to_string(),
            nodes: field("nodes")?,
            least_loaded_per_sec: field("least_loaded_per_sec")?,
            bin_pack_per_sec: field("bin_pack_per_sec")?,
            fair_share_per_sec: field("fair_share_per_sec")?,
            rejections_per_sec: field("rejections_per_sec")?,
        })
    }
}

/// Compare a new run against the previous trajectory under the shared
/// delta rule. Every placement metric is a throughput, so higher is
/// always better.
pub fn compare(
    prev: &PlacementTrajectory,
    new: &PlacementTrajectory,
    tolerance_pct: f64,
) -> Vec<Delta> {
    metrics()
        .into_iter()
        .map(|(metric, get)| {
            delta(metric, get(prev), get(new), Direction::HigherIsBetter, tolerance_pct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory() -> PlacementTrajectory {
        PlacementTrajectory {
            schema: SCHEMA.to_string(),
            commit: "abc123def456".to_string(),
            nodes: 100.0,
            least_loaded_per_sec: 30_000.0,
            bin_pack_per_sec: 28_000.0,
            fair_share_per_sec: 25_000.0,
            rejections_per_sec: 90_000.0,
        }
    }

    #[test]
    fn render_parse_roundtrip_preserves_every_metric() {
        let t = trajectory();
        let parsed = PlacementTrajectory::parse(&t.render_json()).expect("roundtrip parses");
        assert_eq!(parsed, t);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = trajectory().render_json().replace(SCHEMA, "gyan.bench.placement/v0");
        let err = PlacementTrajectory::parse(&text).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn scheduler_files_do_not_parse_as_placement_files() {
        let scheduler = crate::perf::Trajectory {
            schema: crate::perf::SCHEMA.to_string(),
            commit: "abc".to_string(),
            decisions_per_sec: 1.0,
            queue_wait_p50_s: 1.0,
            queue_wait_p99_s: 1.0,
            wave_dispatch_jobs_per_sec: 1.0,
            ledger_snapshots_per_sec: 1.0,
            profile_attributed_pct: 1.0,
        };
        assert!(PlacementTrajectory::parse(&scheduler.render_json(None)).is_err());
    }

    #[test]
    fn throughput_drop_regresses_and_gain_passes() {
        let prev = trajectory();
        let mut new = trajectory();
        new.fair_share_per_sec *= 0.4; // -60%
        new.rejections_per_sec *= 3.0; // improvement
        let deltas = compare(&prev, &new, 25.0);
        let regressed: Vec<&str> =
            deltas.iter().filter(|d| d.regressed).map(|d| d.metric).collect();
        assert_eq!(regressed, vec!["fair_share_per_sec"]);
    }

    #[test]
    fn nodes_field_is_context_not_a_gate() {
        let prev = trajectory();
        let mut new = trajectory();
        new.nodes = 10.0; // a smaller fleet is not a perf regression
        assert!(compare(&prev, &new, 5.0).iter().all(|d| !d.regressed));
    }
}
