//! Load-test trajectory schema and regression comparator.
//!
//! The `loadtest` binary pushes a 10^5-user diurnal [`loadgen`] scenario
//! through the real queue stack under the event-driven dispatch backend
//! and records the sustained submission throughput plus the virtual
//! queue-wait quantiles as a schema-versioned [`LoadTrajectory`] in
//! `BENCH_loadtest.json` at the repo root — the load-harness sibling of
//! the scheduler trajectory in [`crate::perf`] and the fleet trajectory
//! in [`crate::placement`], sharing their delta rule
//! ([`crate::perf::delta`]) and one-line summary rendering.

use crate::perf::{delta, Delta, Direction};
use obs::json::{self, JsonValue};

/// Schema identifier embedded in every load-test trajectory file.
pub const SCHEMA: &str = "gyan.bench.loadtest/v1";

/// One recorded load-test benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTrajectory {
    /// Schema identifier (see [`SCHEMA`]).
    pub schema: String,
    /// `git rev-parse --short` of the measured tree (or `"unknown"`).
    pub commit: String,
    /// User population the scenario ran with (context, never gated).
    pub users: f64,
    /// Arrivals the scenario generated (context, never gated).
    pub jobs: f64,
    /// Admitted submissions pushed end-to-end per real second — the
    /// sustained throughput of the whole submit/dispatch/complete loop.
    pub submissions_per_sec: f64,
    /// Queue-wait p50 on the virtual clock (seconds). Lower is better:
    /// a scheduler change that lets the backlog linger shows up here.
    pub queue_wait_p50_s: f64,
    /// Queue-wait p99 on the virtual clock (seconds).
    pub queue_wait_p99_s: f64,
}

/// One comparable load-test metric: name, extractor, and direction
/// (throughput up, waits down).
type LoadMetric = (&'static str, fn(&LoadTrajectory) -> f64, Direction);

/// The comparable metrics; `users` and `jobs` are context, not gates.
fn metrics() -> Vec<LoadMetric> {
    vec![
        (
            "submissions_per_sec",
            |t: &LoadTrajectory| t.submissions_per_sec,
            Direction::HigherIsBetter,
        ),
        ("queue_wait_p50_s", |t: &LoadTrajectory| t.queue_wait_p50_s, Direction::LowerIsBetter),
        ("queue_wait_p99_s", |t: &LoadTrajectory| t.queue_wait_p99_s, Direction::LowerIsBetter),
    ]
}

fn fmt_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl LoadTrajectory {
    /// Render the trajectory as the `BENCH_loadtest.json` document.
    pub fn render_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"commit\": \"{}\",\n  \"users\": {},\n  \
             \"jobs\": {},\n  \"submissions_per_sec\": {},\n  \"queue_wait_p50_s\": {},\n  \
             \"queue_wait_p99_s\": {}\n}}\n",
            obs::json_escape(&self.schema),
            obs::json_escape(&self.commit),
            fmt_json(self.users),
            fmt_json(self.jobs),
            fmt_json(self.submissions_per_sec),
            fmt_json(self.queue_wait_p50_s),
            fmt_json(self.queue_wait_p99_s),
        )
    }

    /// Parse a `BENCH_loadtest.json` document. Errors on malformed
    /// JSON, a missing field, or a schema mismatch.
    pub fn parse(text: &str) -> Result<LoadTrajectory, String> {
        let doc = json::parse(text)?;
        let field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing field \"schema\"".to_string())?
            .to_string();
        if schema != SCHEMA {
            return Err(format!("schema mismatch: file has {schema:?}, expected {SCHEMA:?}"));
        }
        Ok(LoadTrajectory {
            schema,
            commit: doc.get("commit").and_then(JsonValue::as_str).unwrap_or("unknown").to_string(),
            users: field("users")?,
            jobs: field("jobs")?,
            submissions_per_sec: field("submissions_per_sec")?,
            queue_wait_p50_s: field("queue_wait_p50_s")?,
            queue_wait_p99_s: field("queue_wait_p99_s")?,
        })
    }
}

/// Compare a new run against the previous trajectory under the shared
/// delta rule, each metric gated in its own direction.
pub fn compare(prev: &LoadTrajectory, new: &LoadTrajectory, tolerance_pct: f64) -> Vec<Delta> {
    metrics()
        .into_iter()
        .map(|(metric, get, direction)| {
            delta(metric, get(prev), get(new), direction, tolerance_pct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory() -> LoadTrajectory {
        LoadTrajectory {
            schema: SCHEMA.to_string(),
            commit: "abc123def456".to_string(),
            users: 100_000.0,
            jobs: 99_500.0,
            submissions_per_sec: 8_000.0,
            queue_wait_p50_s: 4.0,
            queue_wait_p99_s: 22.0,
        }
    }

    #[test]
    fn render_parse_roundtrip_preserves_every_metric() {
        let t = trajectory();
        let parsed = LoadTrajectory::parse(&t.render_json()).expect("roundtrip parses");
        assert_eq!(parsed, t);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = trajectory().render_json().replace(SCHEMA, "gyan.bench.loadtest/v0");
        let err = LoadTrajectory::parse(&text).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn placement_files_do_not_parse_as_loadtest_files() {
        let placement = crate::placement::PlacementTrajectory {
            schema: crate::placement::SCHEMA.to_string(),
            commit: "abc".to_string(),
            nodes: 100.0,
            least_loaded_per_sec: 1.0,
            bin_pack_per_sec: 1.0,
            fair_share_per_sec: 1.0,
            rejections_per_sec: 1.0,
        };
        assert!(LoadTrajectory::parse(&placement.render_json()).is_err());
    }

    #[test]
    fn throughput_drop_and_wait_growth_both_regress() {
        let prev = trajectory();
        let mut new = trajectory();
        new.submissions_per_sec *= 0.4; // -60% throughput
        new.queue_wait_p99_s *= 3.0; // +200% tail wait
        new.queue_wait_p50_s *= 0.5; // an improvement
        let deltas = compare(&prev, &new, 25.0);
        let regressed: Vec<&str> =
            deltas.iter().filter(|d| d.regressed).map(|d| d.metric).collect();
        assert_eq!(regressed, vec!["submissions_per_sec", "queue_wait_p99_s"]);
    }

    #[test]
    fn population_fields_are_context_not_gates() {
        let prev = trajectory();
        let mut new = trajectory();
        new.users = 10.0;
        new.jobs = 7.0;
        assert!(compare(&prev, &new, 5.0).iter().all(|d| !d.regressed));
    }
}
