//! Memory-hint ablation schema and regression comparator.
//!
//! The `footprint_ablation` binary A/B-tests the learned right-sizing
//! loop against the two static allocation baselines from the paper
//! (§IV-C1 Process-Id, §IV-C2 Memory-Based) on the two load shapes
//! where the memory model bites — `under_provisioned` (every wasted
//! CPU-fallback hour lingers in the backlog) and `gpu_flaky` (footprint
//! retries must not fire on non-OOM faults) — and records one flat
//! [`AblationTrajectory`] in `BENCH_ablation.json` at the repo root.
//!
//! Only the *learned* arm's metrics are regression-gated (through the
//! shared [`crate::perf::delta`] rule); the static arms are context the
//! binary asserts against directly: learned must match-or-beat both
//! statics on queue-wait p99 and strictly reduce GPU→CPU fallbacks on
//! both scenarios, and its converged estimates must sit within the 20%
//! accuracy bound the footprint audits promise.

use crate::perf::{delta, Delta, Direction};
use obs::json::{self, JsonValue};

/// Schema identifier embedded in every ablation trajectory file.
pub const SCHEMA: &str = "gyan.bench.ablation/v1";

/// One recorded memory-hint ablation run. Field prefixes: `up_` =
/// under-provisioned scenario, `flaky_` = gpu-flaky scenario; arm
/// suffixes: `learned`, `static_pid` (Process-Id), `static_mem`
/// (Memory-Based).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationTrajectory {
    /// Schema identifier (see [`SCHEMA`]).
    pub schema: String,
    /// `git rev-parse --short` of the measured tree (or `"unknown"`).
    pub commit: String,
    /// Arrivals in the under-provisioned scenario (context).
    pub up_jobs: f64,
    /// Arrivals in the gpu-flaky scenario (context).
    pub flaky_jobs: f64,
    /// Queue-wait p99 (virtual s), under-provisioned, learned arm.
    pub up_learned_wait_p99_s: f64,
    /// Queue-wait p99 (virtual s), under-provisioned, Process-Id static.
    pub up_static_pid_wait_p99_s: f64,
    /// Queue-wait p99 (virtual s), under-provisioned, Memory-Based static.
    pub up_static_mem_wait_p99_s: f64,
    /// GPU→CPU fallback resubmissions, under-provisioned, learned arm.
    pub up_learned_fallbacks: f64,
    /// GPU→CPU fallback resubmissions, under-provisioned, Process-Id static.
    pub up_static_pid_fallbacks: f64,
    /// GPU→CPU fallback resubmissions, under-provisioned, Memory-Based static.
    pub up_static_mem_fallbacks: f64,
    /// Virtual makespan (s), under-provisioned, learned arm.
    pub up_learned_makespan_s: f64,
    /// Virtual makespan (s), under-provisioned, Process-Id static.
    pub up_static_pid_makespan_s: f64,
    /// Virtual makespan (s), under-provisioned, Memory-Based static.
    pub up_static_mem_makespan_s: f64,
    /// Queue-wait p99 (virtual s), gpu-flaky, learned arm.
    pub flaky_learned_wait_p99_s: f64,
    /// Queue-wait p99 (virtual s), gpu-flaky, Process-Id static.
    pub flaky_static_pid_wait_p99_s: f64,
    /// Queue-wait p99 (virtual s), gpu-flaky, Memory-Based static.
    pub flaky_static_mem_wait_p99_s: f64,
    /// GPU→CPU fallback resubmissions, gpu-flaky, learned arm.
    pub flaky_learned_fallbacks: f64,
    /// GPU→CPU fallback resubmissions, gpu-flaky, Process-Id static.
    pub flaky_static_pid_fallbacks: f64,
    /// GPU→CPU fallback resubmissions, gpu-flaky, Memory-Based static.
    pub flaky_static_mem_fallbacks: f64,
    /// Virtual makespan (s), gpu-flaky, learned arm.
    pub flaky_learned_makespan_s: f64,
    /// Virtual makespan (s), gpu-flaky, Process-Id static.
    pub flaky_static_pid_makespan_s: f64,
    /// Virtual makespan (s), gpu-flaky, Memory-Based static.
    pub flaky_static_mem_makespan_s: f64,
    /// Converged-profile (`source="learned"`) footprint audits across
    /// both learned runs (context).
    pub learned_estimates: f64,
    /// Worst |p95 estimate − observed peak| / peak over those audits (%).
    pub estimate_err_pct_max: f64,
}

/// Every numeric field, in document order: `(json key, getter)`.
/// Render, parse, and the comparator all walk this one table.
type Field = (&'static str, fn(&AblationTrajectory) -> f64);

fn fields() -> Vec<Field> {
    vec![
        ("up_jobs", |t| t.up_jobs),
        ("flaky_jobs", |t| t.flaky_jobs),
        ("up_learned_wait_p99_s", |t| t.up_learned_wait_p99_s),
        ("up_static_pid_wait_p99_s", |t| t.up_static_pid_wait_p99_s),
        ("up_static_mem_wait_p99_s", |t| t.up_static_mem_wait_p99_s),
        ("up_learned_fallbacks", |t| t.up_learned_fallbacks),
        ("up_static_pid_fallbacks", |t| t.up_static_pid_fallbacks),
        ("up_static_mem_fallbacks", |t| t.up_static_mem_fallbacks),
        ("up_learned_makespan_s", |t| t.up_learned_makespan_s),
        ("up_static_pid_makespan_s", |t| t.up_static_pid_makespan_s),
        ("up_static_mem_makespan_s", |t| t.up_static_mem_makespan_s),
        ("flaky_learned_wait_p99_s", |t| t.flaky_learned_wait_p99_s),
        ("flaky_static_pid_wait_p99_s", |t| t.flaky_static_pid_wait_p99_s),
        ("flaky_static_mem_wait_p99_s", |t| t.flaky_static_mem_wait_p99_s),
        ("flaky_learned_fallbacks", |t| t.flaky_learned_fallbacks),
        ("flaky_static_pid_fallbacks", |t| t.flaky_static_pid_fallbacks),
        ("flaky_static_mem_fallbacks", |t| t.flaky_static_mem_fallbacks),
        ("flaky_learned_makespan_s", |t| t.flaky_learned_makespan_s),
        ("flaky_static_pid_makespan_s", |t| t.flaky_static_pid_makespan_s),
        ("flaky_static_mem_makespan_s", |t| t.flaky_static_mem_makespan_s),
        ("learned_estimates", |t| t.learned_estimates),
        ("estimate_err_pct_max", |t| t.estimate_err_pct_max),
    ]
}

/// The regression-gated subset: the learned arm's own trajectory (the
/// statics are asserted cross-arm by the binary, not gated run-to-run —
/// a *baseline* getting worse is not a regression of the feature).
type AblationMetric = (&'static str, fn(&AblationTrajectory) -> f64, Direction);

fn metrics() -> Vec<AblationMetric> {
    vec![
        (
            "up_learned_wait_p99_s",
            |t: &AblationTrajectory| t.up_learned_wait_p99_s,
            Direction::LowerIsBetter,
        ),
        (
            "flaky_learned_wait_p99_s",
            |t: &AblationTrajectory| t.flaky_learned_wait_p99_s,
            Direction::LowerIsBetter,
        ),
        (
            "up_learned_fallbacks",
            |t: &AblationTrajectory| t.up_learned_fallbacks,
            Direction::LowerIsBetter,
        ),
        (
            "flaky_learned_fallbacks",
            |t: &AblationTrajectory| t.flaky_learned_fallbacks,
            Direction::LowerIsBetter,
        ),
        (
            "up_learned_makespan_s",
            |t: &AblationTrajectory| t.up_learned_makespan_s,
            Direction::LowerIsBetter,
        ),
        (
            "flaky_learned_makespan_s",
            |t: &AblationTrajectory| t.flaky_learned_makespan_s,
            Direction::LowerIsBetter,
        ),
        (
            "estimate_err_pct_max",
            |t: &AblationTrajectory| t.estimate_err_pct_max,
            Direction::LowerIsBetter,
        ),
    ]
}

fn fmt_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl AblationTrajectory {
    /// Render the trajectory as the `BENCH_ablation.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", obs::json_escape(&self.schema)));
        out.push_str(&format!("  \"commit\": \"{}\"", obs::json_escape(&self.commit)));
        for (key, get) in fields() {
            out.push_str(&format!(",\n  \"{key}\": {}", fmt_json(get(self))));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parse a `BENCH_ablation.json` document. Errors on malformed
    /// JSON, a missing field, or a schema mismatch.
    pub fn parse(text: &str) -> Result<AblationTrajectory, String> {
        let doc = json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing field \"schema\"".to_string())?
            .to_string();
        if schema != SCHEMA {
            return Err(format!("schema mismatch: file has {schema:?}, expected {SCHEMA:?}"));
        }
        let field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let mut t = AblationTrajectory {
            schema,
            commit: doc.get("commit").and_then(JsonValue::as_str).unwrap_or("unknown").to_string(),
            up_jobs: 0.0,
            flaky_jobs: 0.0,
            up_learned_wait_p99_s: 0.0,
            up_static_pid_wait_p99_s: 0.0,
            up_static_mem_wait_p99_s: 0.0,
            up_learned_fallbacks: 0.0,
            up_static_pid_fallbacks: 0.0,
            up_static_mem_fallbacks: 0.0,
            up_learned_makespan_s: 0.0,
            up_static_pid_makespan_s: 0.0,
            up_static_mem_makespan_s: 0.0,
            flaky_learned_wait_p99_s: 0.0,
            flaky_static_pid_wait_p99_s: 0.0,
            flaky_static_mem_wait_p99_s: 0.0,
            flaky_learned_fallbacks: 0.0,
            flaky_static_pid_fallbacks: 0.0,
            flaky_static_mem_fallbacks: 0.0,
            flaky_learned_makespan_s: 0.0,
            flaky_static_pid_makespan_s: 0.0,
            flaky_static_mem_makespan_s: 0.0,
            learned_estimates: 0.0,
            estimate_err_pct_max: 0.0,
        };
        // One settable slot per table key, same order as `fields()`.
        let slots: [&mut f64; 22] = [
            &mut t.up_jobs,
            &mut t.flaky_jobs,
            &mut t.up_learned_wait_p99_s,
            &mut t.up_static_pid_wait_p99_s,
            &mut t.up_static_mem_wait_p99_s,
            &mut t.up_learned_fallbacks,
            &mut t.up_static_pid_fallbacks,
            &mut t.up_static_mem_fallbacks,
            &mut t.up_learned_makespan_s,
            &mut t.up_static_pid_makespan_s,
            &mut t.up_static_mem_makespan_s,
            &mut t.flaky_learned_wait_p99_s,
            &mut t.flaky_static_pid_wait_p99_s,
            &mut t.flaky_static_mem_wait_p99_s,
            &mut t.flaky_learned_fallbacks,
            &mut t.flaky_static_pid_fallbacks,
            &mut t.flaky_static_mem_fallbacks,
            &mut t.flaky_learned_makespan_s,
            &mut t.flaky_static_pid_makespan_s,
            &mut t.flaky_static_mem_makespan_s,
            &mut t.learned_estimates,
            &mut t.estimate_err_pct_max,
        ];
        for ((key, _), slot) in fields().into_iter().zip(slots) {
            *slot = field(key)?;
        }
        Ok(t)
    }
}

/// Compare a new run's learned arm against the previous trajectory
/// under the shared delta rule.
pub fn compare(
    prev: &AblationTrajectory,
    new: &AblationTrajectory,
    tolerance_pct: f64,
) -> Vec<Delta> {
    metrics()
        .into_iter()
        .map(|(metric, get, direction)| {
            delta(metric, get(prev), get(new), direction, tolerance_pct)
        })
        .collect()
}

/// The cross-arm acceptance the binary enforces on every fresh run:
/// the learned arm must match-or-beat both static arms on queue-wait
/// p99 (within `match_pct` slack) and strictly reduce fallbacks, on
/// both scenarios; converged estimates must sit within `err_bound_pct`.
/// Returns the violated clauses (empty = accepted).
pub fn acceptance_violations(
    t: &AblationTrajectory,
    match_pct: f64,
    err_bound_pct: f64,
) -> Vec<String> {
    let mut bad = Vec::new();
    let slack = 1.0 + match_pct / 100.0;
    let wait = [
        ("under-provisioned", t.up_learned_wait_p99_s, t.up_static_pid_wait_p99_s, "process-id"),
        ("under-provisioned", t.up_learned_wait_p99_s, t.up_static_mem_wait_p99_s, "memory-based"),
        ("gpu-flaky", t.flaky_learned_wait_p99_s, t.flaky_static_pid_wait_p99_s, "process-id"),
        ("gpu-flaky", t.flaky_learned_wait_p99_s, t.flaky_static_mem_wait_p99_s, "memory-based"),
    ];
    for (scenario, learned, static_, arm) in wait {
        if learned > static_ * slack {
            bad.push(format!(
                "{scenario}: learned queue-wait p99 {learned:.3}s exceeds \
                 {arm} static {static_:.3}s by more than {match_pct}%"
            ));
        }
    }
    let fallbacks = [
        ("under-provisioned", t.up_learned_fallbacks, t.up_static_pid_fallbacks, "process-id"),
        ("under-provisioned", t.up_learned_fallbacks, t.up_static_mem_fallbacks, "memory-based"),
        ("gpu-flaky", t.flaky_learned_fallbacks, t.flaky_static_pid_fallbacks, "process-id"),
        ("gpu-flaky", t.flaky_learned_fallbacks, t.flaky_static_mem_fallbacks, "memory-based"),
    ];
    for (scenario, learned, static_, arm) in fallbacks {
        if learned >= static_ {
            bad.push(format!(
                "{scenario}: learned arm took {learned} GPU→CPU fallbacks, \
                 not fewer than {arm} static's {static_}"
            ));
        }
    }
    // Makespan is the discriminating metric once both arms saturate the
    // queue-wait histogram's top bucket: every avoided CPU-slowdown hour
    // shows up here directly.
    let makespan = [
        ("under-provisioned", t.up_learned_makespan_s, t.up_static_pid_makespan_s, "process-id"),
        ("under-provisioned", t.up_learned_makespan_s, t.up_static_mem_makespan_s, "memory-based"),
        ("gpu-flaky", t.flaky_learned_makespan_s, t.flaky_static_pid_makespan_s, "process-id"),
        ("gpu-flaky", t.flaky_learned_makespan_s, t.flaky_static_mem_makespan_s, "memory-based"),
    ];
    for (scenario, learned, static_, arm) in makespan {
        if learned > static_ * slack {
            bad.push(format!(
                "{scenario}: learned makespan {learned:.1}s exceeds \
                 {arm} static {static_:.1}s by more than {match_pct}%"
            ));
        }
    }
    if t.learned_estimates < 1.0 {
        bad.push("no footprint profile converged to a learned estimate".to_string());
    }
    if t.estimate_err_pct_max > err_bound_pct {
        bad.push(format!(
            "worst learned p95 estimate off by {:.1}% (bound {err_bound_pct}%)",
            t.estimate_err_pct_max
        ));
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory() -> AblationTrajectory {
        AblationTrajectory {
            schema: SCHEMA.to_string(),
            commit: "abc123def456".to_string(),
            up_jobs: 2_000.0,
            flaky_jobs: 1_500.0,
            up_learned_wait_p99_s: 80.0,
            up_static_pid_wait_p99_s: 100.0,
            up_static_mem_wait_p99_s: 98.0,
            up_learned_fallbacks: 2.0,
            up_static_pid_fallbacks: 11.0,
            up_static_mem_fallbacks: 11.0,
            up_learned_makespan_s: 2_100.0,
            up_static_pid_makespan_s: 2_300.0,
            up_static_mem_makespan_s: 2_280.0,
            flaky_learned_wait_p99_s: 40.0,
            flaky_static_pid_wait_p99_s: 41.0,
            flaky_static_mem_wait_p99_s: 42.0,
            flaky_learned_fallbacks: 1_210.0,
            flaky_static_pid_fallbacks: 1_240.0,
            flaky_static_mem_fallbacks: 1_238.0,
            flaky_learned_makespan_s: 900.0,
            flaky_static_pid_makespan_s: 930.0,
            flaky_static_mem_makespan_s: 925.0,
            learned_estimates: 150.0,
            estimate_err_pct_max: 14.2,
        }
    }

    #[test]
    fn render_parse_roundtrip_preserves_every_field() {
        let t = trajectory();
        let parsed = AblationTrajectory::parse(&t.render_json()).expect("roundtrip parses");
        assert_eq!(parsed, t);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = trajectory().render_json().replace(SCHEMA, "gyan.bench.ablation/v0");
        let err = AblationTrajectory::parse(&text).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn loadtest_files_do_not_parse_as_ablation_files() {
        let loadtest = crate::loadtest::LoadTrajectory {
            schema: crate::loadtest::SCHEMA.to_string(),
            commit: "abc".to_string(),
            users: 1.0,
            jobs: 1.0,
            submissions_per_sec: 1.0,
            queue_wait_p50_s: 1.0,
            queue_wait_p99_s: 1.0,
        };
        assert!(AblationTrajectory::parse(&loadtest.render_json()).is_err());
    }

    #[test]
    fn only_the_learned_arm_is_gated() {
        let prev = trajectory();
        let mut new = trajectory();
        // Static arms tanking is context, not a regression...
        new.up_static_pid_wait_p99_s *= 10.0;
        new.flaky_static_mem_fallbacks *= 10.0;
        assert!(compare(&prev, &new, 5.0).iter().all(|d| !d.regressed));
        // ...the learned arm tanking is.
        new.up_learned_wait_p99_s *= 3.0;
        let deltas = compare(&prev, &new, 5.0);
        let regressed: Vec<&str> =
            deltas.iter().filter(|d| d.regressed).map(|d| d.metric).collect();
        assert_eq!(regressed, vec!["up_learned_wait_p99_s"]);
    }

    #[test]
    fn acceptance_passes_the_healthy_shape_and_names_each_violation() {
        let good = trajectory();
        assert!(acceptance_violations(&good, 5.0, 20.0).is_empty());

        let mut bad = trajectory();
        bad.up_learned_wait_p99_s = 200.0; // worse than both statics
        bad.flaky_learned_fallbacks = bad.flaky_static_pid_fallbacks; // not fewer
        bad.up_learned_makespan_s = 10_000.0; // slower than both statics
        bad.learned_estimates = 0.0;
        bad.estimate_err_pct_max = 35.0;
        let violations = acceptance_violations(&bad, 5.0, 20.0);
        assert_eq!(violations.len(), 2 + 2 + 2 + 2, "{violations:#?}");
    }
}
