//! Minimal ASCII table rendering for harness output.

/// A simple left-padded column table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            format!("| {} |", parts.join(" | "))
        };
        let sep: String =
            format!("+{}+", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+"));
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with adaptive units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

/// Standard banner for a figure binary.
pub fn banner(fig: &str, what: &str) {
    println!("==============================================================");
    println!("GYAN reproduction — {fig}");
    println!("{what}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["config", "time"]);
        t.row(&["cpu-4t".into(), "3.22 s".into()]);
        t.row(&["gpu".into(), "1.72 s".into()]);
        let r = t.render();
        assert!(r.contains("| config |"));
        assert!(r.contains("| cpu-4t | 3.22 s |"));
        assert_eq!(r.lines().filter(|l| l.starts_with('+')).count(), 3);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_secs(7500.0), "2.1 h");
        assert_eq!(fmt_secs(90.0), "1.5 min");
        assert_eq!(fmt_secs(3.216), "3.22 s");
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
    }
}
