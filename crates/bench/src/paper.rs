//! Reference values reported by the paper (§VI, Figs. 3–11), used by the
//! harness binaries to print paper-vs-measured comparisons.

/// Racon on the 17 GB Alzheimers NFL dataset (§VI-A, Fig. 3).
pub mod racon {
    /// Best GPU configuration runtime, seconds (4 threads, 1 batch, no
    /// banding). Fig. 3 reports a benchmark-slice scale.
    pub const FIG3_GPU_BEST_S: f64 = 1.72;
    /// Best banded GPU configuration (4 threads, 16 batches).
    pub const FIG3_GPU_BANDED_BEST_S: f64 = 1.67;
    /// CPU-only at 4 threads.
    pub const FIG3_CPU_S: f64 = 3.22;
    /// Headline speedup.
    pub const SPEEDUP: f64 = 2.0;

    /// CPU polishing phase, seconds (full dataset).
    pub const POLISH_CPU_S: f64 = 117.0;
    /// GPU polishing total (2 s alloc + 13 s kernels).
    pub const POLISH_GPU_S: f64 = 15.0;
    /// GPU memory allocation share of polishing.
    pub const POLISH_GPU_ALLOC_S: f64 = 2.0;
    /// GPU kernel share of polishing.
    pub const POLISH_GPU_KERNEL_S: f64 = 13.0;
    /// End-to-end CPU run.
    pub const END_TO_END_CPU_S: f64 = 410.0;
    /// End-to-end GPU run.
    pub const END_TO_END_GPU_S: f64 = 200.0;
    /// CUDA API overhead (transfers + sync) attributed in the text.
    pub const CUDA_API_OVERHEAD_S: f64 = 40.0;
    /// NVProf stall analysis: memory dependency fraction.
    pub const STALL_MEMORY_DEP: f64 = 0.70;
    /// NVProf stall analysis: execution dependency fraction.
    pub const STALL_EXEC_DEP: f64 = 0.20;

    /// Docker experiments (Fig. 7): container launch + cold start
    /// overhead, seconds, and its share of the run.
    pub const CONTAINER_OVERHEAD_S: f64 = 0.6;
    /// Overhead share of the containerized run (36%).
    pub const CONTAINER_OVERHEAD_FRAC: f64 = 0.36;
    /// Best containerized config without banding: 2 threads, 4 batches.
    pub const FIG7_BEST: (u32, u32) = (2, 4);
    /// Best containerized config with banding: 2 threads, 8 batches.
    pub const FIG7_BEST_BANDED: (u32, u32) = (2, 8);
}

/// Bonito (Fig. 5).
pub mod bonito {
    /// CPU runtime lower bound for Acinetobacter_pittii (1.5 GB): the
    /// paper aborted the run after 210 hours.
    pub const ACINETOBACTER_CPU_HOURS_MIN: f64 = 210.0;
    /// CPU estimate for Klebsiella KSB2 (5.2 GB): "approximated to last
    /// 4× longer" (>850 h).
    pub const KLEBSIELLA_CPU_HOURS_MIN: f64 = 850.0;
    /// Headline speedup lower bound.
    pub const SPEEDUP_MIN: f64 = 50.0;
}

/// Multi-GPU case studies (§VI-C, Figs. 8–11).
pub mod cases {
    /// Fig. 10: idle K80 die framebuffer usage, MiB.
    pub const IDLE_FB_MIB: u64 = 63;
    /// Fig. 10: busy die (Bonito) framebuffer usage, MiB.
    pub const BONITO_FB_MIB: u64 = 2734;
    /// Fig. 11: per-racon-process device memory, MiB.
    pub const RACON_PROC_MIB: u64 = 60;
}
