//! Perf-trajectory schema and regression comparator.
//!
//! The `perf_gate` binary measures the canonical scheduler benchmarks
//! (allocation decisions/sec, queue-wait quantiles, wave-dispatch
//! throughput, ledger snapshot rate) and records them as a
//! schema-versioned [`Trajectory`] in `BENCH_scheduler.json` at the repo
//! root — one file, updated in place, committed alongside the code it
//! measures, so `git log BENCH_scheduler.json` *is* the perf history.
//!
//! This module holds the parts the gate shares with tests: the schema,
//! JSON render/parse (via the workspace's dependency-free `obs::json`
//! reader), and [`compare`], which checks a new trajectory against the
//! previous one and flags any metric that moved the wrong way by more
//! than the tolerance.

use obs::json::{self, JsonValue};

/// Schema identifier embedded in every trajectory file. Bump the suffix
/// when fields change incompatibly; the comparator refuses to diff
/// across schemas rather than misreading old numbers.
pub const SCHEMA: &str = "gyan.bench.scheduler/v1";

/// One recorded benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Schema identifier (see [`SCHEMA`]).
    pub schema: String,
    /// `git rev-parse --short` of the measured tree (or `"unknown"`).
    pub commit: String,
    /// Single-node `allocate_and_lease` + `release` round-trips per
    /// real second.
    pub decisions_per_sec: f64,
    /// Queue-wait p50 over a canonical virtual-clock drain (seconds).
    pub queue_wait_p50_s: f64,
    /// Queue-wait p99 over the same drain (seconds).
    pub queue_wait_p99_s: f64,
    /// Jobs pumped through the queue engine per real second.
    pub wave_dispatch_jobs_per_sec: f64,
    /// `JobsLedger::all()` snapshots per real second at canonical size.
    pub ledger_snapshots_per_sec: f64,
    /// Percent of allocation wall time attributed to named child scopes.
    pub profile_attributed_pct: f64,
}

/// The direction in which a metric is allowed to drift freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are improvements (throughput).
    HigherIsBetter,
    /// Smaller numbers are improvements (latency).
    LowerIsBetter,
}

/// One comparable metric: name, extractor, and good direction.
pub type MetricSpec = (&'static str, fn(&Trajectory) -> f64, Direction);

/// The comparable metrics, their extractors, and their good directions.
/// `profile_attributed_pct` is gated absolutely (≥ threshold), not
/// relatively, so it is not in this table.
pub fn metrics() -> Vec<MetricSpec> {
    vec![
        ("decisions_per_sec", |t: &Trajectory| t.decisions_per_sec, Direction::HigherIsBetter),
        ("queue_wait_p50_s", |t: &Trajectory| t.queue_wait_p50_s, Direction::LowerIsBetter),
        ("queue_wait_p99_s", |t: &Trajectory| t.queue_wait_p99_s, Direction::LowerIsBetter),
        (
            "wave_dispatch_jobs_per_sec",
            |t: &Trajectory| t.wave_dispatch_jobs_per_sec,
            Direction::HigherIsBetter,
        ),
        (
            "ledger_snapshots_per_sec",
            |t: &Trajectory| t.ledger_snapshots_per_sec,
            Direction::HigherIsBetter,
        ),
    ]
}

/// One metric's movement between two trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name.
    pub metric: &'static str,
    /// Previous run's value.
    pub prev: f64,
    /// This run's value.
    pub new: f64,
    /// Signed percent change relative to `prev` (`+` = number went up).
    pub pct_change: f64,
    /// Whether the move breaches the tolerance in the bad direction.
    pub regressed: bool,
}

fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

impl Trajectory {
    /// Render the trajectory as the `BENCH_scheduler.json` document.
    /// `profile_summary` is the profiler's JSON export (embedded verbatim
    /// under `"profile"`), or `None` for `{"scopes":[]}`-style tests.
    pub fn render_json(&self, profile_summary: Option<&str>) -> String {
        let profile = profile_summary.unwrap_or("{\"type\":\"profile\",\"scopes\":[]}");
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"commit\": \"{}\",\n  \
             \"decisions_per_sec\": {},\n  \"queue_wait_p50_s\": {},\n  \
             \"queue_wait_p99_s\": {},\n  \"wave_dispatch_jobs_per_sec\": {},\n  \
             \"ledger_snapshots_per_sec\": {},\n  \"profile_attributed_pct\": {},\n  \
             \"profile\": {}\n}}\n",
            obs::json_escape(&self.schema),
            obs::json_escape(&self.commit),
            fmt_json(self.decisions_per_sec),
            fmt_json(self.queue_wait_p50_s),
            fmt_json(self.queue_wait_p99_s),
            fmt_json(self.wave_dispatch_jobs_per_sec),
            fmt_json(self.ledger_snapshots_per_sec),
            fmt_json(self.profile_attributed_pct),
            profile.trim_end(),
        )
    }

    /// Parse a `BENCH_scheduler.json` document. Errors on malformed JSON,
    /// a missing field, or a schema mismatch.
    pub fn parse(text: &str) -> Result<Trajectory, String> {
        let doc = json::parse(text)?;
        let field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing field \"schema\"".to_string())?
            .to_string();
        if schema != SCHEMA {
            return Err(format!("schema mismatch: file has {schema:?}, expected {SCHEMA:?}"));
        }
        Ok(Trajectory {
            schema,
            commit: doc.get("commit").and_then(JsonValue::as_str).unwrap_or("unknown").to_string(),
            decisions_per_sec: field("decisions_per_sec")?,
            queue_wait_p50_s: field("queue_wait_p50_s")?,
            queue_wait_p99_s: field("queue_wait_p99_s")?,
            wave_dispatch_jobs_per_sec: field("wave_dispatch_jobs_per_sec")?,
            ledger_snapshots_per_sec: field("ledger_snapshots_per_sec")?,
            profile_attributed_pct: field("profile_attributed_pct")?,
        })
    }
}

fn fmt_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The delta rule every `BENCH_*` comparator shares: a metric regresses
/// when it moves in its bad direction by more than `tolerance_pct`
/// percent of the previous value *and* by a non-trivial absolute amount
/// (so a 0 → 1e-9 wobble on an idle metric never fails a gate).
pub fn delta(
    metric: &'static str,
    prev: f64,
    new: f64,
    direction: Direction,
    tolerance_pct: f64,
) -> Delta {
    let pct_change = if prev.abs() > f64::EPSILON { 100.0 * (new - prev) / prev } else { 0.0 };
    let bad_move = match direction {
        Direction::HigherIsBetter => -pct_change,
        Direction::LowerIsBetter => pct_change,
    };
    let regressed = bad_move > tolerance_pct && (new - prev).abs() > 1e-6;
    Delta { metric, prev, new, pct_change, regressed }
}

/// Compare a new run against the previous trajectory (see [`delta`] for
/// the regression rule).
pub fn compare(prev: &Trajectory, new: &Trajectory, tolerance_pct: f64) -> Vec<Delta> {
    metrics()
        .into_iter()
        .map(|(metric, get, direction)| {
            delta(metric, get(prev), get(new), direction, tolerance_pct)
        })
        .collect()
}

/// One-line human summary of a comparison, e.g.
/// `decisions_per_sec 1234 (+3.1%) · queue_wait_p99_s 0.50 (-2.0%) · ...`.
pub fn summary_line(deltas: &[Delta]) -> String {
    deltas
        .iter()
        .map(|d| {
            let flag = if d.regressed { " REGRESSED" } else { "" };
            format!("{} {} ({:+.1}%{})", d.metric, fmt(d.new), d.pct_change, flag)
        })
        .collect::<Vec<_>>()
        .join(" · ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory() -> Trajectory {
        Trajectory {
            schema: SCHEMA.to_string(),
            commit: "abc123def456".to_string(),
            decisions_per_sec: 50_000.0,
            queue_wait_p50_s: 16.0,
            queue_wait_p99_s: 31.0,
            wave_dispatch_jobs_per_sec: 4_000.0,
            ledger_snapshots_per_sec: 200_000.0,
            profile_attributed_pct: 97.5,
        }
    }

    #[test]
    fn render_parse_roundtrip_preserves_every_metric() {
        let t = trajectory();
        let text = t.render_json(Some("{\"type\":\"profile\",\"scopes\":[]}"));
        let parsed = Trajectory::parse(&text).expect("roundtrip parses");
        assert_eq!(parsed, t);
        // The embedded profile object stays a well-formed member.
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("profile").and_then(|p| p.get("type")).and_then(JsonValue::as_str),
            Some("profile")
        );
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = trajectory().render_json(None).replace(SCHEMA, "gyan.bench.scheduler/v0");
        let err = Trajectory::parse(&text).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn unchanged_run_passes_the_gate() {
        let t = trajectory();
        let deltas = compare(&t, &t, 10.0);
        assert!(deltas.iter().all(|d| !d.regressed));
        assert_eq!(deltas.len(), metrics().len());
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        // The acceptance scenario: feed the comparator a prior file whose
        // numbers were better than today's on every axis.
        let prev = trajectory();
        let mut new = trajectory();
        new.decisions_per_sec = prev.decisions_per_sec * 0.5; // throughput halved
        new.queue_wait_p99_s = prev.queue_wait_p99_s * 2.0; // tail doubled
        let deltas = compare(&prev, &new, 25.0);
        let regressed: Vec<&str> =
            deltas.iter().filter(|d| d.regressed).map(|d| d.metric).collect();
        assert_eq!(regressed, vec!["decisions_per_sec", "queue_wait_p99_s"]);
    }

    #[test]
    fn improvements_never_regress() {
        let prev = trajectory();
        let mut new = trajectory();
        new.decisions_per_sec *= 10.0; // higher is better
        new.queue_wait_p50_s /= 10.0; // lower is better
        assert!(compare(&prev, &new, 5.0).iter().all(|d| !d.regressed));
    }

    #[test]
    fn tolerance_absorbs_noise() {
        let prev = trajectory();
        let mut new = trajectory();
        new.decisions_per_sec *= 0.8; // -20%, inside a 40% tolerance
        assert!(compare(&prev, &new, 40.0).iter().all(|d| !d.regressed));
        assert!(compare(&prev, &new, 10.0).iter().any(|d| d.regressed));
    }

    #[test]
    fn zero_baseline_never_divides_or_regresses() {
        let mut prev = trajectory();
        prev.queue_wait_p50_s = 0.0;
        let mut new = trajectory();
        new.queue_wait_p50_s = 1e-9;
        let deltas = compare(&prev, &new, 10.0);
        let d = deltas.iter().find(|d| d.metric == "queue_wait_p50_s").unwrap();
        assert!(!d.regressed);
        assert!(d.pct_change.is_finite());
    }

    #[test]
    fn summary_line_flags_regressions() {
        let prev = trajectory();
        let mut new = trajectory();
        new.wave_dispatch_jobs_per_sec *= 0.1;
        let line = summary_line(&compare(&prev, &new, 20.0));
        assert!(line.contains("wave_dispatch_jobs_per_sec 400 (-90.0% REGRESSED)"), "{line}");
        assert!(line.contains("decisions_per_sec 50000 (+0.0%)"), "{line}");
    }
}
