//! A fully wired GYAN testbed: the simulated K80 node, a Galaxy app with
//! the GYAN rule/hook/mutators installed, the tool executor, and the
//! canonical Racon/Bonito tool wrappers.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::runners::container_cmd::VolumeBind;
use galaxy::tool::macros::MacroLibrary;
use galaxy::{GalaxyApp, GalaxyError};
use gpusim::GpuCluster;
use gyan::allocation::AllocationPolicy;
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::ToolExecutor;
use std::sync::Arc;

/// The Racon wrapper in the shape of the paper's Code 3, parameterized by
/// an optional pinned GPU id (`<requirement type="compute" version=...>`).
pub fn racon_tool_xml(id: &str, pinned_gpu: Option<&str>) -> String {
    let version = pinned_gpu.map(|v| format!(" version=\"{v}\"")).unwrap_or_default();
    format!(
        r#"<tool id="{id}" name="Racon" version="1.4.3">
  <description>Consensus module for raw de novo DNA assembly</description>
  <requirements>
    <requirement type="package" version="1.4.3">racon</requirement>
    <requirement type="compute"{version}>gpu</requirement>
    <container type="docker">gulsumgudukbay/racon_dockerfile</container>
  </requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
racon_gpu -t $threads --cudapoa-batches $batches $banding $dataset > $consensus
#else
racon -t $threads $dataset > $consensus
#end if
]]></command>
  <inputs>
    <param name="dataset" type="data" value="Alzheimers_NFL_IsoSeq"/>
    <param name="threads" type="integer" value="4"/>
    <param name="batches" type="integer" value="1"/>
    <param name="banding" type="text" value=""/>
    <param name="consensus" type="text" value="consensus.fa"/>
  </inputs>
  <outputs><data name="consensus_out" format="fasta"/></outputs>
  <tests>
    <test>
      <param name="dataset" value="bench_tiny_racon"/>
      <param name="threads" value="2"/>
      <output name="consensus_out">
        <assert_contents>
          <has_text text="&gt;consensus"/>
          <has_n_lines min="2"/>
        </assert_contents>
      </output>
    </test>
  </tests>
</tool>"#
    )
}

/// The Bonito wrapper, parameterized by a pinned GPU id.
pub fn bonito_tool_xml(id: &str, pinned_gpu: Option<&str>) -> String {
    let version = pinned_gpu.map(|v| format!(" version=\"{v}\"")).unwrap_or_default();
    format!(
        r#"<tool id="{id}" name="Bonito" version="0.3.2">
  <description>A PyTorch basecaller for Oxford Nanopore reads</description>
  <requirements>
    <requirement type="package" version="0.3.2">bonito</requirement>
    <requirement type="compute"{version}>gpu</requirement>
    <container type="docker">nanoporetech/bonito</container>
  </requirements>
  <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
bonito basecaller $model $dataset > $output
#else
bonito basecaller --device=cpu $model $dataset > $output
#end if
]]></command>
  <inputs>
    <param name="dataset" type="data" value="Acinetobacter_pittii"/>
    <param name="model" type="text" value="dna_r9.4.1"/>
    <param name="output" type="text" value="basecalls.fasta"/>
  </inputs>
  <outputs><data name="basecalls" format="fasta"/></outputs>
</tool>"#
    )
}

/// A complete, GYAN-enabled Galaxy deployment over a simulated GPU node.
pub struct Testbed {
    /// The simulated node.
    pub cluster: GpuCluster,
    /// The Galaxy application with GYAN installed.
    pub app: GalaxyApp,
    /// Handle to the tool executor (profilers, lingering processes).
    pub executor: Arc<ToolExecutor>,
}

impl Testbed {
    /// Build a testbed over a 2× K80 node with the default (bare-metal)
    /// GYAN configuration and the Racon/Bonito tools installed.
    pub fn k80() -> Self {
        Self::with(GpuCluster::k80_node(), GyanConfig::default(), false)
    }

    /// Testbed routing GPU jobs to the Docker destination.
    pub fn k80_docker() -> Self {
        Self::with(GpuCluster::k80_node(), GyanConfig::containerized(), false)
    }

    /// Testbed with lingering GPU processes (multi-GPU case studies) and
    /// the given allocation policy.
    pub fn k80_linger(policy: AllocationPolicy) -> Self {
        let config = GyanConfig { policy, ..GyanConfig::default() };
        Self::with(GpuCluster::k80_node(), config, true)
    }

    /// Testbed without any GPUs.
    pub fn cpu_only() -> Self {
        Self::with(GpuCluster::cpu_only_node(), GyanConfig::default(), false)
    }

    fn with(cluster: GpuCluster, config: GyanConfig, linger: bool) -> Self {
        let mut app =
            GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).expect("canonical job_conf parses"));
        app.set_registry(galaxy::containers::ImageRegistry::with_paper_images());
        app.add_volume(VolumeBind::rw("/galaxy/data"));
        let mut executor = ToolExecutor::new(&cluster);
        if linger {
            executor = executor.with_linger();
        }
        let executor = Arc::new(executor);
        app.set_executor(Box::new(executor.clone()));
        install_gyan(&mut app, &cluster, config);

        let lib = MacroLibrary::new();
        app.install_tool_xml(&racon_tool_xml("racon_gpu", None), &lib)
            .expect("racon wrapper parses");
        app.install_tool_xml(&bonito_tool_xml("bonito", None), &lib)
            .expect("bonito wrapper parses");
        Testbed { cluster, app, executor }
    }

    /// Install an extra tool (e.g. a device-pinned variant).
    pub fn install_tool(&mut self, xml: &str) -> Result<(), GalaxyError> {
        self.app.install_tool_xml(xml, &MacroLibrary::new()).map(|_| ())
    }

    /// Submit a Racon job with the given parameters; returns the job id.
    pub fn submit_racon(
        &mut self,
        threads: u32,
        batches: u32,
        banded: bool,
        dataset: &str,
    ) -> Result<u64, GalaxyError> {
        let mut params = ParamDict::new();
        params.set("threads", threads.to_string());
        params.set("batches", batches.to_string());
        params.set("banding", if banded { "--cudapoa-banded" } else { "" });
        params.set("dataset", dataset);
        self.app.submit("racon_gpu", &params)
    }

    /// Submit a Bonito job on the named dataset.
    pub fn submit_bonito(&mut self, dataset: &str) -> Result<u64, GalaxyError> {
        let mut params = ParamDict::new();
        params.set("dataset", dataset);
        self.app.submit("bonito", &params)
    }

    /// The runtime of a finished job, virtual seconds.
    pub fn runtime(&self, job_id: u64) -> f64 {
        self.app.job(job_id).and_then(|j| j.runtime()).unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_runs_gpu_racon_end_to_end() {
        let mut tb = Testbed::k80();
        tb.executor.register_dataset(tiny_racon());
        let id = tb.submit_racon(4, 1, false, "bench_tiny_racon").unwrap();
        let job = tb.app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("local_gpu"));
        assert_eq!(job.env_var("GALAXY_GPU_ENABLED"), Some("true"));
        assert!(tb.runtime(id) > 0.0);
        assert!(job.stdout.starts_with(">consensus"));
    }

    #[test]
    fn testbed_cpu_fallback() {
        let mut tb = Testbed::cpu_only();
        tb.executor.register_dataset(tiny_racon());
        let id = tb.submit_racon(4, 1, false, "bench_tiny_racon").unwrap();
        let job = tb.app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("local_cpu"));
        assert!(job.command_line.as_deref().unwrap().starts_with("racon "));
    }

    #[test]
    fn docker_testbed_wraps_with_gpus_flag() {
        let mut tb = Testbed::k80_docker();
        tb.executor.register_dataset(tiny_racon());
        let id = tb.submit_racon(2, 4, true, "bench_tiny_racon").unwrap();
        let job = tb.app.job(id).unwrap();
        assert_eq!(job.destination_id.as_deref(), Some("docker_gpu"));
        // The events log captured the mutated docker command.
        let launched = tb
            .app
            .events()
            .iter()
            .find(|e| e.message.contains("docker run"))
            .expect("docker launch logged");
        assert!(launched.message.contains("--gpus all"), "{}", launched.message);
        assert!(launched.message.contains("--cudapoa-banded"));
    }

    #[test]
    fn embedded_tool_tests_pass_planemo_style() {
        // The wrapper ships its own <tests> section; run it the way
        // `planemo test` would against a live GYAN deployment.
        let mut tb = Testbed::k80();
        tb.executor.register_dataset(tiny_racon());
        let results = tb.app.run_tool_tests("racon_gpu").unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].passed(), "{:?}", results[0].failures);
    }

    fn tiny_racon() -> seqtools::DatasetSpec {
        seqtools::DatasetSpec {
            name: "bench_tiny_racon",
            genome_len: 2_000,
            n_reads: 16,
            read_len: 1_500,
            ..seqtools::DatasetSpec::alzheimers_nfl()
        }
    }
}
