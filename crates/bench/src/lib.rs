//! Shared harness for the figure-regeneration binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the experiment index); this
//! library provides the common pieces: a fully wired GYAN testbed
//! ([`testbed`]), ASCII table rendering ([`table`]), and the paper's
//! reference numbers ([`paper`]) so each binary can print
//! paper-vs-measured rows.

pub mod ablation;
pub mod loadtest;
pub mod paper;
pub mod perf;
pub mod placement;
pub mod table;
pub mod testbed;

pub use testbed::Testbed;
