//! SLO alert engine: windowed rules over the metrics registry, evaluated
//! on the recorder's (virtual) clock, with Prometheus-style
//! `pending → firing → resolved` state transitions.
//!
//! Every transition is emitted as an [`ALERT_EVENT`] audit event (routed
//! to the `obs/alerts` Chrome-trace track by `gyan::telemetry`) and
//! counted under [`ALERT_TRANSITIONS_COUNTER`] in the same registry the
//! rules read — the alert plane monitors itself. When a rule fires and
//! the flight recorder is enabled, the engine captures a
//! [`crate::flight::FlightSnapshot`] so the moments leading up to the
//! alert are preserved for post-mortem.
//!
//! Evaluation is explicitly driven ([`AlertEngine::evaluate`]): under a
//! virtual clock there is no background time to poll on, so the harness
//! (wave barrier, ops loop, example driver) decides the cadence.

use crate::flight::FlightSnapshot;
use crate::{json_escape, Recorder, Value};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Counter family (labeled by rule and target state) counting alert
/// transitions.
pub const ALERT_TRANSITIONS_COUNTER: &str = "obs_alert_transitions_total";
/// Gauge: number of rules currently firing.
pub const ALERTS_FIRING_GAUGE: &str = "obs_alerts_firing";
/// Audit event emitted on every state transition.
pub const ALERT_EVENT: &str = "obs.alert.transition";
/// Most recent per-rule flight dumps retained by the engine.
const MAX_FLIGHT_DUMPS: usize = 8;

/// What a rule measures each evaluation.
#[derive(Clone)]
pub enum AlertExpr {
    /// Current value of a gauge (`None` while unset — rule stays quiet).
    Gauge(String),
    /// Per-second increase of a counter over a sliding window, computed
    /// from the engine's own evaluation-time samples.
    CounterRate {
        /// Counter name (inline labels included, if any).
        name: String,
        /// Sliding-window width in clock seconds.
        window_s: f64,
    },
    /// Interpolated histogram quantile ([`crate::metrics::Registry::histogram_quantile`]).
    HistogramQuantile {
        /// Histogram name.
        name: String,
        /// Quantile in `[0, 1]`.
        q: f64,
    },
    /// Arbitrary probe — lets rules watch state outside the registry
    /// (e.g. a lease table) without coupling obs to it.
    Custom(Arc<dyn Fn() -> Option<f64> + Send + Sync>),
}

impl fmt::Debug for AlertExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertExpr::Gauge(name) => write!(f, "Gauge({name})"),
            AlertExpr::CounterRate { name, window_s } => {
                write!(f, "CounterRate({name}, {window_s}s)")
            }
            AlertExpr::HistogramQuantile { name, q } => {
                write!(f, "HistogramQuantile({name}, q={q})")
            }
            AlertExpr::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// Threshold comparison direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compare {
    /// Breach when the value exceeds the threshold.
    Gt,
    /// Breach when the value falls below the threshold.
    Lt,
}

/// One alert rule: an expression, a threshold, and an optional hold
/// (`for_s`) the breach must sustain before the rule fires.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Stable rule name (label value on the transition counter).
    pub name: String,
    /// What to measure.
    pub expr: AlertExpr,
    /// Comparison direction.
    pub cmp: Compare,
    /// Threshold the expression is compared against.
    pub threshold: f64,
    /// Seconds a breach must persist before `pending` becomes `firing`
    /// (0 fires immediately).
    pub for_s: f64,
}

impl AlertRule {
    /// A rule that fires immediately on breach.
    pub fn new(name: impl Into<String>, expr: AlertExpr, cmp: Compare, threshold: f64) -> Self {
        AlertRule { name: name.into(), expr, cmp, threshold, for_s: 0.0 }
    }

    /// Require the breach to hold for `secs` before firing.
    pub fn hold_for(mut self, secs: f64) -> Self {
        self.for_s = secs.max(0.0);
        self
    }
}

/// Rule lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Not breaching.
    Inactive,
    /// Breaching, but the `for_s` hold has not elapsed yet.
    Pending,
    /// Breaching past the hold — the alert is live.
    Firing,
}

impl AlertState {
    /// Lower-case state name as used in events and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// One state transition observed during an evaluation.
#[derive(Debug, Clone)]
pub struct AlertTransition {
    /// Rule name.
    pub rule: String,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Transition kind: `pending`, `firing`, `resolved` (firing →
    /// inactive), or `cancelled` (pending → inactive).
    pub kind: &'static str,
    /// Evaluation time.
    pub at: f64,
    /// Expression value at the transition (`None` when unevaluable).
    pub value: Option<f64>,
}

/// Point-in-time view of one rule.
#[derive(Debug, Clone)]
pub struct AlertStatus {
    /// The rule (expression, threshold, hold).
    pub rule: AlertRule,
    /// Current state.
    pub state: AlertState,
    /// Last evaluated value.
    pub value: Option<f64>,
    /// When the current state was entered.
    pub since: f64,
    /// Times this rule has fired over its lifetime.
    pub fired: u64,
}

/// A flight-recorder dump captured when a rule fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Rule that fired.
    pub rule: String,
    /// Firing time.
    pub at: f64,
    /// The captured snapshot.
    pub snapshot: FlightSnapshot,
}

struct RuleState {
    rule: AlertRule,
    state: AlertState,
    since: f64,
    pending_since: f64,
    last_value: Option<f64>,
    fired: u64,
    /// (t, counter value) samples for `CounterRate`, pruned to window.
    samples: Vec<(f64, u64)>,
}

struct EngineInner {
    rules: Vec<RuleState>,
    dumps: Vec<FlightDump>,
}

/// The alert engine; clone freely — clones share rule state.
#[derive(Clone)]
pub struct AlertEngine {
    recorder: Recorder,
    inner: Arc<Mutex<EngineInner>>,
}

impl AlertEngine {
    /// An engine reading metrics, clock, and flight state from
    /// `recorder`.
    pub fn new(recorder: &Recorder) -> Self {
        AlertEngine {
            recorder: recorder.clone(),
            inner: Arc::new(Mutex::new(EngineInner { rules: Vec::new(), dumps: Vec::new() })),
        }
    }

    /// Register a rule (evaluated in registration order).
    pub fn add_rule(&self, rule: AlertRule) {
        let since = self.recorder.now();
        self.lock().rules.push(RuleState {
            rule,
            state: AlertState::Inactive,
            since,
            pending_since: since,
            last_value: None,
            fired: 0,
            samples: Vec::new(),
        });
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EngineInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Evaluate every rule at the recorder's current clock time,
    /// returning the transitions that occurred. Emits audit events and
    /// registry metrics for each transition and captures a flight dump
    /// for each newly-firing rule.
    pub fn evaluate(&self) -> Vec<AlertTransition> {
        let now = self.recorder.now();
        let metrics = self.recorder.metrics();
        let mut transitions = Vec::new();
        let mut firing = 0usize;
        {
            let mut inner = self.lock();
            for rs in &mut inner.rules {
                let value = match &rs.rule.expr {
                    AlertExpr::Gauge(name) => metrics.gauge_value(name),
                    AlertExpr::HistogramQuantile { name, q } => {
                        metrics.histogram_quantile(name, *q)
                    }
                    AlertExpr::Custom(f) => f(),
                    AlertExpr::CounterRate { name, window_s } => {
                        let current = metrics.counter_value(name);
                        rs.samples.push((now, current));
                        rs.samples.retain(|(t, _)| now - *t <= *window_s);
                        rs.samples
                            .first()
                            .filter(|(t0, _)| now - *t0 > 0.0)
                            .map(|(t0, v0)| current.saturating_sub(*v0) as f64 / (now - t0))
                    }
                };
                rs.last_value = value;
                let breached = match (value, rs.rule.cmp) {
                    (Some(v), Compare::Gt) => v > rs.rule.threshold,
                    (Some(v), Compare::Lt) => v < rs.rule.threshold,
                    (None, _) => false,
                };
                let next = match (rs.state, breached) {
                    (AlertState::Inactive, true) => {
                        if rs.rule.for_s > 0.0 {
                            AlertState::Pending
                        } else {
                            AlertState::Firing
                        }
                    }
                    (AlertState::Pending, true) => {
                        if now - rs.pending_since >= rs.rule.for_s {
                            AlertState::Firing
                        } else {
                            AlertState::Pending
                        }
                    }
                    (AlertState::Firing, true) => AlertState::Firing,
                    (_, false) => AlertState::Inactive,
                };
                if next != rs.state {
                    let kind = match (rs.state, next) {
                        (_, AlertState::Pending) => "pending",
                        (_, AlertState::Firing) => "firing",
                        (AlertState::Firing, _) => "resolved",
                        _ => "cancelled",
                    };
                    if next == AlertState::Pending {
                        rs.pending_since = now;
                    }
                    if next == AlertState::Firing {
                        rs.fired += 1;
                    }
                    transitions.push(AlertTransition {
                        rule: rs.rule.name.clone(),
                        from: rs.state,
                        to: next,
                        kind,
                        at: now,
                        value,
                    });
                    rs.state = next;
                    rs.since = now;
                }
                if rs.state == AlertState::Firing {
                    firing += 1;
                }
            }
        }
        // Locks released: the recorder's metrics/log/flight locks are
        // only taken with the engine lock dropped.
        metrics.set_gauge(ALERTS_FIRING_GAUGE, firing as f64);
        for tr in &transitions {
            metrics.inc_counter(
                &format!(
                    "{ALERT_TRANSITIONS_COUNTER}{{rule=\"{}\",to=\"{}\"}}",
                    tr.rule,
                    tr.to.as_str()
                ),
                1,
            );
            let mut fields: Vec<(&str, Value)> = vec![
                ("rule", Value::from(tr.rule.as_str())),
                ("from", Value::from(tr.from.as_str())),
                ("to", Value::from(tr.to.as_str())),
                ("kind", Value::from(tr.kind)),
            ];
            if let Some(v) = tr.value {
                fields.push(("value", Value::from(v)));
            }
            self.recorder.event(ALERT_EVENT, fields);
            if tr.to == AlertState::Firing {
                if let Some(snapshot) = self.recorder.flight_snapshot() {
                    let mut inner = self.lock();
                    if inner.dumps.len() == MAX_FLIGHT_DUMPS {
                        inner.dumps.remove(0);
                    }
                    inner.dumps.push(FlightDump { rule: tr.rule.clone(), at: tr.at, snapshot });
                }
            }
        }
        transitions
    }

    /// Current status of every rule, in registration order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.lock()
            .rules
            .iter()
            .map(|rs| AlertStatus {
                rule: rs.rule.clone(),
                state: rs.state,
                value: rs.last_value,
                since: rs.since,
                fired: rs.fired,
            })
            .collect()
    }

    /// Names of rules currently firing.
    pub fn firing(&self) -> Vec<String> {
        self.lock()
            .rules
            .iter()
            .filter(|rs| rs.state == AlertState::Firing)
            .map(|rs| rs.rule.name.clone())
            .collect()
    }

    /// Flight dumps captured at firing transitions (oldest first, last
    /// `MAX_FLIGHT_DUMPS` retained).
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        self.lock().dumps.clone()
    }

    /// JSON document for `GET /api/alerts`.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .statuses()
            .iter()
            .map(|s| {
                format!(
                    "{{\"rule\":\"{}\",\"state\":\"{}\",\"value\":{},\"threshold\":{},\"since\":{},\"fired\":{}}}",
                    json_escape(&s.rule.name),
                    s.state.as_str(),
                    s.value.map_or("null".to_string(), crate::format_f64),
                    crate::format_f64(s.rule.threshold),
                    crate::format_f64(s.since),
                    s.fired,
                )
            })
            .collect();
        format!("{{\"alerts\":[{}]}}", body.join(","))
    }

    /// One-line-per-rule human summary (for example programs).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in self.statuses() {
            let value = s.value.map_or("-".to_string(), |v| format!("{v:.3}"));
            out.push_str(&format!(
                "{:<24} {:<8} value={value} threshold={} fired={}\n",
                s.rule.name,
                s.state.as_str(),
                s.rule.threshold,
                s.fired
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn stepped() -> (Recorder, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(0));
        let c = cell.clone();
        let rec = Recorder::with_clock(move || c.load(Ordering::SeqCst) as f64);
        (rec, cell)
    }

    #[test]
    fn gauge_rule_walks_pending_firing_resolved() {
        let (rec, clock) = stepped();
        let engine = AlertEngine::new(&rec);
        engine.add_rule(
            AlertRule::new("depth", AlertExpr::Gauge("depth".into()), Compare::Gt, 5.0)
                .hold_for(2.0),
        );

        // Unset gauge: no evaluation, no transition.
        assert!(engine.evaluate().is_empty());

        rec.metrics().set_gauge("depth", 10.0);
        let tr = engine.evaluate();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].kind, "pending");

        // Hold not yet elapsed.
        clock.store(1, Ordering::SeqCst);
        assert!(engine.evaluate().is_empty());

        clock.store(2, Ordering::SeqCst);
        let tr = engine.evaluate();
        assert_eq!(tr[0].kind, "firing");
        assert_eq!(engine.firing(), vec!["depth".to_string()]);

        rec.metrics().set_gauge("depth", 0.0);
        clock.store(3, Ordering::SeqCst);
        let tr = engine.evaluate();
        assert_eq!(tr[0].kind, "resolved");
        assert!(engine.firing().is_empty());

        // Metrics + audit trail recorded every transition.
        let m = rec.metrics();
        assert_eq!(m.counter_value("obs_alert_transitions_total{rule=\"depth\",to=\"firing\"}"), 1);
        assert_eq!(m.gauge_value(ALERTS_FIRING_GAUGE), Some(0.0));
        assert_eq!(rec.events_named(ALERT_EVENT).len(), 3);
        let fired = engine.statuses().remove(0);
        assert_eq!(fired.fired, 1);
    }

    #[test]
    fn pending_breach_that_clears_is_cancelled() {
        let (rec, clock) = stepped();
        let engine = AlertEngine::new(&rec);
        engine.add_rule(
            AlertRule::new("blip", AlertExpr::Gauge("g".into()), Compare::Gt, 1.0).hold_for(10.0),
        );
        rec.metrics().set_gauge("g", 5.0);
        assert_eq!(engine.evaluate()[0].kind, "pending");
        rec.metrics().set_gauge("g", 0.0);
        clock.store(1, Ordering::SeqCst);
        assert_eq!(engine.evaluate()[0].kind, "cancelled");
    }

    #[test]
    fn counter_rate_uses_a_sliding_window() {
        let (rec, clock) = stepped();
        let engine = AlertEngine::new(&rec);
        engine.add_rule(AlertRule::new(
            "burn",
            AlertExpr::CounterRate { name: "errs".into(), window_s: 10.0 },
            Compare::Gt,
            0.5,
        ));

        // First sample: no window yet, rule stays quiet.
        assert!(engine.evaluate().is_empty());
        // 2 errors/second for 3 seconds.
        for t in 1..=3u64 {
            rec.metrics().inc_counter("errs", 2);
            clock.store(t, Ordering::SeqCst);
            engine.evaluate();
        }
        assert_eq!(engine.firing(), vec!["burn".to_string()]);
        let status = engine.statuses().remove(0);
        assert!(status.value.unwrap() > 1.9, "{status:?}");

        // Counter stops moving; once the active samples age out of the
        // window the rate returns to 0 and the alert resolves.
        for t in 4..=20u64 {
            clock.store(t, Ordering::SeqCst);
            engine.evaluate();
        }
        assert!(engine.firing().is_empty());
        let status = engine.statuses().remove(0);
        assert_eq!(status.value, Some(0.0));
    }

    #[test]
    fn firing_captures_a_flight_dump_when_enabled() {
        let (rec, clock) = stepped();
        rec.enable_flight(32);
        rec.event("before_the_fire", [("n", 1u64)]);
        let engine = AlertEngine::new(&rec);
        engine.add_rule(AlertRule::new("hot", AlertExpr::Gauge("t".into()), Compare::Gt, 0.0));
        rec.metrics().set_gauge("t", 1.0);
        clock.store(5, Ordering::SeqCst);
        engine.evaluate();

        let dumps = engine.flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].rule, "hot");
        assert_eq!(dumps[0].at, 5.0);
        assert!(dumps[0].snapshot.records.iter().any(|r| r.name() == "before_the_fire"));
    }

    #[test]
    fn to_json_lists_every_rule() {
        let (rec, _clock) = stepped();
        let engine = AlertEngine::new(&rec);
        engine.add_rule(AlertRule::new("a", AlertExpr::Gauge("g".into()), Compare::Lt, 2.0));
        let doc = crate::json::parse(&engine.to_json()).expect("alerts JSON parses");
        let alerts = doc.get("alerts").and_then(|v| v.as_array()).unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].get("state").and_then(|v| v.as_str()), Some("inactive"));
        assert_eq!(alerts[0].get("value").map(|v| v.is_null()), Some(true));
    }
}
