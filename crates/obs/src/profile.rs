//! Hierarchical hot-path profiler.
//!
//! Where the [`crate::Recorder`] keeps *every* span for audit and trace
//! export, the profiler keeps *aggregates*: per-scope call counts,
//! total/self wall time, and min/max, keyed by the collapsed call stack
//! (`"alloc.decision;gyan.allocate;alloc.observe"`). That makes it cheap
//! enough to instrument code that runs hundreds of thousands of times —
//! the allocation hot path — where recording one span per call would
//! swamp the measurement.
//!
//! Usage: drop a [`crate::profile_scope!`] at the top of each stage. The macro
//! hits the process-wide [`global`] profiler, which starts **disabled** —
//! one relaxed atomic load per call site — so instrumented code pays
//! nothing until a benchmark, test, or the live ops plane turns it on.
//!
//! ```
//! obs::profile_scope!("my.stage");          // guard ends at scope exit
//! ```
//!
//! Two exports:
//!
//! * [`Profiler::collapsed`] — inferno-compatible collapsed-stack text
//!   (`path self_time_us` per line), ready for `flamegraph.pl` /
//!   `inferno-flamegraph`;
//! * [`Profiler::summary_json`] — a JSON summary served by the ops
//!   plane's `/api/profile` and embedded in `BENCH_scheduler.json`.
//!
//! Clock: by default the profiler reads the **real** monotonic clock
//! ([`std::time::Instant`]) because its job is measuring actual CPU cost;
//! [`Profiler::set_clock`] injects a virtual clock for deterministic
//! tests, and [`Profiler::sync_clock`] borrows a [`crate::Recorder`]'s
//! clock so profile timings line up with recorded telemetry.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Aggregated statistics for one collapsed-stack scope path.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeStats {
    /// Times the scope was entered.
    pub count: u64,
    /// Total seconds spent inside the scope (including children).
    pub total_s: f64,
    /// Seconds spent in the scope itself, excluding profiled children.
    pub self_s: f64,
    /// Shortest single call (seconds, including children).
    pub min_s: f64,
    /// Longest single call (seconds, including children).
    pub max_s: f64,
}

impl ScopeStats {
    fn record(&mut self, elapsed: f64, self_time: f64) {
        self.count += 1;
        self.total_s += elapsed;
        self.self_s += self_time;
        self.min_s = if self.count == 1 { elapsed } else { self.min_s.min(elapsed) };
        self.max_s = self.max_s.max(elapsed);
    }
}

/// One exported scope: its collapsed path plus aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeEntry {
    /// Collapsed call-stack path, frames joined by `;` (leaf last).
    pub path: String,
    /// Aggregated statistics.
    pub stats: ScopeStats,
}

impl ScopeEntry {
    /// The leaf frame name (last `;`-separated segment).
    pub fn name(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }

    /// Nesting depth (0 for a root scope).
    pub fn depth(&self) -> usize {
        self.path.matches(';').count()
    }
}

type ClockFn = dyn Fn() -> f64 + Send + Sync;

struct ProfilerInner {
    enabled: AtomicBool,
    scopes: Mutex<BTreeMap<String, ScopeStats>>,
    clock: Mutex<Arc<ClockFn>>,
}

/// Thread-safe aggregating profiler; clone freely — clones share one
/// registry, one clock, one enabled flag.
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<ProfilerInner>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread stack of open profile frames: (collapsed path, seconds
    /// attributed to profiled children so far). Scope nesting is a
    /// per-thread property, so pool workers each build their own stacks.
    static FRAMES: RefCell<Vec<(String, f64)>> = const { RefCell::new(Vec::new()) };
}

fn real_clock() -> Arc<ClockFn> {
    let base = Instant::now();
    Arc::new(move || base.elapsed().as_secs_f64())
}

impl Profiler {
    /// A disabled profiler on the real monotonic clock.
    pub fn new() -> Self {
        Profiler {
            inner: Arc::new(ProfilerInner {
                enabled: AtomicBool::new(false),
                scopes: Mutex::new(BTreeMap::new()),
                clock: Mutex::new(real_clock()),
            }),
        }
    }

    /// Start aggregating (idempotent).
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop aggregating; already-aggregated stats are kept. Scopes still
    /// open finish recording (their guards hold real start times).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether scopes are currently being aggregated.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Replace the timestamp source (e.g. a virtual clock for
    /// deterministic tests).
    pub fn set_clock(&self, clock: impl Fn() -> f64 + Send + Sync + 'static) {
        *self.inner.clock.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(clock);
    }

    /// Back to the real monotonic clock (the default).
    pub fn enable_real_clock(&self) {
        *self.inner.clock.lock().unwrap_or_else(|e| e.into_inner()) = real_clock();
    }

    /// Read timestamps from `recorder`'s clock, so profile timings share
    /// the recorded telemetry's (possibly virtual) timeline.
    pub fn sync_clock(&self, recorder: &crate::Recorder) {
        let recorder = recorder.clone();
        self.set_clock(move || recorder.now());
    }

    fn now(&self) -> f64 {
        let clock = self.inner.clock.lock().unwrap_or_else(|e| e.into_inner()).clone();
        clock()
    }

    /// Enter a profiled scope: pushes a frame on this thread's stack and
    /// returns a guard that records on drop. Returns `None` (for ~one
    /// atomic load) while disabled — the whole cost of dormant
    /// instrumentation.
    pub fn scope(&self, name: &str) -> Option<ScopeGuard> {
        if !self.is_enabled() {
            return None;
        }
        let path = FRAMES.with(|frames| {
            let mut frames = frames.borrow_mut();
            let path = match frames.last() {
                Some((parent, _)) => format!("{parent};{name}"),
                None => name.to_string(),
            };
            frames.push((path.clone(), 0.0));
            path
        });
        Some(ScopeGuard { profiler: self.clone(), path, start: self.now() })
    }

    fn record(&self, path: &str, elapsed: f64) {
        // Pop this frame, charge the elapsed time to the parent frame's
        // child accumulator, and fold the aggregates into the registry.
        let child_time = FRAMES.with(|frames| {
            let mut frames = frames.borrow_mut();
            // Guards drop LIFO (they are scope-bound), so the top frame is
            // ours; tolerate a mismatched pop rather than panicking inside
            // a Drop impl.
            let child_time = match frames.pop() {
                Some((top, child_time)) if top == path => child_time,
                _ => 0.0,
            };
            if let Some((_, parent_children)) = frames.last_mut() {
                *parent_children += elapsed;
            }
            child_time
        });
        let self_time = (elapsed - child_time).max(0.0);
        let mut scopes = self.inner.scopes.lock().unwrap_or_else(|e| e.into_inner());
        scopes
            .entry(path.to_string())
            .or_insert(ScopeStats { count: 0, total_s: 0.0, self_s: 0.0, min_s: 0.0, max_s: 0.0 })
            .record(elapsed, self_time);
    }

    /// Drop all aggregated scopes (the enabled flag and clock are kept).
    pub fn reset(&self) {
        self.inner.scopes.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Snapshot every aggregated scope, sorted by collapsed path.
    pub fn snapshot(&self) -> Vec<ScopeEntry> {
        self.inner
            .scopes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(path, stats)| ScopeEntry { path: path.clone(), stats: stats.clone() })
            .collect()
    }

    /// Inferno-compatible collapsed-stack text: one `path self_time_us`
    /// line per scope (self time in integer microseconds, the "sample
    /// count" a flamegraph renders). Feed it straight to
    /// `inferno-flamegraph` / `flamegraph.pl`.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for entry in self.snapshot() {
            let us = (entry.stats.self_s * 1e6).round() as u64;
            out.push_str(&format!("{} {}\n", entry.path, us));
        }
        out
    }

    /// JSON summary of every scope:
    /// `{"type":"profile","scopes":[{"path":…,"count":…,"total_s":…,
    /// "self_s":…,"min_s":…,"max_s":…},…]}`.
    pub fn summary_json(&self) -> String {
        let scopes: Vec<String> = self
            .snapshot()
            .iter()
            .map(|e| {
                format!(
                    "{{\"path\":\"{}\",\"count\":{},\"total_s\":{},\"self_s\":{},\
                     \"min_s\":{},\"max_s\":{}}}",
                    crate::json_escape(&e.path),
                    e.stats.count,
                    crate::format_f64(e.stats.total_s),
                    crate::format_f64(e.stats.self_s),
                    crate::format_f64(e.stats.min_s),
                    crate::format_f64(e.stats.max_s),
                )
            })
            .collect();
        format!("{{\"type\":\"profile\",\"scopes\":[{}]}}", scopes.join(","))
    }

    /// How much of root scope `root`'s wall time its profiled children
    /// account for, in percent (`None` when the root was never recorded
    /// or has zero total). 100 means every second inside the root was
    /// inside some named child scope — the attribution guarantee the
    /// perf gate checks.
    pub fn attributed_pct(&self, root: &str) -> Option<f64> {
        let scopes = self.inner.scopes.lock().unwrap_or_else(|e| e.into_inner());
        let stats = scopes.get(root)?;
        if stats.total_s <= 0.0 {
            return None;
        }
        Some(100.0 * (stats.total_s - stats.self_s) / stats.total_s)
    }
}

/// Guard for one open scope; records aggregates when dropped.
pub struct ScopeGuard {
    profiler: Profiler,
    path: String,
    start: f64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let elapsed = (self.profiler.now() - self.start).max(0.0);
        self.profiler.record(&self.path, elapsed);
    }
}

/// The process-wide profiler [`crate::profile_scope!`] records into. Starts
/// disabled; benchmarks, tests, and the ops plane enable it on demand.
pub fn global() -> &'static Profiler {
    static GLOBAL: OnceLock<Profiler> = OnceLock::new();
    GLOBAL.get_or_init(Profiler::new)
}

/// Open a scope on the [`global`] profiler for the rest of the enclosing
/// block. Costs one relaxed atomic load while the profiler is disabled.
#[macro_export]
macro_rules! profile_scope {
    ($name:expr) => {
        let _obs_profile_scope_guard = $crate::profile::global().scope($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A profiler on a stepped (millisecond-cell) clock, enabled.
    fn stepped() -> (Profiler, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(0));
        let c = cell.clone();
        let p = Profiler::new();
        p.set_clock(move || c.load(Ordering::SeqCst) as f64 / 1000.0);
        p.enable();
        (p, cell)
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::new();
        assert!(!p.is_enabled());
        assert!(p.scope("noop").is_none());
        assert!(p.snapshot().is_empty());
        assert!(p.collapsed().is_empty());
    }

    #[test]
    fn nested_scopes_build_collapsed_paths_with_self_time() {
        let (p, clock) = stepped();
        {
            let _outer = p.scope("outer");
            clock.store(100, Ordering::SeqCst);
            {
                let _inner = p.scope("inner");
                clock.store(400, Ordering::SeqCst);
            }
            clock.store(500, Ordering::SeqCst);
        }
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        let outer = snap.iter().find(|e| e.path == "outer").unwrap();
        let inner = snap.iter().find(|e| e.path == "outer;inner").unwrap();
        assert_eq!(inner.name(), "inner");
        assert_eq!(inner.depth(), 1);
        assert_eq!(outer.stats.count, 1);
        assert!((outer.stats.total_s - 0.5).abs() < 1e-9);
        // outer self = 0.5 total - 0.3 spent in inner.
        assert!((outer.stats.self_s - 0.2).abs() < 1e-9);
        assert!((inner.stats.total_s - 0.3).abs() < 1e-9);
        assert!((inner.stats.self_s - 0.3).abs() < 1e-9);
    }

    #[test]
    fn repeated_calls_aggregate_count_min_max() {
        let (p, clock) = stepped();
        for (i, ms) in [100u64, 300, 200].iter().enumerate() {
            let t0 = i as u64 * 1000;
            clock.store(t0, Ordering::SeqCst);
            let _g = p.scope("work");
            clock.store(t0 + ms, Ordering::SeqCst);
        }
        let snap = p.snapshot();
        let work = &snap[0].stats;
        assert_eq!(work.count, 3);
        assert!((work.total_s - 0.6).abs() < 1e-9);
        assert!((work.min_s - 0.1).abs() < 1e-9);
        assert!((work.max_s - 0.3).abs() < 1e-9);
    }

    #[test]
    fn collapsed_output_is_inferno_shaped() {
        let (p, clock) = stepped();
        {
            let _a = p.scope("alloc");
            clock.store(1000, Ordering::SeqCst);
            let _b = p.scope("observe");
            clock.store(3000, Ordering::SeqCst);
        }
        let collapsed = p.collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 2);
        // `path value` with a semicolon-joined path and integer µs value.
        assert_eq!(lines[0], "alloc 1000000");
        assert_eq!(lines[1], "alloc;observe 2000000");
        for line in lines {
            let (path, value) = line.rsplit_once(' ').unwrap();
            assert!(!path.is_empty());
            value.parse::<u64>().expect("integer sample value");
        }
    }

    #[test]
    fn summary_json_parses_and_carries_all_fields() {
        let (p, clock) = stepped();
        {
            let _g = p.scope("stage");
            clock.store(250, Ordering::SeqCst);
        }
        let doc = crate::json::parse(&p.summary_json()).expect("summary parses");
        assert_eq!(doc.get("type").and_then(|v| v.as_str()), Some("profile"));
        let scopes = doc.get("scopes").and_then(|v| v.as_array()).unwrap();
        assert_eq!(scopes.len(), 1);
        let s = &scopes[0];
        assert_eq!(s.get("path").and_then(|v| v.as_str()), Some("stage"));
        assert_eq!(s.get("count").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(s.get("total_s").and_then(|v| v.as_f64()), Some(0.25));
        assert_eq!(s.get("self_s").and_then(|v| v.as_f64()), Some(0.25));
        assert_eq!(s.get("min_s").and_then(|v| v.as_f64()), Some(0.25));
        assert_eq!(s.get("max_s").and_then(|v| v.as_f64()), Some(0.25));
    }

    #[test]
    fn attribution_measures_child_coverage_of_a_root() {
        let (p, clock) = stepped();
        {
            let _root = p.scope("root");
            {
                let _child = p.scope("child");
                clock.store(900, Ordering::SeqCst);
            }
            clock.store(1000, Ordering::SeqCst);
        }
        // 0.9 of 1.0 seconds inside the named child.
        assert!((p.attributed_pct("root").unwrap() - 90.0).abs() < 1e-6);
        assert!(p.attributed_pct("missing").is_none());
    }

    #[test]
    fn threads_aggregate_into_one_registry_with_per_thread_stacks() {
        let p = Profiler::new();
        p.enable();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    let _outer = p.scope("job");
                    let _inner = p.scope("phase");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = p.snapshot();
        let paths: Vec<&str> = snap.iter().map(|e| e.path.as_str()).collect();
        // Per-thread stacks never interleave: exactly two paths, each
        // counted once per thread.
        assert_eq!(paths, vec!["job", "job;phase"]);
        assert!(snap.iter().all(|e| e.stats.count == 4));
    }

    #[test]
    fn reset_clears_scopes_but_keeps_enablement() {
        let (p, clock) = stepped();
        {
            let _g = p.scope("gone");
            clock.store(10, Ordering::SeqCst);
        }
        assert_eq!(p.snapshot().len(), 1);
        p.reset();
        assert!(p.snapshot().is_empty());
        assert!(p.is_enabled());
    }

    #[test]
    fn global_profile_scope_macro_is_dormant_by_default() {
        // The global profiler must not aggregate unless explicitly
        // enabled — instrumented library code stays free.
        {
            profile_scope!("dormant.scope");
        }
        assert!(global()
            .snapshot()
            .iter()
            .all(|e| !e.path.contains("dormant.scope") || global().is_enabled()));
    }

    #[test]
    fn real_clock_measures_forward_time() {
        let p = Profiler::new();
        p.enable();
        {
            let _g = p.scope("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let snap = p.snapshot();
        let e = snap.iter().find(|e| e.path == "sleepy").unwrap();
        assert!(e.stats.total_s >= 0.004, "slept ≥5ms, measured {}", e.stats.total_s);
    }
}
