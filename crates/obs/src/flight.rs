//! Flight recorder: a fixed-capacity ring of the most recent closed
//! spans and events, snapshottable at any moment into a self-contained
//! JSONL dump or a Chrome trace.
//!
//! The ring lives inside [`crate::Recorder`] (see
//! [`crate::Recorder::enable_flight`]) and costs one clone per closed
//! span/event while enabled; the full span/event log is untouched. The
//! point is post-mortems without full-run tracing: the ops server dumps
//! it on `GET /api/flightrec`, the SLO engine captures one on every
//! alert firing, and simtest attaches one to invariant violations.

use crate::{event_json_line, span_json_line, EventData, SpanData};
use std::collections::VecDeque;

/// One entry in the flight ring: a closed span or an event.
#[derive(Debug, Clone)]
pub enum FlightRecord {
    /// A span that has ended (open spans are appended at snapshot time).
    Span(SpanData),
    /// A point-in-time event.
    Event(EventData),
}

impl FlightRecord {
    /// The record's timestamp: span start or event time.
    pub fn t(&self) -> f64 {
        match self {
            FlightRecord::Span(s) => s.start,
            FlightRecord::Event(e) => e.t,
        }
    }

    /// The record's name.
    pub fn name(&self) -> &str {
        match self {
            FlightRecord::Span(s) => &s.name,
            FlightRecord::Event(e) => &e.name,
        }
    }
}

/// The bounded ring itself; owned by the recorder, mutated on every
/// close/emit while flight recording is enabled.
#[derive(Debug)]
pub(crate) struct FlightRing {
    capacity: usize,
    records: VecDeque<FlightRecord>,
    dropped: u64,
}

impl FlightRing {
    pub(crate) fn new(capacity: usize) -> Self {
        FlightRing { capacity, records: VecDeque::with_capacity(capacity.min(1024)), dropped: 0 }
    }

    pub(crate) fn push(&mut self, record: FlightRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    pub(crate) fn snapshot(&self, captured_at: f64) -> FlightSnapshot {
        FlightSnapshot {
            captured_at,
            dropped: self.dropped,
            records: self.records.iter().cloned().collect(),
        }
    }
}

/// A self-contained copy of the flight ring at one instant.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// Recorder-clock time of the capture.
    pub captured_at: f64,
    /// Records evicted (or refused, at capacity 0) since enablement —
    /// how much history the ring has already forgotten.
    pub dropped: u64,
    /// Retained records, oldest first; still-open spans are appended
    /// last with `end: null`.
    pub records: Vec<FlightRecord>,
}

impl FlightSnapshot {
    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Render as JSON Lines: a header object
    /// (`{"type":"flightrec",...}`) followed by one span/event object
    /// per record, in the same schema as [`crate::Recorder::to_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"flightrec\",\"captured_at\":{},\"records\":{},\"dropped\":{}}}\n",
            crate::format_f64(self.captured_at),
            self.records.len(),
            self.dropped,
        );
        for record in &self.records {
            match record {
                FlightRecord::Span(s) => out.push_str(&span_json_line(s)),
                FlightRecord::Event(e) => out.push_str(&event_json_line(e)),
            }
        }
        out
    }

    /// Render as a Chrome trace (JSON string): closed spans become
    /// complete events on a `flightrec/spans` track, events become
    /// zero-duration slices on `flightrec/events`. Open spans are
    /// clipped to the capture time.
    pub fn to_chrome_trace(&self) -> String {
        let mut trace = crate::chrome::TraceBuilder::new();
        for record in &self.records {
            match record {
                FlightRecord::Span(s) => {
                    let end = s.end.unwrap_or(self.captured_at).max(s.start);
                    trace.add_complete(
                        s.name.clone(),
                        "flightrec",
                        "flightrec/spans",
                        s.start,
                        end - s.start,
                        s.fields.clone(),
                    );
                }
                FlightRecord::Event(e) => {
                    trace.add_complete(
                        e.name.clone(),
                        "flightrec",
                        "flightrec/events",
                        e.t,
                        0.0,
                        e.fields.clone(),
                    );
                }
            }
        }
        trace.to_json()
    }
}

#[cfg(test)]
mod tests {
    use crate::{json, Recorder};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn stepped() -> (Recorder, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(0));
        let c = cell.clone();
        let rec = Recorder::with_clock(move || c.load(Ordering::SeqCst) as f64 / 1000.0);
        (rec, cell)
    }

    #[test]
    fn disabled_recorder_has_no_flight_state() {
        let rec = Recorder::new();
        rec.event("loose", [("n", 1u64)]);
        assert!(!rec.flight_enabled());
        assert!(rec.flight_snapshot().is_none());
    }

    #[test]
    fn ring_retains_the_most_recent_records() {
        let (rec, clock) = stepped();
        rec.enable_flight(3);
        for i in 0..5u64 {
            clock.store(i * 1000, Ordering::SeqCst);
            rec.event(format!("tick_{i}"), [("i", i)]);
        }
        let snap = rec.flight_snapshot().expect("flight enabled");
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.dropped, 2);
        let names: Vec<&str> = snap.records.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["tick_2", "tick_3", "tick_4"]);
        assert_eq!(snap.records[0].t(), 2.0);
    }

    #[test]
    fn snapshot_includes_open_spans_and_round_trips_as_jsonl() {
        let (rec, clock) = stepped();
        rec.enable_flight(16);
        let closed = rec.span("closed");
        clock.store(100, Ordering::SeqCst);
        closed.end();
        let _open = rec.span("still_open");
        rec.event("note", [("msg", "with \"quotes\"")]);
        clock.store(250, Ordering::SeqCst);

        let snap = rec.flight_snapshot().unwrap();
        assert_eq!(snap.captured_at, 0.25);
        let names: Vec<&str> = snap.records.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["closed", "note", "still_open"]);

        let jsonl = snap.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + snap.len());
        let header = json::parse(lines[0]).expect("header parses");
        assert_eq!(header.get("type").and_then(|v| v.as_str()), Some("flightrec"));
        assert_eq!(header.get("records").and_then(|v| v.as_f64()), Some(3.0));
        for line in &lines[1..] {
            let obj = json::parse(line).expect("record line parses");
            let kind = obj.get("type").and_then(|v| v.as_str()).unwrap();
            assert!(kind == "span" || kind == "event", "unexpected record type {kind}");
        }
    }

    #[test]
    fn chrome_trace_export_is_valid_json_with_both_tracks() {
        let (rec, clock) = stepped();
        rec.enable_flight(16);
        let s = rec.span("work");
        clock.store(2000, Ordering::SeqCst);
        s.end();
        rec.event("decision", [("gpu", 0u64)]);

        let trace = rec.flight_snapshot().unwrap().to_chrome_trace();
        let parsed = json::parse(&trace).expect("chrome trace parses");
        let events = parsed.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert!(!events.is_empty());
        let names: Vec<_> =
            events.iter().filter_map(|e| e.get("name").and_then(|n| n.as_str())).collect();
        assert!(names.contains(&"work"), "{names:?}");
        assert!(names.contains(&"decision"), "{names:?}");
    }

    #[test]
    fn ring_wraps_exactly_at_capacity() {
        let (rec, clock) = stepped();
        rec.enable_flight(4);
        // Fill to exactly capacity: nothing dropped yet.
        for i in 0..4u64 {
            clock.store(i * 1000, Ordering::SeqCst);
            rec.event(format!("fill_{i}"), [("i", i)]);
        }
        let full = rec.flight_snapshot().unwrap();
        assert_eq!(full.len(), 4);
        assert_eq!(full.dropped, 0);

        // The very next record triggers the wrap: length stays at
        // capacity, the oldest record is the one evicted.
        clock.store(4000, Ordering::SeqCst);
        rec.event("fill_4", [("i", 4u64)]);
        let wrapped = rec.flight_snapshot().unwrap();
        assert_eq!(wrapped.len(), 4);
        assert_eq!(wrapped.dropped, 1);
        let names: Vec<&str> = wrapped.records.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["fill_1", "fill_2", "fill_3", "fill_4"]);
    }

    #[test]
    fn snapshot_ordering_is_stable_across_wraps_and_repeat_captures() {
        let (rec, clock) = stepped();
        rec.enable_flight(5);
        // Push far more records than the ring holds so it wraps several
        // times over; retained records must still come back oldest-first
        // with strictly non-decreasing timestamps.
        for i in 0..23u64 {
            clock.store(i * 1000, Ordering::SeqCst);
            rec.event(format!("seq_{i:02}"), [("i", i)]);
        }
        let snap = rec.flight_snapshot().unwrap();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.dropped, 18);
        let names: Vec<&str> = snap.records.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["seq_18", "seq_19", "seq_20", "seq_21", "seq_22"]);
        assert!(
            snap.records.windows(2).all(|w| w[0].t() <= w[1].t()),
            "retained records must stay in chronological order"
        );

        // A second capture with no intervening records sees the same
        // view: snapshots are pure reads, not drains.
        let again = rec.flight_snapshot().unwrap();
        let names_again: Vec<&str> = again.records.iter().map(|r| r.name()).collect();
        assert_eq!(names_again, names);
        assert_eq!(again.dropped, snap.dropped);
    }

    #[test]
    fn mid_wrap_dump_replays_into_a_valid_chrome_trace() {
        let (rec, clock) = stepped();
        rec.enable_flight(6);
        // Interleave spans and events well past capacity so the capture
        // lands mid-wrap, with one span still open at capture time.
        for i in 0..9u64 {
            clock.store(i * 1000, Ordering::SeqCst);
            let s = rec.span(format!("wave_{i}"));
            clock.store(i * 1000 + 500, Ordering::SeqCst);
            s.end();
            rec.event(format!("mark_{i}"), [("i", i)]);
        }
        let _open = rec.span("in_flight");
        clock.store(9500, Ordering::SeqCst);

        let snap = rec.flight_snapshot().unwrap();
        assert_eq!(snap.len(), 6 + 1, "ring contents plus the open span");
        assert!(snap.dropped > 0, "capture must land mid-wrap");

        let trace = snap.to_chrome_trace();
        let parsed = json::parse(&trace).expect("mid-wrap dump parses as a Chrome trace");
        let events = parsed.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        // Every retained record becomes a complete event with a
        // non-negative duration; the open span is clipped to capture
        // time rather than emitted with a null end.
        let complete: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X")).collect();
        assert_eq!(complete.len(), snap.len());
        for e in &complete {
            assert!(e.get("dur").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        }
        let open = complete
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("in_flight"))
            .expect("open span present in the trace");
        // Clipped: started at t=8.5s, captured at t=9.5s → 1s = 1000000µs.
        assert_eq!(open.get("dur").and_then(|v| v.as_f64()), Some(1_000_000.0));
    }

    #[test]
    fn capacity_zero_drops_everything() {
        let rec = Recorder::new();
        rec.enable_flight(0);
        rec.event("gone", [("n", 1u64)]);
        let snap = rec.flight_snapshot().unwrap();
        assert!(snap.is_empty());
        assert_eq!(snap.dropped, 1);
    }
}
