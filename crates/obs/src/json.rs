//! A minimal JSON reader, just enough for tests and tooling to assert on
//! the artifacts this crate exports (JSONL lines, Prometheus-adjacent
//! metadata, Chrome trace documents). Not a general-purpose parser: no
//! streaming, numbers are `f64`, and surrogate-pair escapes are rejected.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, preserving member order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Element list, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Boolean content, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing data at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(chars, pos);
    if *pos < chars.len() && chars[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{c}' at offset {pos}", pos = *pos))
    }
}

fn peek(chars: &[char], pos: &mut usize) -> Option<char> {
    skip_ws(chars, pos);
    chars.get(*pos).copied()
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    match peek(chars, pos).ok_or("unexpected end of input")? {
        '{' => parse_object(chars, pos),
        '[' => parse_array(chars, pos),
        '"' => Ok(JsonValue::Str(parse_string(chars, pos)?)),
        't' | 'f' | 'n' => parse_keyword(chars, pos),
        '-' | '0'..='9' => parse_number(chars, pos),
        c => Err(format!("unexpected character '{c}' at offset {pos}", pos = *pos)),
    }
}

fn parse_object(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    expect(chars, pos, '{')?;
    let mut members = Vec::new();
    if peek(chars, pos) == Some('}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_string(chars, pos)?;
        expect(chars, pos, ':')?;
        let value = parse_value(chars, pos)?;
        members.push((key, value));
        match peek(chars, pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_array(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    expect(chars, pos, '[')?;
    let mut items = Vec::new();
    if peek(chars, pos) == Some(']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        match peek(chars, pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < chars.len() {
        match chars[*pos] {
            '"' => {
                *pos += 1;
                return Ok(out);
            }
            '\\' => {
                *pos += 1;
                let esc = chars.get(*pos).ok_or("unterminated escape")?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000c}'),
                    'u' => {
                        let hex: String = chars
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or(format!("surrogate \\u escape '{hex}' unsupported"))?,
                        );
                        *pos += 4;
                    }
                    c => return Err(format!("unknown escape '\\{c}'")),
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_keyword(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    for (word, value) in [
        ("true", JsonValue::Bool(true)),
        ("false", JsonValue::Bool(false)),
        ("null", JsonValue::Null),
    ] {
        let len = word.len();
        if chars.len() >= *pos + len && chars[*pos..*pos + len].iter().collect::<String>() == word {
            *pos += len;
            return Ok(value);
        }
    }
    Err(format!("unknown keyword at offset {pos}", pos = *pos))
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < chars.len() && matches!(chars[*pos], '-' | '+' | '.' | 'e' | 'E' | '0'..='9') {
        *pos += 1;
    }
    let text: String = chars[start..*pos].iter().collect();
    text.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number '{text}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert!(doc.get("b").unwrap().get("d").unwrap().is_null());
        assert_eq!(doc.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = parse(r#""quote \" slash \\ tab \t u A""#).unwrap();
        assert_eq!(doc.as_str(), Some("quote \" slash \\ tab \t u A"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn roundtrips_recorder_escapes() {
        let escaped = crate::json_escape("a\"b\\c\nd\u{0001}e");
        let doc = parse(&format!("\"{escaped}\"")).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nd\u{0001}e"));
    }
}
