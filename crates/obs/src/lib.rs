//! Telemetry subsystem: structured spans and events, metrics, and trace
//! export.
//!
//! The central type is [`Recorder`], a cheaply cloneable, thread-safe
//! handle threaded through the Galaxy/GYAN pipeline. It carries three
//! sinks:
//!
//! * a **span/event log** — [`Span`]s form a tree via parent links and
//!   carry key/value [`Value`] fields; point-in-time events attach to a
//!   span or stand alone. The whole log exports as JSONL
//!   ([`Recorder::to_jsonl`]).
//! * a **metrics registry** ([`metrics::Registry`]) — counters, gauges,
//!   and histograms with Prometheus text exposition.
//! * an **injectable clock** — timestamps come from a caller-supplied
//!   closure, so a virtual-time simulation produces byte-for-byte
//!   deterministic telemetry.
//!
//! Chrome-trace assembly lives in [`chrome`]; a minimal JSON reader for
//! asserting on exported artifacts lives in [`json`]. The crate is
//! dependency-free so every layer of the workspace can use it.

pub mod chrome;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod serve;
pub mod sketch;
pub mod slo;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A telemetry field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// UTF-8 text.
    Str(String),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Render as a JSON literal.
    pub fn to_json(&self) -> String {
        match self {
            Value::Str(s) => format!("\"{}\"", json_escape(s)),
            Value::Int(v) => v.to_string(),
            Value::UInt(v) => v.to_string(),
            Value::Float(v) => format_f64(*v),
            Value::Bool(v) => v.to_string(),
        }
    }

    /// The string content, when this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A lossy numeric view of the value (strings yield `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(v) => Some(if *v { 1.0 } else { 0.0 }),
            Value::Str(_) => None,
        }
    }

    /// The boolean content, when this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Escape a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float compactly but losslessly enough for telemetry (JSON has
/// no Infinity/NaN — those degrade to null).
pub(crate) fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// One completed-or-open span in the log.
#[derive(Debug, Clone)]
pub struct SpanData {
    /// Unique id within this recorder.
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
    /// Span name (e.g. `"galaxy.map_destination"`).
    pub name: String,
    /// Start timestamp (seconds, recorder clock).
    pub start: f64,
    /// End timestamp; `None` while the span is open.
    pub end: Option<f64>,
    /// Attached key/value fields.
    pub fields: Vec<(String, Value)>,
}

impl SpanData {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// One point-in-time event in the log.
#[derive(Debug, Clone)]
pub struct EventData {
    /// Event name (e.g. `"gyan.rule.decision"`).
    pub name: String,
    /// Timestamp (seconds, recorder clock).
    pub t: f64,
    /// Enclosing span id, if the event was emitted within a span.
    pub span: Option<u64>,
    /// Attached key/value fields.
    pub fields: Vec<(String, Value)>,
}

impl EventData {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[derive(Default)]
struct LogState {
    /// Sorted by id: ids are allocated under this lock, so push order is
    /// id order, and eviction (which preserves relative order) keeps it
    /// that way — span lookup is a binary search, not a scan.
    spans: Vec<SpanData>,
    events: Vec<EventData>,
    /// Optional retention cap (per log, spans and events separately).
    /// `None` (the default) retains everything.
    retain: Option<usize>,
    dropped_spans: u64,
    dropped_events: u64,
}

impl LogState {
    /// Position of span `id`, exploiting the sorted-by-id invariant.
    fn span_index(&self, id: u64) -> Option<usize> {
        self.spans.binary_search_by_key(&id, |s| s.id).ok()
    }

    /// Enforce the retention cap with ~25% slack so eviction is a rare
    /// batch pass (amortized O(1) per record), not an O(n) scan on every
    /// push. Only *closed* spans are evicted — open spans must survive so
    /// open/close balance checks stay meaningful; events evict FIFO.
    fn evict(&mut self) {
        let Some(limit) = self.retain else { return };
        let slack = limit / 4 + 1;
        if self.spans.len() > limit + slack {
            let mut to_drop = self.spans.len() - limit;
            let mut dropped = 0u64;
            self.spans.retain(|s| {
                if to_drop > 0 && s.end.is_some() {
                    to_drop -= 1;
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
            self.dropped_spans += dropped;
        }
        if self.events.len() > limit + slack {
            let drop_n = self.events.len() - limit;
            self.events.drain(0..drop_n);
            self.dropped_events += drop_n as u64;
        }
    }
}

type ClockFn = dyn Fn() -> f64 + Send + Sync;

struct RecorderInner {
    log: Mutex<LogState>,
    metrics: metrics::Registry,
    clock: Mutex<Arc<ClockFn>>,
    next_id: AtomicU64,
    // Lock-order discipline: the flight lock is a leaf — it is never
    // held while taking the log or clock lock (and vice versa callers
    // drop the log lock before pushing here).
    flight: Mutex<Option<flight::FlightRing>>,
}

/// Thread-safe telemetry handle; clone freely — all clones share one log,
/// one metrics registry, and one clock.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder whose clock reads 0 until one is injected.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                log: Mutex::new(LogState::default()),
                metrics: metrics::Registry::new(),
                clock: Mutex::new(Arc::new(|| 0.0)),
                next_id: AtomicU64::new(1),
                flight: Mutex::new(None),
            }),
        }
    }

    /// A recorder reading timestamps from `clock`.
    pub fn with_clock(clock: impl Fn() -> f64 + Send + Sync + 'static) -> Self {
        let r = Recorder::new();
        r.set_clock(clock);
        r
    }

    /// Replace the timestamp source (e.g. with a virtual clock).
    pub fn set_clock(&self, clock: impl Fn() -> f64 + Send + Sync + 'static) {
        *self.inner.clock.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(clock);
    }

    /// Current time per the injected clock.
    pub fn now(&self) -> f64 {
        let clock = self.inner.clock.lock().unwrap_or_else(|e| e.into_inner()).clone();
        clock()
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &metrics::Registry {
        &self.inner.metrics
    }

    /// Turn on the flight recorder with a ring of `capacity` records.
    /// Re-enabling resets the ring (and its drop counter).
    pub fn enable_flight(&self, capacity: usize) {
        *self.inner.flight.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(flight::FlightRing::new(capacity));
    }

    /// Whether flight recording is enabled.
    pub fn flight_enabled(&self) -> bool {
        self.inner.flight.lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }

    /// Snapshot the flight ring (`None` while disabled). Still-open
    /// spans are appended after the ring's records so the snapshot shows
    /// in-progress work too.
    pub fn flight_snapshot(&self) -> Option<flight::FlightSnapshot> {
        let captured_at = self.now();
        let mut snap = {
            let flight = self.inner.flight.lock().unwrap_or_else(|e| e.into_inner());
            flight.as_ref()?.snapshot(captured_at)
        };
        for span in self.open_spans() {
            snap.records.push(flight::FlightRecord::Span(span));
        }
        Some(snap)
    }

    fn flight_push(&self, make: impl FnOnce() -> flight::FlightRecord) {
        let mut flight = self.inner.flight.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(ring) = flight.as_mut() {
            ring.push(make());
        }
    }

    /// Open a root span.
    pub fn span(&self, name: impl Into<String>) -> Span {
        self.open_span(name.into(), None)
    }

    fn open_span(&self, name: String, parent: Option<u64>) -> Span {
        let start = self.now();
        let mut log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        // Allocate the id while holding the log lock so push order is id
        // order — the invariant `LogState::span_index` binary-searches on.
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        log.spans.push(SpanData { id, parent, name, start, end: None, fields: Vec::new() });
        log.evict();
        Span { recorder: self.clone(), id, ended: false }
    }

    fn close_span(&self, id: u64) {
        let end = self.now();
        let closed = {
            let mut log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
            match log.span_index(id).map(|i| &mut log.spans[i]) {
                Some(span) if span.end.is_none() => {
                    span.end = Some(end);
                    Some(span.clone())
                }
                _ => None,
            }
        };
        if let Some(span) = closed {
            self.flight_push(|| flight::FlightRecord::Span(span));
        }
    }

    fn add_span_field(&self, id: u64, key: String, value: Value) {
        let mut log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = log.span_index(id) {
            log.spans[i].fields.push((key, value));
        }
    }

    /// Cap the span/event log at roughly `limit` records each, evicting
    /// the oldest **closed** spans and oldest events once the cap (plus
    /// ~25% batching slack) is exceeded; open spans are never evicted, so
    /// open/close-balance checks keep working. `None` (the default)
    /// retains everything. Long soak runs set this so telemetry stays
    /// O(limit) instead of O(jobs); [`Recorder::dropped_log_records`]
    /// reports how much history eviction cost.
    pub fn set_log_retention(&self, limit: Option<usize>) {
        let mut log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        log.retain = limit;
        log.evict();
    }

    /// `(spans, events)` evicted by the retention cap so far.
    pub fn dropped_log_records(&self) -> (u64, u64) {
        let log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        (log.dropped_spans, log.dropped_events)
    }

    /// Emit a standalone event.
    pub fn event<K: Into<String>, V: Into<Value>>(
        &self,
        name: impl Into<String>,
        fields: impl IntoIterator<Item = (K, V)>,
    ) {
        self.emit_event(name.into(), None, fields);
    }

    fn emit_event<K: Into<String>, V: Into<Value>>(
        &self,
        name: String,
        span: Option<u64>,
        fields: impl IntoIterator<Item = (K, V)>,
    ) {
        let t = self.now();
        let fields = fields.into_iter().map(|(k, v)| (k.into(), v.into())).collect();
        let ev = EventData { name, t, span, fields };
        self.flight_push(|| flight::FlightRecord::Event(ev.clone()));
        let mut log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        log.events.push(ev);
        log.evict();
    }

    /// Snapshot of all spans recorded so far.
    pub fn spans(&self) -> Vec<SpanData> {
        self.inner.log.lock().unwrap_or_else(|e| e.into_inner()).spans.clone()
    }

    /// Spans recorded but not yet ended — a quiesced system should have
    /// none, which makes this the open/close-balance probe for invariant
    /// checkers.
    pub fn open_spans(&self) -> Vec<SpanData> {
        self.inner
            .log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans
            .iter()
            .filter(|s| s.end.is_none())
            .cloned()
            .collect()
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<EventData> {
        self.inner.log.lock().unwrap_or_else(|e| e.into_inner()).events.clone()
    }

    /// Events with the given name.
    pub fn events_named(&self, name: &str) -> Vec<EventData> {
        self.events().into_iter().filter(|e| e.name == name).collect()
    }

    /// Spans with the given name.
    pub fn spans_named(&self, name: &str) -> Vec<SpanData> {
        self.spans().into_iter().filter(|s| s.name == name).collect()
    }

    /// Export the span/event log as JSON Lines: one object per line,
    /// spans first (in open order), then events (in emit order).
    pub fn to_jsonl(&self) -> String {
        let log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for s in &log.spans {
            out.push_str(&span_json_line(s));
        }
        for e in &log.events {
            out.push_str(&event_json_line(e));
        }
        out
    }
}

/// Render one span as a JSONL line (newline-terminated).
pub(crate) fn span_json_line(s: &SpanData) -> String {
    format!(
        "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start\":{},\"end\":{}{}}}\n",
        s.id,
        s.parent.map_or("null".to_string(), |p| p.to_string()),
        json_escape(&s.name),
        format_f64(s.start),
        s.end.map_or("null".to_string(), format_f64),
        render_fields(&s.fields),
    )
}

/// Render one event as a JSONL line (newline-terminated).
pub(crate) fn event_json_line(e: &EventData) -> String {
    format!(
        "{{\"type\":\"event\",\"name\":\"{}\",\"t\":{},\"span\":{}{}}}\n",
        json_escape(&e.name),
        format_f64(e.t),
        e.span.map_or("null".to_string(), |p| p.to_string()),
        render_fields(&e.fields),
    )
}

fn render_fields(fields: &[(String, Value)]) -> String {
    if fields.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        fields.iter().map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.to_json())).collect();
    format!(",\"fields\":{{{}}}", body.join(","))
}

/// An open span; ends (records its end timestamp) on [`Span::end`] or
/// drop, whichever comes first.
pub struct Span {
    recorder: Recorder,
    id: u64,
    ended: bool,
}

impl Span {
    /// This span's id (usable as a parent link after the span closes).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Open a child span.
    pub fn child(&self, name: impl Into<String>) -> Span {
        self.recorder.open_span(name.into(), Some(self.id))
    }

    /// Attach a key/value field.
    pub fn field(&self, key: impl Into<String>, value: impl Into<Value>) {
        self.recorder.add_span_field(self.id, key.into(), value.into());
    }

    /// Emit an event attached to this span.
    pub fn event<K: Into<String>, V: Into<Value>>(
        &self,
        name: impl Into<String>,
        fields: impl IntoIterator<Item = (K, V)>,
    ) {
        self.recorder.emit_event(name.into(), Some(self.id), fields);
    }

    /// Close the span now.
    pub fn end(mut self) {
        self.ended = true;
        self.recorder.close_span(self.id);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.ended {
            self.recorder.close_span(self.id);
        }
    }
}

/// Convenience for callers that may or may not have telemetry wired up:
/// an `Option<&Recorder>`-like free function set. Emitting through `None`
/// is a no-op, so call sites stay unconditional.
pub fn event_opt<K: Into<String>, V: Into<Value>>(
    recorder: Option<&Recorder>,
    name: impl Into<String>,
    fields: impl IntoIterator<Item = (K, V)>,
) {
    if let Some(r) = recorder {
        r.event(name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64 as ClockCell, Ordering as ClockOrdering};

    fn stepped_recorder() -> (Recorder, Arc<ClockCell>) {
        // Clock in milliseconds stored in an atomic; tests advance it.
        let cell = Arc::new(ClockCell::new(0));
        let c = cell.clone();
        let rec = Recorder::with_clock(move || c.load(ClockOrdering::SeqCst) as f64 / 1000.0);
        (rec, cell)
    }

    #[test]
    fn span_tree_records_parent_links_and_times() {
        let (rec, clock) = stepped_recorder();
        let root = rec.span("job");
        clock.store(100, ClockOrdering::SeqCst);
        let child = rec.spans_named("job");
        assert_eq!(child.len(), 1);
        let inner = root.child("phase");
        inner.field("tool", "racon_gpu");
        clock.store(250, ClockOrdering::SeqCst);
        inner.end();
        root.end();

        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        let job = &spans[0];
        let phase = &spans[1];
        assert_eq!(phase.parent, Some(job.id));
        assert_eq!(job.start, 0.0);
        assert_eq!(phase.start, 0.1);
        assert_eq!(phase.end, Some(0.25));
        assert_eq!(job.end, Some(0.25));
        assert_eq!(phase.field("tool").and_then(|v| v.as_str()), Some("racon_gpu"));
    }

    #[test]
    fn dropped_span_closes_itself() {
        let (rec, clock) = stepped_recorder();
        {
            let _s = rec.span("scoped");
            clock.store(500, ClockOrdering::SeqCst);
        }
        assert_eq!(rec.spans()[0].end, Some(0.5));
    }

    #[test]
    fn events_attach_to_spans() {
        let (rec, _clock) = stepped_recorder();
        let s = rec.span("alloc");
        s.event("decision", [("reason", "all_free")]);
        rec.event("loose", [("n", 3u64)]);
        s.end();

        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].span, Some(rec.spans()[0].id));
        assert_eq!(events[0].field("reason").and_then(|v| v.as_str()), Some("all_free"));
        assert_eq!(events[1].span, None);
        assert_eq!(events[1].field("n").and_then(|v| v.as_f64()), Some(3.0));
    }

    #[test]
    fn jsonl_export_parses_line_by_line() {
        let (rec, clock) = stepped_recorder();
        let s = rec.span("job");
        s.field("id", 7u64);
        s.event("note", [("msg", "hi \"there\"\n")]);
        clock.store(1250, ClockOrdering::SeqCst);
        s.end();

        let text = rec.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let span = json::parse(lines[0]).expect("span line parses");
        assert_eq!(span.get("type").and_then(|v| v.as_str()), Some("span"));
        assert_eq!(span.get("name").and_then(|v| v.as_str()), Some("job"));
        assert_eq!(span.get("end").and_then(|v| v.as_f64()), Some(1.25));
        assert_eq!(
            span.get("fields").and_then(|f| f.get("id")).and_then(|v| v.as_f64()),
            Some(7.0)
        );
        let event = json::parse(lines[1]).expect("event line parses");
        assert_eq!(event.get("type").and_then(|v| v.as_str()), Some("event"));
        assert_eq!(
            event.get("fields").and_then(|f| f.get("msg")).and_then(|v| v.as_str()),
            Some("hi \"there\"\n")
        );
    }

    #[test]
    fn recorder_is_shared_across_clones_and_threads() {
        let rec = Recorder::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    let s = rec.span(format!("worker-{i}"));
                    rec.metrics().inc_counter("obs_test_total", 1);
                    s.end();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.spans().len(), 8);
        assert_eq!(rec.metrics().counter_value("obs_test_total"), 8);
    }

    #[test]
    fn retention_evicts_closed_spans_and_old_events_only() {
        let rec = Recorder::new();
        rec.set_log_retention(Some(8));
        let held = rec.span("held-open");
        for i in 0..40u64 {
            let s = rec.span("burst");
            s.field("i", i);
            s.end();
            rec.event("tick", [("i", i)]);
        }
        let spans = rec.spans();
        // The cap plus batching slack bounds the log; the open span
        // survived every eviction pass.
        assert!(spans.len() <= 8 + 8 / 4 + 1, "spans bounded, got {}", spans.len());
        assert!(spans.iter().any(|s| s.name == "held-open" && s.end.is_none()));
        assert!(rec.events().len() <= 8 + 8 / 4 + 1);
        let (dropped_spans, dropped_events) = rec.dropped_log_records();
        assert!(dropped_spans > 0 && dropped_events > 0);
        // Eviction preserves the sorted-by-id invariant, so closing a
        // surviving span (binary search) still works.
        held.end();
        assert!(rec.open_spans().is_empty());
        // Newest records are the ones retained.
        let ids: Vec<u64> = rec.spans().iter().map(|s| s.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "span log stays id-sorted after eviction");
    }

    #[test]
    fn unbounded_by_default_and_cap_can_be_lifted() {
        let rec = Recorder::new();
        for _ in 0..100 {
            rec.span("s").end();
        }
        assert_eq!(rec.spans().len(), 100);
        rec.set_log_retention(Some(10));
        assert!(rec.spans().len() <= 10 + 10 / 4 + 1);
        rec.set_log_retention(None);
        for _ in 0..50 {
            rec.span("more").end();
        }
        let before = rec.dropped_log_records();
        assert!(rec.spans().len() >= 50);
        assert_eq!(rec.dropped_log_records(), before, "no eviction once lifted");
    }

    #[test]
    fn concurrent_span_churn_keeps_ids_sorted() {
        let rec = Recorder::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let s = rec.span("w");
                        s.field("k", 1u64);
                        s.end();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let ids: Vec<u64> = rec.spans().iter().map(|s| s.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 1600);
        assert!(rec.open_spans().is_empty());
    }

    #[test]
    fn virtual_clock_injection_is_deterministic() {
        let make = || {
            let (rec, clock) = stepped_recorder();
            let s = rec.span("a");
            clock.store(10, ClockOrdering::SeqCst);
            let c = s.child("b");
            clock.store(30, ClockOrdering::SeqCst);
            c.end();
            s.end();
            rec.to_jsonl()
        };
        assert_eq!(make(), make());
    }
}
