//! Dependency-free operations HTTP server.
//!
//! A minimal HTTP/1.1 server on [`std::net::TcpListener`] with a bounded
//! worker pool and a graceful-shutdown handle, built for low-volume
//! scrape/introspection traffic (`GET /metrics`, `GET /api/...`). Routes
//! are plain closures over whatever state the caller captures; the
//! server itself knows nothing about Galaxy or GYAN.
//!
//! Saturation behaves like the rest of the stack's admission control:
//! the accept loop enqueues connections into a bounded channel, and when
//! every worker is busy and the backlog is full, new connections get an
//! immediate `503` instead of unbounded queueing. `/healthz` reports
//! that saturation state so scrapers can see pressure before it turns
//! into refusals.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection socket timeout: an ops server must never hang on a
/// stalled scraper.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Queued-connection backlog per worker.
const BACKLOG_PER_WORKER: usize = 4;

/// A parsed (minimal) HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw query string (everything after the first `?`, empty if none).
    pub query: String,
}

impl Request {
    /// Look up a `key=value` query parameter; a bare `key` (no `=`)
    /// yields `Some("")`. No percent-decoding — the ops plane's
    /// parameters are plain tokens.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// An HTTP response a handler returns.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
    /// Extra headers beyond Content-Type/Content-Length (e.g. `Allow`).
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// `200` with an explicit content type.
    pub fn ok(content_type: &str, body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type: content_type.to_string(),
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// `200 application/json`.
    pub fn json(body: impl Into<String>) -> Self {
        Response::ok("application/json", body)
    }

    /// `200 text/plain`.
    pub fn text(body: impl Into<String>) -> Self {
        Response::ok("text/plain; charset=utf-8", body)
    }

    /// Attach an extra response header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Error responses are plain text: curl-friendly, nothing to parse.
    fn error(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body,
            headers: Vec::new(),
        }
    }

    /// `404 text/plain`.
    pub fn not_found(what: &str) -> Self {
        Response::error(404, format!("not found: {what}\n"))
    }

    /// `405 text/plain` with `Allow: GET` (the ops plane is read-only).
    pub fn method_not_allowed() -> Self {
        Response::error(405, "method not allowed\n".to_string()).with_header("Allow", "GET")
    }

    /// `500 text/plain` — a handler failed (e.g. panicked).
    pub fn internal_error(why: &str) -> Self {
        Response::error(500, format!("internal error: {why}\n"))
    }

    /// `503 text/plain` with the refusal reason.
    pub fn unavailable(why: &str) -> Self {
        Response::error(503, format!("unavailable: {why}\n"))
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Error",
        }
    }
}

/// A route handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct PoolStats {
    workers: usize,
    busy: AtomicUsize,
    queued: AtomicUsize,
    requests: AtomicU64,
    refused: AtomicU64,
}

/// Builder for the ops server: register routes, then [`OpsServer::start`].
pub struct OpsServer {
    routes: BTreeMap<String, Handler>,
    healthz_extra: Option<Arc<dyn Fn() -> String + Send + Sync>>,
    workers: usize,
}

impl Default for OpsServer {
    fn default() -> Self {
        Self::new()
    }
}

impl OpsServer {
    /// A server with no routes and 2 workers.
    pub fn new() -> Self {
        OpsServer { routes: BTreeMap::new(), healthz_extra: None, workers: 2 }
    }

    /// Set the worker-thread count (min 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Register `handler` for an exact `path` (a trailing request
    /// sub-path, `path/...`, also dispatches here — handlers see the
    /// full request path).
    pub fn route(mut self, path: impl Into<String>, handler: Handler) -> Self {
        self.routes.insert(path.into(), handler);
        self
    }

    /// Register `GET /metrics` serving `registry`'s Prometheus text.
    pub fn serve_metrics(self, registry: &crate::metrics::Registry) -> Self {
        let registry = registry.clone();
        self.route(
            "/metrics",
            Arc::new(move |_req| {
                Response::ok("text/plain; version=0.0.4", registry.render_prometheus())
            }),
        )
    }

    /// Attach an extra JSON object fragment (`"key":value,...` rendered
    /// into the `/healthz` document) supplied per request.
    pub fn healthz_extra(mut self, provider: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.healthz_extra = Some(Arc::new(provider));
        self
    }

    /// Bind `addr` (use port 0 for an ephemeral port) and serve until
    /// [`OpsHandle::shutdown`].
    pub fn start(self, addr: impl ToSocketAddrs) -> io::Result<OpsHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stats = Arc::new(PoolStats {
            workers: self.workers,
            busy: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        });
        let routes = Arc::new(self.routes);
        let healthz_extra = self.healthz_extra;
        let shutdown = Arc::new(AtomicBool::new(false));

        let (tx, rx) = sync_channel::<TcpStream>(self.workers * BACKLOG_PER_WORKER);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let routes = Arc::clone(&routes);
                let stats = Arc::clone(&stats);
                let healthz_extra = healthz_extra.clone();
                std::thread::Builder::new()
                    .name(format!("obs-ops-{i}"))
                    .spawn(move || worker_loop(&rx, &routes, healthz_extra.as_deref(), &stats))
                    .expect("spawn ops worker")
            })
            .collect();

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("obs-ops-accept".to_string())
                .spawn(move || {
                    // `tx` moves in here: dropping it on exit disconnects
                    // the workers' receiver and ends their loops.
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        stats.queued.fetch_add(1, Ordering::SeqCst);
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(TrySendError::Full(mut stream)) => {
                                stats.queued.fetch_sub(1, Ordering::SeqCst);
                                stats.refused.fetch_add(1, Ordering::SeqCst);
                                let _ = write_response(
                                    &mut stream,
                                    &Response::unavailable("handler pool saturated"),
                                );
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                })
                .expect("spawn ops accept loop")
        };

        Ok(OpsHandle { addr: local, shutdown, accept: Some(accept), workers })
    }
}

type ReceiverSlot = Arc<Mutex<Receiver<TcpStream>>>;

fn worker_loop(
    rx: &ReceiverSlot,
    routes: &BTreeMap<String, Handler>,
    healthz_extra: Option<&(dyn Fn() -> String + Send + Sync)>,
    stats: &PoolStats,
) {
    loop {
        // The mutex only serializes the dequeue, not request handling.
        let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        let Ok(mut stream) = next else { break };
        stats.queued.fetch_sub(1, Ordering::SeqCst);
        stats.busy.fetch_add(1, Ordering::SeqCst);
        stats.requests.fetch_add(1, Ordering::SeqCst);
        let _ = handle_connection(&mut stream, routes, healthz_extra, stats);
        stats.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(
    stream: &mut TcpStream,
    routes: &BTreeMap<String, Handler>,
    healthz_extra: Option<&(dyn Fn() -> String + Send + Sync)>,
    stats: &PoolStats,
) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers to the blank line; bodies are ignored (GET only).
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("/");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let request = Request { method, path, query };
    let response = dispatch(&request, routes, healthz_extra, stats);
    write_response(stream, &response)
}

fn dispatch(
    request: &Request,
    routes: &BTreeMap<String, Handler>,
    healthz_extra: Option<&(dyn Fn() -> String + Send + Sync)>,
    stats: &PoolStats,
) -> Response {
    if request.method != "GET" {
        return Response::method_not_allowed();
    }
    if request.path == "/healthz" {
        return healthz(healthz_extra, stats);
    }
    // Longest matching route wins: exact path, or a registered prefix
    // followed by `/` (so `/api/jobs` also serves `/api/jobs/17`).
    let matched = routes
        .iter()
        .filter(|(route, _)| {
            request.path == **route
                || (request.path.starts_with(*route)
                    && request.path.as_bytes().get(route.len()) == Some(&b'/'))
        })
        .max_by_key(|(route, _)| route.len());
    match matched {
        // A panicking handler must not kill the worker thread: turn the
        // panic into a 500 so the connection still gets an answer and
        // the pool keeps serving.
        Some((_, handler)) => catch_unwind(AssertUnwindSafe(|| handler(request)))
            .unwrap_or_else(|_| Response::internal_error("handler panicked")),
        None => Response::not_found(&request.path),
    }
}

fn healthz(
    healthz_extra: Option<&(dyn Fn() -> String + Send + Sync)>,
    stats: &PoolStats,
) -> Response {
    let busy = stats.busy.load(Ordering::SeqCst);
    let queued = stats.queued.load(Ordering::SeqCst);
    let saturated = busy >= stats.workers && queued > 0;
    let extra = healthz_extra.map(|f| f()).filter(|s| !s.is_empty());
    let extra = extra.map_or(String::new(), |s| format!(",{s}"));
    Response::json(format!(
        "{{\"status\":\"ok\",\"http_pool\":{{\"workers\":{},\"busy\":{busy},\"queued\":{queued},\
         \"saturated\":{saturated},\"requests\":{},\"refused\":{}}}{extra}}}",
        stats.workers,
        stats.requests.load(Ordering::SeqCst),
        stats.refused.load(Ordering::SeqCst),
    ))
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.status_text(),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Handle to a running server: the bound address plus graceful shutdown.
pub struct OpsHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl OpsHandle {
    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stop accepting, drain the workers, and join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `incoming()`; poke it with one
        // throwaway connection so it observes the flag.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        let _ = accept.join();
        // `tx` dropped with the accept thread → workers' recv() errors
        // out once the queue drains.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for OpsHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Minimal blocking HTTP GET against a local server; returns
/// `(status, body)`. This is the test/CLI client half of the ops plane —
/// enough HTTP to scrape ourselves, nothing more.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let (status, _headers, body) = http_get_headers(addr, path)?;
    Ok((status, body))
}

/// Response headers as lowercased `(name, value)` pairs.
pub type HeaderPairs = Vec<(String, String)>;

/// Like [`http_get`] but also returns the response headers as lowercased
/// `(name, value)` pairs, for asserting on `Allow`, `Content-Length`,
/// and content types.
pub fn http_get_headers(addr: SocketAddr, path: &str) -> io::Result<(u16, HeaderPairs, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: ops\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    Ok((status, headers, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn test_server() -> OpsHandle {
        let registry = crate::metrics::Registry::new();
        registry.inc_counter("ops_test_total", 7);
        OpsServer::new()
            .serve_metrics(&registry)
            .route(
                "/api/echo",
                Arc::new(|req: &Request| {
                    Response::json(format!("{{\"path\":\"{}\"}}", crate::json_escape(&req.path)))
                }),
            )
            .healthz_extra(|| "\"extra\":{\"answer\":42}".to_string())
            .start("127.0.0.1:0")
            .expect("bind ephemeral port")
    }

    #[test]
    fn serves_metrics_and_routes() {
        let server = test_server();
        let (status, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        let samples = crate::metrics::parse_prometheus(&body).expect("scrape parses");
        assert!(samples.iter().any(|s| s.name == "ops_test_total" && s.value == 7.0));

        let (status, body) = http_get(server.addr(), "/api/echo").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            json::parse(&body).unwrap().get("path").and_then(|v| v.as_str()),
            Some("/api/echo")
        );
        server.shutdown();
    }

    #[test]
    fn subpaths_dispatch_to_the_route_prefix() {
        let server = test_server();
        let (status, body) = http_get(server.addr(), "/api/echo/42?verbose=1").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            json::parse(&body).unwrap().get("path").and_then(|v| v.as_str()),
            Some("/api/echo/42")
        );
        server.shutdown();
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    #[test]
    fn unknown_paths_get_404() {
        let server = test_server();
        let (status, body) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("not found"));
        // A prefix match must be on a path-segment boundary.
        let (status, _) = http_get(server.addr(), "/api/echoes").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn not_found_is_plain_text_with_content_length() {
        let server = test_server();
        let (status, headers, body) = http_get_headers(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        assert_eq!(header(&headers, "content-type"), Some("text/plain; charset=utf-8"));
        assert_eq!(header(&headers, "content-length"), Some(body.len().to_string().as_str()));
        assert_eq!(body, "not found: /nope\n");
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "DELETE /metrics HTTP/1.1\r\nHost: ops\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        let head_lower = head.to_ascii_lowercase();
        assert!(head_lower.contains("allow: GET".to_ascii_lowercase().as_str()), "{head}");
        assert!(head_lower.contains("content-type: text/plain"), "{head}");
        assert!(head_lower.contains(&format!("content-length: {}", body.len())), "{head}");
        server.shutdown();
    }

    #[test]
    fn panicking_handler_yields_500_and_server_survives() {
        let server = OpsServer::new()
            .route("/boom", Arc::new(|_req: &Request| -> Response { panic!("kaboom") }))
            .route("/fine", Arc::new(|_req: &Request| Response::text("ok")))
            .start("127.0.0.1:0")
            .expect("bind ephemeral port");
        let (status, headers, body) = http_get_headers(server.addr(), "/boom").unwrap();
        assert_eq!(status, 500);
        assert_eq!(header(&headers, "content-type"), Some("text/plain; charset=utf-8"));
        assert_eq!(header(&headers, "content-length"), Some(body.len().to_string().as_str()));
        assert!(body.contains("internal error"));
        // Same pool of workers keeps answering after the panic.
        let (status, body) = http_get(server.addr(), "/fine").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        server.shutdown();
    }

    #[test]
    fn query_parameters_are_parsed() {
        let server = OpsServer::new()
            .route(
                "/api/q",
                Arc::new(|req: &Request| {
                    Response::text(format!(
                        "reset={} format={} bare={} missing={}",
                        req.query_param("reset").unwrap_or("-"),
                        req.query_param("format").unwrap_or("-"),
                        req.query_param("bare").unwrap_or("-"),
                        req.query_param("missing").unwrap_or("-"),
                    ))
                }),
            )
            .start("127.0.0.1:0")
            .expect("bind ephemeral port");
        let (status, body) =
            http_get(server.addr(), "/api/q?reset=1&format=collapsed&bare").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "reset=1 format=collapsed bare= missing=-");
        server.shutdown();
    }

    #[test]
    fn healthz_reports_pool_state_and_extra() {
        let server = test_server();
        let (status, body) = http_get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        let doc = json::parse(&body).expect("healthz parses");
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
        let pool = doc.get("http_pool").unwrap();
        assert_eq!(pool.get("workers").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(pool.get("saturated").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(
            doc.get("extra").and_then(|e| e.get("answer")).and_then(|v| v.as_f64()),
            Some(42.0)
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let server = test_server();
        let addr = server.addr();
        assert_eq!(http_get(addr, "/healthz").unwrap().0, 200);
        // The real assertion is that this returns at all: shutdown joins
        // the accept loop and every worker, so a stuck thread would hang
        // the test here.
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || http_get(addr, "/metrics").unwrap().0))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 200);
        }
        server.shutdown();
    }
}
