//! Chrome trace (about://tracing / Perfetto) JSON assembly.
//!
//! Collects complete ("X") duration events and counter ("C") events on
//! named tracks, then renders one `traceEvents` JSON document. Tracks map
//! to thread ids in first-appearance order, with metadata ("M") events
//! naming them, so a merged job/kernel/monitor timeline reads coherently.

use crate::{json_escape, Value};

/// One duration event (Chrome phase `"X"`).
#[derive(Debug, Clone)]
pub struct CompleteEvent {
    /// Event label.
    pub name: String,
    /// Comma-separated categories.
    pub category: String,
    /// Track (rendered as a named thread).
    pub track: String,
    /// Start time in seconds.
    pub start_s: f64,
    /// Duration in seconds.
    pub dur_s: f64,
    /// Extra `args` entries.
    pub args: Vec<(String, Value)>,
}

/// One counter sample (Chrome phase `"C"`).
#[derive(Debug, Clone)]
pub struct CounterEvent {
    /// Counter name (one chart per name).
    pub name: String,
    /// Track the counter belongs to.
    pub track: String,
    /// Sample time in seconds.
    pub t_s: f64,
    /// Series name → value at this instant.
    pub series: Vec<(String, f64)>,
}

/// Accumulates events and renders the trace document.
#[derive(Debug, Default, Clone)]
pub struct TraceBuilder {
    complete: Vec<CompleteEvent>,
    counters: Vec<CounterEvent>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Add a duration event.
    pub fn add_complete(
        &mut self,
        name: impl Into<String>,
        category: impl Into<String>,
        track: impl Into<String>,
        start_s: f64,
        dur_s: f64,
        args: Vec<(String, Value)>,
    ) {
        self.complete.push(CompleteEvent {
            name: name.into(),
            category: category.into(),
            track: track.into(),
            start_s,
            dur_s,
            args,
        });
    }

    /// Add a counter sample.
    pub fn add_counter(
        &mut self,
        name: impl Into<String>,
        track: impl Into<String>,
        t_s: f64,
        series: Vec<(String, f64)>,
    ) {
        self.counters.push(CounterEvent { name: name.into(), track: track.into(), t_s, series });
    }

    /// All duration events added so far.
    pub fn complete_events(&self) -> &[CompleteEvent] {
        &self.complete
    }

    /// All counter samples added so far.
    pub fn counter_events(&self) -> &[CounterEvent] {
        &self.counters
    }

    /// Track names in first-appearance order (the tid assignment).
    pub fn tracks(&self) -> Vec<String> {
        let mut tracks: Vec<String> = Vec::new();
        for name in
            self.complete.iter().map(|e| &e.track).chain(self.counters.iter().map(|e| &e.track))
        {
            if !tracks.iter().any(|t| t == name) {
                tracks.push(name.clone());
            }
        }
        tracks
    }

    /// Render the Chrome trace JSON document. Timestamps convert to
    /// microseconds; events are emitted in insertion order (virtual time
    /// makes that deterministic).
    pub fn to_json(&self) -> String {
        let tracks = self.tracks();
        let tid_of = |track: &str| tracks.iter().position(|t| t == track).unwrap_or(0) + 1;
        let mut parts: Vec<String> = Vec::new();
        for (i, track) in tracks.iter().enumerate() {
            parts.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                json_escape(track),
            ));
        }
        for e in &self.complete {
            let mut args = String::new();
            if !e.args.is_empty() {
                let body: Vec<String> = e
                    .args
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.to_json()))
                    .collect();
                args = format!(",\"args\":{{{}}}", body.join(","));
            }
            parts.push(format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}{}}}",
                json_escape(&e.name),
                json_escape(&e.category),
                tid_of(&e.track),
                us(e.start_s),
                us(e.dur_s),
                args,
            ));
        }
        for c in &self.counters {
            let body: Vec<String> = c
                .series
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), trim_float(*v)))
                .collect();
            parts.push(format!(
                "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{{}}}}}",
                json_escape(&c.name),
                tid_of(&c.track),
                us(c.t_s),
                body.join(","),
            ));
        }
        format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", parts.join(","))
    }
}

/// Seconds → integer microseconds (Chrome's `ts`/`dur` unit).
fn us(seconds: f64) -> u64 {
    (seconds * 1.0e6).round().max(0.0) as u64
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn trace_renders_valid_json_with_named_tracks() {
        let mut b = TraceBuilder::new();
        b.add_complete("job 1", "galaxy", "jobs", 0.0, 2.5, vec![("tool".into(), "racon".into())]);
        b.add_complete("poa_kernel", "kernel", "gpu0", 0.5, 1.0, Vec::new());
        b.add_counter("sm_util", "gpu0", 0.5, vec![("gpu0".into(), 87.0)]);

        let doc = json::parse(&b.to_json()).expect("trace JSON parses");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        // 2 thread_name metadata + 2 complete + 1 counter.
        assert_eq!(events.len(), 5);
        let kernel = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("poa_kernel"))
            .unwrap();
        assert_eq!(kernel.get("ts").and_then(|v| v.as_f64()), Some(500000.0));
        assert_eq!(kernel.get("dur").and_then(|v| v.as_f64()), Some(1000000.0));
        // jobs track appeared first → tid 1; gpu0 → tid 2.
        assert_eq!(kernel.get("tid").and_then(|v| v.as_f64()), Some(2.0));
    }

    #[test]
    fn track_order_is_first_appearance() {
        let mut b = TraceBuilder::new();
        b.add_complete("a", "c", "t2", 0.0, 1.0, Vec::new());
        b.add_complete("b", "c", "t1", 0.0, 1.0, Vec::new());
        b.add_complete("c", "c", "t2", 1.0, 1.0, Vec::new());
        assert_eq!(b.tracks(), vec!["t2".to_string(), "t1".to_string()]);
    }
}
