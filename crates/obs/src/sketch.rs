//! Mergeable streaming quantile sketch + input-size binning.
//!
//! [`QuantileSketch`] is a DDSketch-style log-bucketed quantile summary:
//! values land in geometrically spaced buckets, so the sketch holds a
//! *relative-accuracy* guarantee (a quantile estimate is within
//! `2·alpha` of the true value, relatively) in bounded memory, and —
//! unlike t-digest or GK compaction — its merge is plain bucket-count
//! addition: exactly associative, exactly commutative, and
//! deterministic. That is the property the footprint pipeline needs:
//! per-shard sketches merged in any order must produce byte-identical
//! profiles on every replica.
//!
//! [`size_bucket`]/[`bucket_label`] provide the fixed power-of-two
//! input-size binning used to key per-tool footprint profiles: real
//! tool footprints vary with input size (rapids-singlecell's batching
//! observation), so profiles are learned per `(tool, size bucket)`,
//! not per tool alone.

use std::collections::BTreeMap;

/// Default relative accuracy: quantile estimates are within ~2% of the
/// true value. At this accuracy the bucket index range below caps the
/// sketch at a few thousand buckets regardless of stream length.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Bucket indices are clamped to this symmetric range, bounding memory
/// to `2 * MAX_BUCKET_INDEX + 2` buckets in the worst case. With the
/// default alpha this covers values from ~1e-9 to ~1e+12 before
/// saturating into the edge buckets.
const MAX_BUCKET_INDEX: i32 = 1 << 11;

/// A mergeable, bounded-memory streaming quantile sketch over
/// non-negative samples (memory footprints, runtimes).
///
/// Buckets are geometric: positive value `v` lands in bucket
/// `ceil(ln(v) / ln(gamma))` with `gamma = (1 + alpha) / (1 - alpha)`.
/// Zero (and any negative input, clamped) lands in a dedicated zero
/// bucket. Exact `min`/`max`/`sum`/`count` ride along so the edge
/// quantiles and the mean stay exact.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    gamma_ln: f64,
    buckets: BTreeMap<i32, u64>,
    zero_count: u64,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// A sketch with relative accuracy `alpha` (clamped to a sane
    /// range; see [`DEFAULT_ALPHA`]).
    pub fn new(alpha: f64) -> Self {
        let alpha = alpha.clamp(1e-4, 0.25);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma_ln: gamma.ln(),
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Record one sample. Non-finite samples are ignored; negatives are
    /// clamped to zero (footprints and runtimes are non-negative).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let value = value.max(0.0);
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= 0.0 {
            self.zero_count += 1;
        } else {
            let idx = self.bucket_index(value);
            *self.buckets.entry(idx).or_insert(0) += 1;
        }
    }

    fn bucket_index(&self, value: f64) -> i32 {
        let raw = (value.ln() / self.gamma_ln).ceil();
        (raw as i32).clamp(-MAX_BUCKET_INDEX, MAX_BUCKET_INDEX)
    }

    /// Representative value for a bucket: the geometric interior point
    /// `2·gamma^i / (gamma + 1)`, which is within `alpha` (relatively)
    /// of every value the bucket can hold.
    fn bucket_value(&self, idx: i32) -> f64 {
        let gamma = self.gamma_ln.exp();
        2.0 * (idx as f64 * self.gamma_ln).exp() / (gamma + 1.0)
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum sample (`None` while empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample (`None` while empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact running sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (`None` while empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`, clamped). Returns
    /// `None` while empty. Estimates are clamped into `[min, max]`, so
    /// `quantile(0.0)` and `quantile(1.0)` are exact.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return Some(self.max);
        }
        // 1-based target rank of the q-quantile in the sorted stream.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero_count;
        if seen >= target {
            return Some(0.0);
        }
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Some(self.bucket_value(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another sketch into this one. Requires equal `alpha`
    /// (panics otherwise — mixing accuracies silently would corrupt
    /// the error bound). Addition of bucket counts makes the merge
    /// exactly associative, commutative, and deterministic.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Buckets currently occupied (memory proxy; bounded by the index
    /// clamp regardless of stream length).
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.zero_count > 0)
    }
}

/// Fixed power-of-two input-size bucket index for a size in MiB:
/// bucket `b` covers `[2^b, 2^(b+1))` MiB, with sizes below 1 MiB in
/// bucket 0. Fixed (not data-driven) so the same input always lands in
/// the same profile row on every node and every run.
pub fn size_bucket(size_mib: u64) -> u32 {
    let s = size_mib.max(1);
    63 - s.leading_zeros()
}

/// Human-readable label for a [`size_bucket`] index, e.g. `"[4,8)MiB"`.
pub fn bucket_label(bucket: u32) -> String {
    let bucket = bucket.min(62);
    format!("[{},{})MiB", 1u64 << bucket, 1u64 << (bucket + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[f64]) -> QuantileSketch {
        let mut s = QuantileSketch::default();
        for &v in values {
            s.observe(v);
        }
        s
    }

    #[test]
    fn empty_sketch_answers_none() {
        let s = QuantileSketch::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn quantiles_are_within_relative_error() {
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let s = filled(&values);
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let exact = values[((q * values.len() as f64).ceil() as usize - 1).min(9_999)];
            let est = s.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 2.0 * s.alpha() + 1e-9, "q={q}: est {est} vs exact {exact} rel {rel}");
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(10_000.0));
    }

    #[test]
    fn merge_equals_observing_the_concatenation() {
        let a: Vec<f64> = (1..500).map(|i| (i as f64) * 1.7).collect();
        let b: Vec<f64> = (1..900).map(|i| (i as f64) * 0.3).collect();
        let mut left = filled(&a);
        left.merge(&filled(&b));
        let both = filled(&[a, b].concat());
        assert_eq!(left, both);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = filled(&[1.0, 5.0, 9.0]);
        let b = filled(&[2.0, 1_000.0]);
        let c = filled(&[0.0, 0.5, 77.7]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn zero_and_negative_samples_land_in_the_zero_bucket() {
        let s = filled(&[0.0, -3.0, 4.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let s = filled(&[f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), Some(2.0));
    }

    #[test]
    fn memory_stays_bounded_under_a_long_heavy_tailed_stream() {
        let mut s = QuantileSketch::default();
        let mut x = 1.0_f64;
        for i in 0..200_000u64 {
            // Deterministic multiplicative walk spanning many decades.
            x = (x * 1.618).rem_euclid(1e9) + 1e-6;
            s.observe(x + i as f64 * 1e-3);
        }
        assert_eq!(s.count(), 200_000);
        assert!(s.occupied_buckets() <= 2 * MAX_BUCKET_INDEX as usize + 2);
        assert!(s.occupied_buckets() < 4_000, "got {}", s.occupied_buckets());
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merging_mismatched_alphas_panics() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.05));
    }

    #[test]
    fn size_buckets_are_power_of_two_ranges() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 0);
        assert_eq!(size_bucket(2), 1);
        assert_eq!(size_bucket(3), 1);
        assert_eq!(size_bucket(4), 2);
        assert_eq!(size_bucket(1_023), 9);
        assert_eq!(size_bucket(1_024), 10);
        assert_eq!(bucket_label(0), "[1,2)MiB");
        assert_eq!(bucket_label(10), "[1024,2048)MiB");
    }
}
