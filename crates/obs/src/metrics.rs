//! Metrics registry: counters, gauges, histograms, and Prometheus text
//! exposition (plus a small exposition parser for tests and tooling).
//!
//! Metric keys may carry inline Prometheus labels —
//! `galaxy_jobs_total{state="ok"}` — which the exposition groups under
//! one `# TYPE` header per base name.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Histogram bucket upper bounds used when none are supplied: roughly
/// log-spaced from 1 ms to 100 s, suiting queue waits and phase times.
pub const DEFAULT_BUCKETS: [f64; 10] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0];

/// Counter bumped when [`Registry::observe_with_buckets`] is called with
/// bounds that disagree with the histogram's existing buckets.
pub const HISTOGRAM_BUCKET_CONFLICTS: &str = "obs_histogram_bucket_conflicts_total";

#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len()], sum: 0.0, count: 0 }
    }

    fn observe(&mut self, v: f64) {
        for (i, bound) in self.bounds.iter().enumerate() {
            if v <= *bound {
                self.counts[i] += 1;
            }
        }
        self.sum += v;
        self.count += 1;
    }
}

#[derive(Default)]
struct MetricsState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Optional help text, keyed by base metric name (labels stripped).
    help: BTreeMap<String, String>,
}

/// Thread-safe metrics registry; clone freely, all clones share state.
#[derive(Clone)]
pub struct Registry {
    state: Arc<Mutex<MetricsState>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry { state: Arc::new(Mutex::new(MetricsState::default())) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `by` to a monotonically increasing counter.
    pub fn inc_counter(&self, name: &str, by: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Register help text for a metric family. Keyed by base name
    /// (inline labels are stripped), rendered as a `# HELP` line ahead
    /// of the family's `# TYPE` header. Idempotent; the latest text
    /// wins.
    pub fn set_help(&self, name: &str, help: &str) {
        self.lock().help.insert(base_name(name).to_string(), help.to_string());
    }

    /// Registered help text for a metric family, if any.
    pub fn help_text(&self, name: &str) -> Option<String> {
        self.lock().help.get(base_name(name)).cloned()
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Adjust a gauge by a (possibly negative) delta.
    pub fn add_gauge(&self, name: &str, delta: f64) {
        *self.lock().gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Record an observation into a histogram with [`DEFAULT_BUCKETS`].
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with_buckets(name, value, &DEFAULT_BUCKETS);
    }

    /// Record an observation into a histogram with explicit bucket
    /// bounds (bounds are fixed by the first observation).
    ///
    /// Calling again under the same name with *different* bounds is a
    /// wiring bug: the observation still lands (in the original buckets,
    /// so `_count`/`_sum` stay truthful) but the conflict is surfaced via
    /// [`HISTOGRAM_BUCKET_CONFLICTS`] and a debug assertion instead of
    /// silently corrupting the bucket layout.
    pub fn observe_with_buckets(&self, name: &str, value: f64, bounds: &[f64]) {
        let mismatch = {
            let mut state = self.lock();
            let hist =
                state.histograms.entry(name.to_string()).or_insert_with(|| Histogram::new(bounds));
            let mismatch = hist.bounds != bounds;
            hist.observe(value);
            mismatch
        };
        if mismatch {
            self.inc_counter(HISTOGRAM_BUCKET_CONFLICTS, 1);
            debug_assert!(!mismatch, "histogram '{name}' observed with conflicting bucket bounds");
        }
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Number of observations in a histogram (0 when absent).
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.lock().histograms.get(name).map_or(0, |h| h.count)
    }

    /// Sum of observations in a histogram (0 when absent).
    pub fn histogram_sum(&self, name: &str) -> f64 {
        self.lock().histograms.get(name).map_or(0.0, |h| h.sum)
    }

    /// Estimate quantile `q` (clamped to `[0, 1]`) of a histogram via
    /// Prometheus-style linear interpolation within the cumulative
    /// bucket holding the target rank. Returns `None` for an absent or
    /// empty histogram. Ranks falling in the implicit `+Inf` bucket are
    /// clamped to the highest finite bound, as `histogram_quantile` does.
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<f64> {
        let state = self.lock();
        let h = state.histograms.get(name)?;
        if h.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * h.count as f64;
        let mut lower = 0.0f64;
        let mut prev = 0u64;
        for (bound, cum) in h.bounds.iter().zip(&h.counts) {
            if *cum as f64 >= rank && *cum > prev {
                let fraction = (rank - prev as f64) / (*cum - prev) as f64;
                return Some(lower + (bound - lower) * fraction);
            }
            lower = *bound;
            prev = *cum;
        }
        h.bounds.last().copied()
    }

    /// Render the whole registry in Prometheus text exposition format.
    ///
    /// Output is deterministic: metric families sorted by name, one
    /// `# HELP` (when registered via [`Registry::set_help`]) and one
    /// `# TYPE` header per base name (inline labels stripped).
    pub fn render_prometheus(&self) -> String {
        let state = self.lock();
        let help = &state.help;
        let mut out = String::new();
        let mut last_typed = String::new();
        let mut type_header = |out: &mut String, name: &str, kind: &str| {
            let base = base_name(name);
            if last_typed != base {
                if let Some(text) = help.get(base) {
                    out.push_str(&format!("# HELP {base} {}\n", escape_help(text)));
                }
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_typed = base.to_string();
            }
        };
        for (name, value) in &state.counters {
            type_header(&mut out, name, "counter");
            out.push_str(&format!("{} {value}\n", render_key(name)));
        }
        for (name, value) in &state.gauges {
            type_header(&mut out, name, "gauge");
            out.push_str(&format!("{} {}\n", render_key(name), format_value(*value)));
        }
        for (name, hist) in &state.histograms {
            type_header(&mut out, name, "histogram");
            let (base, raw_labels) = split_labels(name);
            let labels = render_label_body(&split_label_pairs(&raw_labels));
            // `counts[i]` already counts observations <= bounds[i], i.e.
            // buckets are stored cumulatively as Prometheus expects.
            for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                out.push_str(&format!(
                    "{base}_bucket{{{}le=\"{}\"}} {count}\n",
                    labels_prefix(&labels),
                    format_value(*bound),
                ));
            }
            out.push_str(&format!(
                "{base}_bucket{{{}le=\"+Inf\"}} {}\n",
                labels_prefix(&labels),
                hist.count
            ));
            let label_block =
                if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
            out.push_str(&format!("{base}_sum{label_block} {}\n", format_value(hist.sum)));
            out.push_str(&format!("{base}_count{label_block} {}\n", hist.count));
        }
        out
    }
}

/// Strip inline labels: `a_total{x="y"}` → `a_total`.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Split `name{labels}` into (name, labels-without-braces).
fn split_labels(name: &str) -> (&str, String) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}').to_string()),
        None => (name, String::new()),
    }
}

fn labels_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Re-render a stored metric key with its label values escaped for the
/// exposition format (`name{k="v"}` keys store values raw).
fn render_key(name: &str) -> String {
    match name.split_once('{') {
        None => name.to_string(),
        Some((base, rest)) => {
            let body = rest.trim_end_matches('}');
            format!("{base}{{{}}}", render_label_body(&split_label_pairs(body)))
        }
    }
}

/// Split a raw (unescaped) label body into key/value pairs.
///
/// Values are stored raw, so a `"` inside a value is only recognizable by
/// what follows it: the closing quote is the one whose remaining tail is
/// empty or starts the next `key="` pair. A raw value containing the
/// two-character sequence `","` stays genuinely ambiguous — callers
/// should not rely on it — but every single special character (`"`, `\`,
/// newline) round-trips.
fn split_label_pairs(body: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let Some((key, after)) = rest.split_once("=\"") else { break };
        let mut close = None;
        for (i, b) in after.bytes().enumerate() {
            if b == b'"' {
                let tail = after[i + 1..].trim_start();
                if tail.is_empty() || tail.starts_with(',') {
                    close = Some(i);
                    break;
                }
            }
        }
        let Some(close) = close else { break };
        pairs.push((key.trim().to_string(), after[..close].to_string()));
        let tail = after[close + 1..].trim_start();
        rest = tail.strip_prefix(',').unwrap_or(tail).trim_start();
    }
    pairs
}

/// Render label pairs as an exposition label body with escaped values.
fn render_label_body(pairs: &[(String, String)]) -> String {
    let rendered: Vec<String> =
        pairs.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    rendered.join(",")
}

/// Escape `# HELP` text per the Prometheus text format: backslash and
/// line-feed only (quotes stay literal in help text).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a label value per the Prometheus text format: backslash,
/// double-quote, and line-feed.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One sample parsed from Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (without labels).
    pub name: String,
    /// Label key/value pairs, in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// Look up a label by key.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parse Prometheus text exposition into samples; `#` lines are skipped,
/// malformed lines are errors.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {raw}", lineno + 1))?;
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {}: bad value '{value_part}'", lineno + 1))?;
        let (name, labels) = match name_part.split_once('{') {
            None => (name_part.to_string(), Vec::new()),
            Some((base, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels: {raw}", lineno + 1))?;
                (base.to_string(), parse_labels(body, lineno + 1)?)
            }
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {lineno}: bad metric name '{name}'", lineno = lineno + 1));
        }
        samples.push(PromSample { name, labels, value });
    }
    Ok(samples)
}

fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (key, after_key) =
            rest.split_once('=').ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let after_key = after_key
            .strip_prefix('"')
            .ok_or_else(|| format!("line {lineno}: unquoted label value"))?;
        // Escape-aware scan for the closing quote: `\"`, `\\`, and `\n`
        // unescape; unknown escapes are kept literally.
        let mut value = String::new();
        let mut close = None;
        let mut chars = after_key.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    close = Some(i);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, other)) => {
                        value.push('\\');
                        value.push(other);
                    }
                    None => {
                        return Err(format!("line {lineno}: dangling escape in label value"));
                    }
                },
                c => value.push(c),
            }
        }
        let close = close.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((key.trim().to_string(), value));
        rest = after_key[close + 1..].trim_start_matches(',').trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = Registry::new();
        reg.inc_counter("jobs_total", 2);
        reg.inc_counter("jobs_total", 1);
        reg.set_gauge("queue_depth", 4.0);
        reg.add_gauge("queue_depth", -4.0);
        reg.observe("wait_seconds", 0.004);
        reg.observe("wait_seconds", 0.2);
        reg.observe("wait_seconds", 50.0);

        assert_eq!(reg.counter_value("jobs_total"), 3);
        assert_eq!(reg.gauge_value("queue_depth"), Some(0.0));
        assert_eq!(reg.histogram_count("wait_seconds"), 3);
        assert!((reg.histogram_sum("wait_seconds") - 50.204).abs() < 1e-9);
    }

    #[test]
    fn exposition_renders_and_parses() {
        let reg = Registry::new();
        reg.inc_counter("jobs_total{state=\"ok\"}", 5);
        reg.inc_counter("jobs_total{state=\"error\"}", 1);
        reg.set_gauge("queue_depth", 0.0);
        reg.observe_with_buckets("wait_seconds", 0.05, &[0.01, 0.1, 1.0]);
        reg.observe_with_buckets("wait_seconds", 0.5, &[0.01, 0.1, 1.0]);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("# TYPE wait_seconds histogram"));

        let samples = parse_prometheus(&text).expect("exposition parses");
        let ok = samples
            .iter()
            .find(|s| s.name == "jobs_total" && s.label("state") == Some("ok"))
            .unwrap();
        assert_eq!(ok.value, 5.0);
        let depth = samples.iter().find(|s| s.name == "queue_depth").unwrap();
        assert_eq!(depth.value, 0.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "wait_seconds_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 2.0);
        let count = samples.iter().find(|s| s.name == "wait_seconds_count").unwrap();
        assert_eq!(count.value, 2.0);
        // Buckets are cumulative: le=0.1 holds the 0.05 observation only.
        let b01 = samples
            .iter()
            .find(|s| s.name == "wait_seconds_bucket" && s.label("le") == Some("0.1"))
            .unwrap();
        assert_eq!(b01.value, 1.0);
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let reg = Registry::new();
        // A value with every special character: quote, backslash, newline.
        reg.inc_counter("paths_total{path=\"a\\b\"c\nd\"}", 3);
        reg.set_gauge("last_error{msg=\"said \"no\"\"}", 1.0);
        reg.observe_with_buckets("tool_seconds{tool=\"racon \\ gpu\"}", 0.5, &[1.0]);

        let text = reg.render_prometheus();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(!line.contains('\n'), "raw newline leaked into exposition: {line:?}");
        }
        let samples = parse_prometheus(&text).expect("escaped exposition parses");
        let path = samples.iter().find(|s| s.name == "paths_total").unwrap();
        assert_eq!(path.label("path"), Some("a\\b\"c\nd"));
        assert_eq!(path.value, 3.0);
        let msg = samples.iter().find(|s| s.name == "last_error").unwrap();
        assert_eq!(msg.label("msg"), Some("said \"no\""));
        let bucket = samples
            .iter()
            .find(|s| s.name == "tool_seconds_bucket" && s.label("le") == Some("1"))
            .unwrap();
        assert_eq!(bucket.label("tool"), Some("racon \\ gpu"));
        assert_eq!(bucket.value, 1.0);
    }

    #[test]
    fn help_lines_precede_type_headers_and_escape() {
        let reg = Registry::new();
        reg.set_help("jobs_total", "Jobs admitted, by state.");
        reg.set_help("wait_seconds", "Queue wait.\nSecond \\ line.");
        reg.inc_counter("jobs_total{state=\"ok\"}", 1);
        reg.inc_counter("jobs_total{state=\"error\"}", 2);
        reg.inc_counter("unhelped_total", 1);
        reg.observe_with_buckets("wait_seconds", 0.5, &[1.0]);

        let text = reg.render_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let help_at = lines
            .iter()
            .position(|l| *l == "# HELP jobs_total Jobs admitted, by state.")
            .expect("help line present");
        assert_eq!(lines[help_at + 1], "# TYPE jobs_total counter");
        // One HELP per family, even with two labeled series.
        assert_eq!(lines.iter().filter(|l| l.starts_with("# HELP jobs_total")).count(), 1);
        assert!(lines.contains(&"# HELP wait_seconds Queue wait.\\nSecond \\\\ line."), "{text}");
        assert!(!text.contains("# HELP unhelped_total"));
        // Help keyed by base name works when set with a labeled key too.
        reg.set_help("other_total{a=\"b\"}", "By base.");
        assert_eq!(reg.help_text("other_total"), Some("By base.".to_string()));
        parse_prometheus(&text).expect("help lines do not break the parser");
    }

    #[test]
    fn histogram_exposition_conformance_round_trips() {
        let reg = Registry::new();
        reg.set_help("conf_seconds", "Conformance histogram.");
        for v in [0.05, 0.5, 5.0] {
            reg.observe_with_buckets("conf_seconds{tool=\"racon\"}", v, &[0.1, 1.0]);
        }
        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).expect("exposition parses");
        let series: Vec<&PromSample> =
            samples.iter().filter(|s| s.name.starts_with("conf_seconds")).collect();
        // Exactly the conformant series set: every finite bucket, a
        // terminal +Inf bucket, then _sum and _count.
        let names: Vec<&str> = series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "conf_seconds_bucket",
                "conf_seconds_bucket",
                "conf_seconds_bucket",
                "conf_seconds_sum",
                "conf_seconds_count"
            ]
        );
        let buckets: Vec<&&PromSample> =
            series.iter().filter(|s| s.name == "conf_seconds_bucket").collect();
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        // Buckets are cumulative and +Inf equals _count.
        let cum: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "{cum:?}");
        let count = series.iter().find(|s| s.name == "conf_seconds_count").unwrap();
        assert_eq!(buckets.last().unwrap().value, count.value);
        assert_eq!(count.value, 3.0);
        let sum = series.iter().find(|s| s.name == "conf_seconds_sum").unwrap();
        assert!((sum.value - 5.55).abs() < 1e-9);
        // Labels survive on every series of the family.
        assert!(buckets.iter().all(|s| s.label("tool") == Some("racon")));
    }

    #[test]
    fn conflicting_bucket_bounds_are_surfaced() {
        let reg = Registry::new();
        reg.observe_with_buckets("mixed_seconds", 0.5, &[1.0, 2.0]);
        let conflict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.observe_with_buckets("mixed_seconds", 0.5, &[3.0]);
        }));
        // Debug builds assert; release builds keep going. Either way the
        // conflict counter ticks, the observation lands, and the original
        // bucket layout survives.
        assert_eq!(conflict.is_err(), cfg!(debug_assertions));
        assert_eq!(reg.counter_value(HISTOGRAM_BUCKET_CONFLICTS), 1);
        assert_eq!(reg.histogram_count("mixed_seconds"), 2);
        let text = reg.render_prometheus();
        assert!(text.contains("mixed_seconds_bucket{le=\"2\"}"), "{text}");
        assert!(!text.contains("mixed_seconds_bucket{le=\"3\"}"), "{text}");
        // Matching bounds never trip it.
        reg.observe_with_buckets("mixed_seconds", 0.1, &[1.0, 2.0]);
        assert_eq!(reg.counter_value(HISTOGRAM_BUCKET_CONFLICTS), 1);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let reg = Registry::new();
        for v in [0.5, 1.5, 3.0, 3.5] {
            reg.observe_with_buckets("lat", v, &[1.0, 2.0, 4.0]);
        }
        // rank 2 lands exactly on the le=2 cumulative boundary.
        assert_eq!(reg.histogram_quantile("lat", 0.5), Some(2.0));
        // rank 3 is halfway through the (2, 4] bucket's two observations.
        assert_eq!(reg.histogram_quantile("lat", 0.75), Some(3.0));
        // rank 0 interpolates to the first bucket's lower edge.
        assert_eq!(reg.histogram_quantile("lat", 0.0), Some(0.0));
    }

    #[test]
    fn quantile_exact_boundary_hits_the_bound() {
        let reg = Registry::new();
        reg.observe_with_buckets("exact", 1.0, &[1.0, 2.0]);
        // Every rank falls in the first bucket; its upper bound is the
        // only information the histogram retains.
        assert_eq!(reg.histogram_quantile("exact", 1.0), Some(1.0));
        assert_eq!(reg.histogram_quantile("exact", 0.5), Some(0.5));
    }

    #[test]
    fn quantile_inf_bucket_clamps_to_highest_finite_bound() {
        let reg = Registry::new();
        reg.observe_with_buckets("spill", 100.0, &[1.0, 2.0]);
        reg.observe_with_buckets("spill", 0.5, &[1.0, 2.0]);
        // p99 lives in the +Inf region: clamp to le=2 like Prometheus.
        assert_eq!(reg.histogram_quantile("spill", 0.99), Some(2.0));
        // Out-of-range q is clamped, not an error.
        assert_eq!(reg.histogram_quantile("spill", 7.0), Some(2.0));
    }

    #[test]
    fn quantile_of_empty_or_absent_histogram_is_none() {
        let reg = Registry::new();
        assert_eq!(reg.histogram_quantile("nope", 0.5), None);
        // A histogram that exists but has never observed anything would
        // need an explicit zero-observation path; the registry only
        // creates histograms on observe, so absence covers it — but an
        // all-below-zero rank must not divide by zero either.
        reg.observe_with_buckets("one", 5.0, &[1.0]);
        assert_eq!(reg.histogram_quantile("one", 0.5), Some(1.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("name_without_value\n").is_err());
        assert!(parse_prometheus("bad-name 1\n").is_err());
        assert!(parse_prometheus("name{unterminated 1\n").is_err());
        assert!(parse_prometheus("# comment only\n").unwrap().is_empty());
    }

    #[test]
    fn registry_is_shared_across_clones() {
        let reg = Registry::new();
        let clones: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        reg.inc_counter("shared_total", 1);
                    }
                })
            })
            .collect();
        for c in clones {
            c.join().unwrap();
        }
        assert_eq!(reg.counter_value("shared_total"), 400);
    }
}
