//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly (a poisoned lock is
//! recovered rather than propagated), and `Condvar::wait` takes the guard
//! by `&mut` as parking_lot does.

use std::ops::{Deref, DerefMut};

/// A mutual exclusion primitive (non-poisoning `lock()` API).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so
/// [`Condvar::wait`] can temporarily take ownership, as parking_lot's
/// `&mut`-guard wait API requires.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable with parking_lot's `&mut`-guard wait API.
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until `condition` returns false (parking_lot's `wait_while`).
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
        assert!(*done);
        drop(done);
        handle.join().unwrap();
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
