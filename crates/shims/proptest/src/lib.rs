//! Offline stand-in for the `proptest` crate.
//!
//! Covers the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_recursive`,
//! string-literal strategies over a regex subset (char classes with
//! `{m,n}` quantifiers), integer-range strategies, tuple composition,
//! `prop::collection::vec`, `prop::option::of`, `any::<T>()`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design: cases are generated from a
//! deterministic per-test seed, and failing inputs are *not* shrunk — the
//! panic message carries the case's seed instead so a failure can be
//! replayed. Persisted `*.proptest-regressions` files (real proptest's
//! failure-seed format) *are* honored: the `cc <hex>` seeds next to the
//! test's source file are folded to 64-bit seeds and replayed before any
//! novel cases are generated.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::{Rng, SeedableRng};

/// RNG driving case generation (deterministic per test + case index).
pub type TestRng = rand::rngs::StdRng;

/// Marker returned by `prop_assume!` when a case does not satisfy the
/// assumption and must be skipped.
#[derive(Debug)]
pub struct Rejected;

/// Default number of generated cases per property.
const CASES: usize = 64;

/// Per-block configuration, set with real proptest's
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header inside a
/// `proptest!` block. Only the case count is modelled.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Accepted cases to run per property.
    pub cases: usize,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

/// Maximum retries inside `prop_filter` before giving up on a strategy.
const FILTER_RETRIES: usize = 1000;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, re-generating otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// previous depth level and wraps it one level deeper, applied `depth`
    /// times starting from `self` as the leaf level. The `_desired_size` /
    /// `_expected_branch_size` tuning knobs of real proptest are accepted
    /// but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected {FILTER_RETRIES} values in a row", self.whence);
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_num {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// String strategies from a regex subset
// ---------------------------------------------------------------------------

/// One pattern atom: a set of candidate chars and a repetition range.
struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the regex subset the workspace uses: literal chars, escapes
/// (`\n`, `\t`, `\r`, `\\`, and escaped metachars), char classes with
/// ranges (`[a-zA-Z_.-]`), and `{n}` / `{m,n}` quantifiers.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    let unescape = |c: char| match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    };
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // A '-' between two class members denotes a range;
                    // trailing '-' (right before ']') is a literal.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        assert!(lo <= hi, "bad char range {lo}-{hi} in pattern {pattern}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(lo);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in pattern {pattern}");
                i += 1; // consume ']'
                set
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![c]
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' => {
                panic!("unsupported regex construct '{}' in pattern {pattern}", chars[i])
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!set.is_empty(), "empty char class in pattern {pattern}");
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier {{{min},{max}}} in pattern {pattern}");
        atoms.push(PatternAtom { chars: set, min, max });
    }
    atoms
}

fn generate_from_pattern(atoms: &[PatternAtom], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        // Parsing per value keeps `&str` a zero-state strategy; patterns
        // here are tiny, so the cost is negligible next to the test body.
        generate_from_pattern(&parse_pattern(self), rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(&parse_pattern(self), rng)
    }
}

// ---------------------------------------------------------------------------
// prop:: namespace
// ---------------------------------------------------------------------------

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Ranges usable as a collection-size specification.
        pub trait SizeRange {
            /// Draw one length from the range.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        /// Strategy producing `Vec`s whose length is drawn from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy producing `None` or `Some` of the inner strategy,
        /// roughly evenly.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rand::Rng::gen_bool(rng, 0.5) {
                    Some(self.inner.new_value(rng))
                } else {
                    None
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner + macros
// ---------------------------------------------------------------------------

/// Stable 64-bit hash of the test name, used to decorrelate the case
/// streams of different properties.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Parse the `cc <64-hex-char>` lines of a proptest regression file into
/// replayable seeds. Real proptest persists a 32-byte RNG seed per
/// failure; this shim's RNG takes a `u64`, so the 32 bytes are folded by
/// XORing their big-endian 8-byte words. Lines that are comments or
/// malformed are skipped.
pub fn parse_regression_seeds(text: &str) -> Vec<u64> {
    text.lines()
        .filter_map(|line| {
            let token = line.trim().strip_prefix("cc ")?.split_whitespace().next()?;
            if token.len() != 64 || !token.bytes().all(|b| b.is_ascii_hexdigit()) {
                return None;
            }
            token
                .as_bytes()
                .chunks(16)
                .map(|word| u64::from_str_radix(std::str::from_utf8(word).ok()?, 16).ok())
                .try_fold(0u64, |acc, word| Some(acc ^ word?))
        })
        .collect()
}

/// Seeds persisted next to `source_file` (its sibling
/// `<stem>.proptest-regressions`, real proptest's location). A missing or
/// unreadable file is a silent no-op — most tests have no regressions.
fn regression_seeds_for(source_file: &str) -> Vec<u64> {
    let path = std::path::Path::new(source_file).with_extension("proptest-regressions");
    match std::fs::read_to_string(path) {
        Ok(text) => parse_regression_seeds(&text),
        Err(_) => Vec::new(),
    }
}

/// Drive one property: replay any persisted regression seeds for
/// `source_file` (pass `file!()`), then run the default number of
/// accepted cases, skipping rejected ones (with a cap so a vacuous
/// assumption still fails loudly).
pub fn run_proptest<F>(name: &str, source_file: &str, case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), Rejected>,
{
    run_proptest_with(name, source_file, ProptestConfig::default(), case);
}

/// [`run_proptest`] with an explicit [`ProptestConfig`] (case count).
pub fn run_proptest_with<F>(name: &str, source_file: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), Rejected>,
{
    // Replayed regression seeds run first and do not count toward the
    // accepted-case budget: they are extra insurance, not a substitute
    // for fresh generation.
    for seed in regression_seeds_for(source_file) {
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest '{name}' failed replaying persisted regression seed {seed} \
                 (from {source_file} regressions)"
            );
            std::panic::resume_unwind(payload);
        }
    }

    let cases = config.cases.max(1);
    let base = fnv1a(name);
    let mut accepted = 0usize;
    let mut index = 0u64;
    let budget = (cases * 20) as u64;
    while accepted < cases && index < budget {
        let seed = base ^ index;
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(Rejected)) => {}
            Err(payload) => {
                eprintln!("proptest '{name}' failed at case seed {seed} (replay with this seed)");
                std::panic::resume_unwind(payload);
            }
        }
        index += 1;
    }
    assert!(accepted > 0, "proptest '{name}': every generated case was rejected by prop_assume!");
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest_with(stringify!($name), file!(), $config, |rng| {
                $(let $parm = $crate::Strategy::new_value(&($strategy), &mut *rng);)+
                // `mut` is needed only when the body mutates its captures;
                // harmless otherwise.
                #[allow(unused_mut)]
                let mut case = move || -> ::std::result::Result<(), $crate::Rejected> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(stringify!($name), file!(), |rng| {
                $(let $parm = $crate::Strategy::new_value(&($strategy), &mut *rng);)+
                // `mut` is needed only when the body mutates its captures;
                // harmless otherwise.
                #[allow(unused_mut)]
                let mut case = move || -> ::std::result::Result<(), $crate::Rejected> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
    )*};
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn configured_case_count_is_respected() {
        let mut count = 0usize;
        super::run_proptest_with("cfg", file!(), super::ProptestConfig::with_cases(10), |_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn regression_seeds_parse_the_persisted_format() {
        let text = "# Seeds for failure cases proptest has generated in the past.\n\
                    cc 5f689e7c6d6d6aac3cda2e35c0e6104fb21cc97741055a9946923dc4fed4b2e8 # shrinks to x = 0\n\
                    cc nothex # malformed\n\
                    cc 5f689e7c6d6d6aac # too short\n\
                    xx 5f689e7c6d6d6aac3cda2e35c0e6104fb21cc97741055a9946923dc4fed4b2e8\n";
        let seeds = super::parse_regression_seeds(text);
        let folded = 0x5f68_9e7c_6d6d_6aacu64
            ^ 0x3cda_2e35_c0e6_104fu64
            ^ 0xb21c_c977_4105_5a99u64
            ^ 0x4692_3dc4_fed4_b2e8u64;
        assert_eq!(seeds, vec![folded]);
    }

    #[test]
    fn persisted_regressions_replay_before_fresh_cases() {
        // Stage a regression file where `file!()`-style resolution finds
        // it: sibling of the claimed source path, same stem.
        let dir = std::env::temp_dir().join(format!("proptest_shim_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let source = dir.join("replay_case.rs");
        std::fs::write(
            dir.join("replay_case.proptest-regressions"),
            "cc 0000000000000000000000000000000000000000000000000000000000000123 # shrinks\n",
        )
        .unwrap();

        let mut draws: Vec<u64> = Vec::new();
        super::run_proptest_with(
            "replay",
            source.to_str().unwrap(),
            super::ProptestConfig::with_cases(2),
            |rng| {
                draws.push(rand::Rng::gen(rng));
                Ok(())
            },
        );
        std::fs::remove_dir_all(&dir).ok();

        // One replayed case + two fresh ones, replay first, seeded by the
        // folded persisted bytes (0x123 here).
        assert_eq!(draws.len(), 3, "replay must not count toward the case budget");
        let expected: u64 = rand::Rng::gen(&mut TestRng::seed_from_u64(0x123));
        assert_eq!(draws[0], expected, "first case must come from the persisted seed");
    }

    #[test]
    fn missing_regression_file_is_a_silent_noop() {
        let mut count = 0usize;
        super::run_proptest_with(
            "no_file",
            "/nonexistent/path/nowhere.rs",
            super::ProptestConfig::with_cases(4),
            |_rng| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_header_parses(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn string_pattern_char_class_and_quantifier() {
        let strat = "[a-c]{2,5}";
        let mut r = rng();
        for _ in 0..200 {
            let s = Strategy::new_value(&strat, &mut r);
            assert!((2..=5).contains(&s.len()), "bad len {}", s.len());
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "bad char in {s}");
        }
    }

    #[test]
    fn string_pattern_escapes_and_literals() {
        let strat = "[\\[\\]x-]{1,8}";
        let mut r = rng();
        for _ in 0..100 {
            let s = Strategy::new_value(&strat, &mut r);
            assert!(s.chars().all(|c| matches!(c, '[' | ']' | 'x' | '-')), "bad char in {s:?}");
        }
        let lit = "ab[01]{3}";
        let s = Strategy::new_value(&lit, &mut r);
        assert!(s.starts_with("ab") && s.len() == 5, "bad literal expansion {s:?}");
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        struct Tree {
            children: Vec<Tree>,
        }
        fn depth(t: &Tree) -> usize {
            1 + t.children.iter().map(depth).max().unwrap_or(0)
        }
        let leaf = Just(()).prop_map(|_| Tree { children: Vec::new() });
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(|children| Tree { children })
        });
        let mut r = rng();
        for _ in 0..50 {
            let t = Strategy::new_value(&strat, &mut r);
            assert!(depth(&t) <= 4, "recursion exceeded depth bound: {}", depth(&t));
        }
    }

    #[test]
    fn filter_and_map_compose() {
        let strat = (0u32..100).prop_map(|v| v * 2).prop_filter("nonzero", |v| *v > 0);
        let mut r = rng();
        for _ in 0..100 {
            let v = Strategy::new_value(&strat, &mut r);
            assert!(v > 0 && v % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn macro_generates_and_assumes(v in 0u32..10, flip in any::<bool>()) {
            prop_assume!(v != 3);
            prop_assert!(v < 10);
            prop_assert_ne!(v, 3);
            let _ = flip;
        }

        #[test]
        fn macro_handles_tuples_and_vecs(
            pairs in prop::collection::vec(("[a-z]{1,4}", 0usize..9), 0..6),
            maybe in prop::option::of(0i64..5),
        ) {
            for (s, n) in &pairs {
                prop_assert!(!s.is_empty() && s.len() <= 4);
                prop_assert!(*n < 9);
            }
            if let Some(m) = maybe {
                prop_assert!((0..5).contains(&m));
            }
        }
    }
}
