//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly what this workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen_range` (half-open and inclusive ranges over the primitive numeric
//! types) and `gen` (uniform `f32`/`f64` in `[0,1)`, `bool`, and full-range
//! integers). The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic for a given seed, which is all the simulations require
//! (no call site depends on the exact stream of the real crate).

use std::ops::{Range, RangeInclusive};

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface: a 64-bit core plus derived methods.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (`low..high` or `low..=high`). The output
    /// type is a trait parameter so numeric literals infer from context,
    /// as with the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform value of a primitive type (floats land in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// xoshiro256** — the workspace's deterministic standard generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding procedure.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one uniform value (panics on an empty range).
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types `Rng::gen` can produce from raw bits.
pub trait Standard {
    /// Build a uniform value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
        impl Standard for $t {
            fn from_bits(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sampling {
    ($($t:ty => $unit:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = $unit(rng.next_u64());
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = $unit(rng.next_u64());
                start + (end - start) * unit
            }
        }
        impl Standard for $t {
            fn from_bits(bits: u64) -> $t {
                $unit(bits)
            }
        }
    )*};
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    // 24 high bits → [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_float_sampling!(f64 => unit_f64, f32 => unit_f32);

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let x: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let s: f32 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&s));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<f64> = (0..2000).map(|_| rng.gen()).collect();
        let below = draws.iter().filter(|v| **v < 0.5).count();
        assert!((700..1300).contains(&below), "skewed: {below}/2000 below 0.5");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5);
    }
}
