//! Offline stand-in for the `rayon` crate.
//!
//! Real data parallelism over `std::thread::scope`, covering the adapters
//! this workspace uses: `par_iter().map(..).collect()`,
//! `par_iter_mut().for_each(..)`, `par_chunks_mut(n).enumerate()
//! .for_each(..)`, and `ThreadPoolBuilder` + `ThreadPool::install`.
//!
//! `install` sets a thread-local degree of parallelism consulted by the
//! adapters, mirroring how rayon's pool scoping steers `par_iter` inside
//! an `install` closure. Work is split into one contiguous chunk per
//! worker, so results are collected in input order.

use std::cell::Cell;

thread_local! {
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn current_threads() -> usize {
    let configured = POOL_THREADS.with(|c| c.get());
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (construction cannot fail
/// in the shim, but the signature keeps call sites source-compatible).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl ThreadPoolBuilder {
    /// Start a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` worker threads (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A handle fixing the degree of parallelism for work run via
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count steering the parallel
    /// adapters invoked inside it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let result = op();
            c.set(prev);
            result
        })
    }

    /// The configured thread count (machine default when unset).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// The rayon prelude: extension traits putting `par_iter` & friends on
/// slices and `Vec`s.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut};
}

/// `par_iter()` on shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// `par_iter_mut()` on exclusive slices.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type yielded by mutable reference.
    type Item: Send + 'a;
    /// A parallel iterator over `&mut Self::Item`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// `par_chunks_mut()` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk_size }
    }
}

/// Parallel shared iterator (see [`IntoParallelRefIterator`]).
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element in parallel; results keep input order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { slice: self.slice, f }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        self.map(f).collect::<Vec<()>>();
    }
}

/// Mapped parallel iterator; terminal `collect` runs the work.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Execute the map over scoped worker threads and collect in order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let threads = current_threads().max(1);
        let n = self.slice.len();
        if threads == 1 || n <= 1 {
            return self.slice.iter().map(&self.f).collect::<Vec<R>>().into();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut parts: Vec<(usize, Vec<R>)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .enumerate()
                .map(|(i, part)| scope.spawn(move || (i, part.iter().map(f).collect::<Vec<R>>())))
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel worker panicked"));
            }
        });
        parts.sort_by_key(|(i, _)| *i);
        parts.into_iter().flat_map(|(_, v)| v).collect::<Vec<R>>().into()
    }
}

/// Parallel exclusive iterator (see [`IntoParallelRefMutIterator`]).
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParIterMut<'_, T> {
    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let threads = current_threads().max(1);
        let n = self.slice.len();
        if threads == 1 || n <= 1 {
            for item in self.slice {
                f(item);
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            for part in self.slice.chunks_mut(chunk) {
                scope.spawn(move || {
                    for item in part {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Parallel mutable-chunk iterator (see [`ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
        EnumeratedChunksMut { slice: self.slice, chunk_size: self.chunk_size }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel mutable-chunk iterator.
pub struct EnumeratedChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumeratedChunksMut<'_, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let threads = current_threads().max(1);
        let chunks: Vec<(usize, &mut [T])> =
            self.slice.chunks_mut(self.chunk_size).enumerate().collect();
        if threads == 1 || chunks.len() <= 1 {
            for pair in chunks {
                f(pair);
            }
            return;
        }
        let per_worker = chunks.len().div_ceil(threads);
        let f = &f;
        let mut remaining = chunks;
        std::thread::scope(|scope| {
            while !remaining.is_empty() {
                let take = per_worker.min(remaining.len());
                let batch: Vec<(usize, &mut [T])> = remaining.drain(..take).collect();
                scope.spawn(move || {
                    for pair in batch {
                        f(pair);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|v| v * 2).collect();
        assert_eq!(doubled, (0..1000).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_element() {
        let mut data = vec![1u32; 513];
        data.par_iter_mut().for_each(|v| *v += 1);
        assert!(data.iter().all(|v| *v == 2));
    }

    #[test]
    fn chunks_mut_enumerate_sees_every_chunk_once() {
        let mut data = vec![0usize; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i + 1;
            }
        });
        // Chunk k covers elements [7k, 7k+7): every element labeled.
        for (pos, v) in data.iter().enumerate() {
            assert_eq!(*v, pos / 7 + 1);
        }
    }

    #[test]
    fn pool_install_limits_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let out: Vec<i32> = pool.install(|| vec![3, 1, 2].par_iter().map(|v| v * 10).collect());
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn parallelism_actually_overlaps() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let live = AtomicU32::new(0);
        let peak = AtomicU32::new(0);
        let items: Vec<u32> = (0..8).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            items
                .par_iter()
                .map(|_| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
                .collect::<Vec<()>>()
        });
        assert!(peak.load(Ordering::SeqCst) >= 2, "no overlap observed");
    }
}
