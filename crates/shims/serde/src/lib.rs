//! Offline stand-in for the `serde` crate.
//!
//! The workspace uses serde purely as a *capability marker*: types derive
//! `Serialize`/`Deserialize` to document that they are wire-safe, and one
//! test asserts the bounds hold. No format backend (serde_json etc.) is in
//! the dependency tree, so the traits here carry no methods — deriving them
//! preserves the type-level contract without the data-model machinery.

// The derives emit `impl serde::Serialize for ...`; make that path resolve
// inside this crate too (same device the real serde uses for its tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data.
pub trait Deserialize<'de>: Sized {}

/// Namespace mirror of `serde::de`.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {}
impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        #[allow(dead_code)]
        x: u32,
        #[allow(dead_code)]
        name: String,
    }

    #[derive(Serialize, Deserialize)]
    enum Kind {
        #[allow(dead_code)]
        A,
        #[allow(dead_code)]
        B(u64),
    }

    fn assert_owned<T: Serialize + de::DeserializeOwned>() {}

    #[test]
    fn derives_satisfy_bounds() {
        assert_owned::<Plain>();
        assert_owned::<Kind>();
        assert_owned::<Vec<Plain>>();
        assert_owned::<Option<Kind>>();
        assert_owned::<std::collections::HashMap<String, Plain>>();
    }
}
