//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — a
//! multi-producer **multi-consumer** FIFO channel (std's mpsc receiver is
//! single-consumer, so the handler pool's cloned receivers need this) with
//! crossbeam's disconnect semantics: `recv` fails once every sender is
//! dropped and the queue is drained; `send` fails once every receiver is
//! dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely (every message goes to exactly one
    /// receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug regardless of whether T is (the payload
    // is elided), so `.expect()` works on send results of any type.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still alive).
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake blocked receivers so they can observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next message, blocking while the channel is empty and
        /// senders remain.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn multi_consumer_each_message_delivered_once() {
        let (tx, rx) = unbounded::<u32>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }
}
