//! Offline stand-in for the `criterion` crate.
//!
//! Implements the bench-file API this workspace uses (`Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!`) with a simple
//! wall-clock harness: warm up briefly, run `sample_size` samples of an
//! auto-calibrated iteration count, report median time per iteration plus
//! derived throughput. No statistics machinery, no report files — enough
//! to compare kernels by eye and to keep `--benches` targets compiling.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements (e.g. FLOPs) processed per iteration.
    Elements(u64),
}

/// A benchmark's display name within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The benchmark manager handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None, sample_size: 30 }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput basis.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Run a benchmark that closes over an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// End the group (kept for API parity; reporting happens per bench).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: calibrate an iteration count to ~5 ms per
    /// sample, then record `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the per-sample iteration count until one
        // sample takes long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let secs = median.as_secs_f64();
        let rate = match throughput {
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  {:>10.2} Melem/s", n as f64 / secs / 1.0e6)
            }
            _ => String::new(),
        };
        println!("{group}/{id:<40} median {median:>12.3?}{rate}");
    }
}

/// Opaque value sink preventing the optimizer from deleting the routine.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(64));
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("full", 250).to_string(), "full/250");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
