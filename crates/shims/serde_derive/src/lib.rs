//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` shim's traits are pure markers, so these derives
//! only need the item's name: they scan the token stream for the ident
//! following `struct`/`enum`/`union` and emit empty trait impls. Written
//! against `proc_macro` directly — `syn`/`quote` are unavailable offline.
//! Generic items are unsupported (no workspace type needs them).

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name: the identifier right after the first
/// `struct`/`enum`/`union` keyword at the top level of the item.
fn item_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    // Attribute/visibility punctuation and groups are skipped.
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return text;
            }
            if text == "struct" || text == "enum" || text == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde derive shim: could not find item name in input");
}

/// Derive the marker `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl serde::Serialize for {name} {{}}").parse().expect("valid impl tokens")
}

/// Derive the marker `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}").parse().expect("valid impl tokens")
}
