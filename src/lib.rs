//! # gyan-repro
//!
//! Facade crate for the GYAN reproduction workspace. Re-exports every
//! member crate so examples and integration tests can depend on a single
//! package:
//!
//! * [`gyan`] — the paper's contribution: GPU-aware computation mapping.
//! * [`fleet`] — sharded multi-node placement over heterogeneous GPU
//!   architectures (the layer above [`gyan`]'s single-node mapper).
//! * [`galaxy`] — the Galaxy-workalike job framework substrate.
//! * [`gpusim`] — the GPU cluster simulator substrate.
//! * [`seqtools`] — Racon/Bonito-style tools and sequence data substrates.
//! * [`xmlparse`] — the XML substrate.

pub use fleet;
pub use galaxy;
pub use gpusim;
pub use gyan;
pub use seqtools;
pub use xmlparse;
