//! Multi-GPU computation mapping: reproduce the paper's four case
//! studies interactively (§VI-C, Figs. 8–11).
//!
//! Run with: `cargo run --release --example multi_gpu_cluster`

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::{smi, GpuCluster};
use gyan::allocation::AllocationPolicy;
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

/// A GPU tool wrapper pinned to specific device IDs via the requirement's
/// `version` tag (paper §IV-C: "the 'version' tag corresponds to the GPU
/// minor ID(s)").
fn pinned_tool(id: &str, executable: &str, gpu_ids: &str, dataset: &str) -> String {
    format!(
        r#"<tool id="{id}" name="{id}">
          <requirements><requirement type="compute" version="{gpu_ids}">gpu</requirement></requirements>
          <command>{executable} -t 4 {dataset} > out</command>
        </tool>"#
    )
}

fn testbed(policy: AllocationPolicy) -> (GpuCluster, GalaxyApp, Arc<ToolExecutor>) {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    // Linger mode: jobs stay resident on their GPUs, emulating
    // long-running concurrent tools as in the paper's snapshots.
    let executor = Arc::new(ToolExecutor::new(&cluster).with_linger());
    executor.register_dataset(DatasetSpec {
        name: "small_pacbio",
        genome_len: 2_000,
        n_reads: 16,
        read_len: 1_500,
        ..DatasetSpec::alzheimers_nfl()
    });
    executor.register_dataset(DatasetSpec {
        name: "small_fast5",
        genome_len: 2_000,
        n_reads: 3,
        read_len: 400,
        ..DatasetSpec::acinetobacter_pittii()
    });
    app.set_executor(Box::new(executor.clone()));
    let config = GyanConfig { policy, ..GyanConfig::default() };
    install_gyan(&mut app, &cluster, config);

    let lib = MacroLibrary::new();
    app.install_tool_xml(&pinned_tool("racon_dev0", "racon_gpu", "0", "small_pacbio"), &lib)
        .unwrap();
    app.install_tool_xml(
        &pinned_tool("bonito_dev1", "bonito basecaller", "1", "small_fast5"),
        &lib,
    )
    .unwrap();
    (cluster, app, executor)
}

fn mask(app: &GalaxyApp, id: u64) -> String {
    app.job(id).unwrap().env_var("CUDA_VISIBLE_DEVICES").unwrap_or("-").to_string()
}

fn main() {
    println!("== Case 1: two different tools pinned to their own GPUs ==");
    let (cluster, mut app, _exec) = testbed(AllocationPolicy::ProcessId);
    let racon = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    let bonito = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    println!("racon requested 0  -> got {}", mask(&app, racon));
    println!("bonito requested 1 -> got {}", mask(&app, bonito));
    println!("{}", smi::render_table(&cluster));

    println!("== Case 2: second instance of a tool whose GPU is busy ==");
    let (_, mut app, _exec) = testbed(AllocationPolicy::ProcessId);
    let first = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    let second = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    println!("bonito #1 requested 1 -> got {}", mask(&app, first));
    println!("bonito #2 requested 1 -> got {} (redirected: GPU 1 busy)\n", mask(&app, second));

    println!("== Case 3: four instances, Process-ID allocation ==");
    let (cluster, mut app, _exec) = testbed(AllocationPolicy::ProcessId);
    for i in 1..=4 {
        let id = app.submit("racon_dev0", &ParamDict::new()).unwrap();
        println!("racon #{i} -> CUDA_VISIBLE_DEVICES={}", mask(&app, id));
    }
    println!("(instances 3 and 4 scattered across both GPUs, as in Fig. 11)");
    println!("{}", smi::render_table(&cluster));

    println!("== Case 4: Process-Allocated-Memory allocation ==");
    let (_, mut app, _exec) = testbed(AllocationPolicy::MemoryBased);
    let racon = app.submit("racon_dev0", &ParamDict::new()).unwrap();
    let b1 = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    let b2 = app.submit("bonito_dev1", &ParamDict::new()).unwrap();
    println!("racon    -> {}", mask(&app, racon));
    println!("bonito#1 -> {}", mask(&app, b1));
    println!("bonito#2 -> {} (least-memory GPU chosen instead of scattering)", mask(&app, b2));
}
