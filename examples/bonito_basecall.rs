//! Bonito workload deep-dive: simulate nanopore squiggles, basecall them
//! with the convolutional network on the CPU and GPU paths, and compare.
//!
//! Run with: `cargo run --release --example bonito_basecall`

use gpusim::{CudaContext, GpuCluster, HostSpec, VirtualClock};
use seqtools::bonito::{basecall_cpu, basecall_gpu, BonitoInput, BonitoModel, BonitoOpts};
use seqtools::DatasetSpec;

fn main() {
    let spec = DatasetSpec::acinetobacter_pittii();
    println!("dataset: {} ({} GB of raw fast5 at paper scale)", spec.name, spec.paper_bytes / 1e9);

    let input = BonitoInput::from_dataset(&spec);
    println!(
        "synthetic instance: {} reads, {:.1} M raw samples, work x{:.0}",
        input.signals.len(),
        input.total_samples() as f64 / 1e6,
        input.work_scale
    );

    let model = BonitoModel::pretrained(spec.seed);
    let opts = BonitoOpts::default();

    let cpu = basecall_cpu(&input, &model, &opts, &HostSpec::xeon_e5_2670(), &VirtualClock::new());
    println!(
        "\nCPU path: {:.0} h virtual ({:.2e} real FLOPs executed, {} bases called)",
        cpu.total_s / 3600.0,
        cpu.flops,
        cpu.bases
    );

    let cluster = GpuCluster::k80_node();
    let mut ctx = CudaContext::new(&cluster, None, 7, "bonito").unwrap();
    let gpu = basecall_gpu(&input, &model, &opts, &cluster, &mut ctx).unwrap();
    let profile = ctx.destroy();
    println!("GPU path: {:.2} h virtual", gpu.total_s / 3600.0);
    println!("speedup:  {:.0}x (paper: >50x)", cpu.total_s / gpu.total_s);

    assert_eq!(cpu.calls, gpu.calls, "both paths decode identical basecalls");

    println!("\nfirst basecalled read (FASTA):");
    for line in gpu.fasta.lines().take(3) {
        println!("  {line}");
    }

    println!("\nGEMM hotspots of the GPU run (paper Fig. 6):");
    for (name, e) in profile.gpu_report().into_iter().take(5) {
        println!("  {name:<18} {:>10.1} s x{}", e.seconds, e.calls);
    }
}
