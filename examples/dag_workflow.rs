//! DAG workflow through the asynchronous queue engine: a fan-out/fan-in
//! diamond whose GPU branches run concurrently, plus a forced GPU → CPU
//! resubmission (Galaxy's `<resubmit>` fallback).
//!
//! Run with: `cargo run --release --example dag_workflow`

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{DagStep, DagWorkflow, QueueConfig, QueueEngine, ResubmitPolicy};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::{GpuCluster, GpuProcess};
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

fn main() {
    // The hardware and the GYAN-enabled Galaxy, as in the quickstart.
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "dag_pacbio",
        genome_len: 1_500,
        n_reads: 12,
        read_len: 1_200,
        ..DatasetSpec::alzheimers_nfl()
    });
    executor.register_dataset(DatasetSpec {
        name: "dag_fast5",
        genome_len: 1_000,
        n_reads: 2,
        read_len: 250,
        ..DatasetSpec::acinetobacter_pittii()
    });
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, &cluster, GyanConfig::default());

    let lib = MacroLibrary::new();
    for (id, executable, device, dataset) in [
        ("racon_dev0", "racon_gpu", "0", "dag_pacbio"),
        ("bonito_dev1", "bonito basecaller", "1", "dag_fast5"),
    ] {
        let xml = format!(
            r#"<tool id="{id}" name="{id}">
              <requirements><requirement type="compute" version="{device}">gpu</requirement></requirements>
              <command>{executable} -t 2 {dataset} > out</command>
              <outputs><data name="out" format="fasta"/></outputs>
            </tool>"#
        );
        app.install_tool_xml(&xml, &lib).unwrap();
    }
    let echo = r#"<tool id="stage"><command>echo $msg</command>
      <inputs><param name="msg" type="text" value="stage"/></inputs>
      <outputs><data name="out" format="txt"/></outputs></tool>"#;
    app.install_tool_xml(echo, &lib).unwrap();

    // Wrap the app in the asynchronous queue engine: submissions return
    // handles immediately; a GPU failure falls back to the CPU
    // destination once.
    let config =
        QueueConfig { resubmit: ResubmitPolicy::gpu_to_cpu("local_cpu"), ..QueueConfig::default() };
    let mut engine = QueueEngine::new(app, executor, config);

    // ── Part 1: fan-out/fan-in diamond ─────────────────────────────────
    // prep → {racon on GPU 0, bonito on GPU 1} → join. The two branches
    // share a dispatch wave and run concurrently through the pool.
    let diamond = DagWorkflow::new("gpu_diamond")
        .step(DagStep::new("stage").with_param("msg", "prep"))
        .step(DagStep::new("racon_dev0").after(0))
        .step(DagStep::new("bonito_dev1").after(0))
        .step(DagStep::new("stage").with_input_from("msg", 1).after(2));
    let wf = engine.submit_dag("alice", diamond).unwrap();
    engine.run_until_idle();

    let report = engine.workflow_report(wf).unwrap();
    println!("diamond ok: {}", report.ok());
    for (i, outcome) in report.outcomes.iter().enumerate() {
        if let Some(o) = outcome {
            let job = engine.app().job(o.job_id).unwrap();
            println!(
                "  step {i}: job {} on {} (CUDA_VISIBLE_DEVICES={}) [{:.1}s..{:.1}s]",
                o.job_id,
                job.destination_id.as_deref().unwrap_or("-"),
                job.env_var("CUDA_VISIBLE_DEVICES").unwrap_or("-"),
                o.start,
                o.end,
            );
        }
    }
    println!("  makespan: {:.1}s (virtual)", report.makespan);

    // ── Part 2: forced resubmission ────────────────────────────────────
    // Hog both devices so the next bonito GPU attempt runs out of memory;
    // the engine resubmits it to `local_cpu`, where it succeeds.
    let total = cluster.with_device(0, |d| d.fb_total_mib()).unwrap();
    cluster.attach_process(0, GpuProcess::compute(9001, "hog0", total - 200)).unwrap();
    cluster.attach_process(1, GpuProcess::compute(9002, "hog1", total - 200)).unwrap();

    let handle = engine.submit_async("bob", "bonito_dev1", &ParamDict::new()).unwrap();
    engine.run_until_idle();

    let job = engine.app().job(handle.0).unwrap();
    println!(
        "\nresubmitted job {}: state {:?}, destination {}",
        handle.0,
        job.state(),
        job.destination_id.as_deref().unwrap()
    );
    for ev in engine.app().recorder().events_named("galaxy.queue.resubmit") {
        println!(
            "  resubmit: {} -> {} after exit {}",
            ev.field("from_destination").and_then(|v| v.as_str()).unwrap_or("-"),
            ev.field("to_destination").and_then(|v| v.as_str()).unwrap_or("-"),
            ev.field("exit_code").and_then(|v| v.as_f64()).unwrap_or(-1.0),
        );
    }

    // Every scheduling decision is on the merged Chrome trace's
    // `galaxy/queue` track.
    let trace = gyan::telemetry::merged_chrome_trace(engine.app().recorder(), &[], &[]);
    let queue_markers =
        trace.complete_events().iter().filter(|e| e.track == "galaxy/queue").count();
    println!("\nchrome trace: {queue_markers} scheduling markers on galaxy/queue");
}
