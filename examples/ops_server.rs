//! The live operations plane, end to end: run a mixed GPU/CPU workload
//! through the real `QueueEngine`/`install_gyan` stack, boot the embedded
//! introspection server on an ephemeral port, and read every endpoint
//! back over plain HTTP — the curl-able view an operator would scrape.
//!
//! Run with: `cargo run --release --example ops_server`
//!
//! With `--check` the example runs the same flow silently and asserts the
//! acceptance surface (`/metrics` parses through the obs Prometheus
//! parser, `/healthz` is 200, every API document is valid JSON), exiting
//! non-zero on any failure — `scripts/verify.sh` uses this as the
//! ops-server smoke gate.

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::queue::{QueueConfig, QueueEngine};
use galaxy::runners::NullExecutor;
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::allocation::AllocationPolicy;
use gyan::ops::{default_alert_rules, ops_server};
use gyan::setup::{install_gyan, GyanConfig};
use obs::metrics::parse_prometheus;
use obs::serve::http_get;
use obs::slo::AlertEngine;
use std::sync::Arc;

const GPU_TOOL: &str = r#"<tool id="racon_gpu" name="Racon">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command>racon_gpu reads</command>
  <outputs><data name="out" format="fasta"/></outputs>
</tool>"#;

const CPU_TOOL: &str = r#"<tool id="echo" name="Echo">
  <command>echo $text</command>
  <inputs><param name="text" type="text" value="tick"/></inputs>
  <outputs><data name="out" format="txt"/></outputs>
</tool>"#;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let say = |line: &str| {
        if !check {
            println!("{line}");
        }
    };

    // --- The production stack -------------------------------------------
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let table = install_gyan(&mut app, &cluster, GyanConfig::default());
    let lib = MacroLibrary::new();
    app.install_tool_xml(GPU_TOOL, &lib).unwrap();
    app.install_tool_xml(CPU_TOOL, &lib).unwrap();
    let recorder = app.recorder().clone();
    let alerts = AlertEngine::new(&recorder);
    for rule in default_alert_rules(&table) {
        alerts.add_rule(rule);
    }

    // --- A mixed GPU/CPU workload ---------------------------------------
    let mut engine = QueueEngine::new(app, Arc::new(NullExecutor), QueueConfig::default());
    for (user, tool) in
        [("alice", "racon_gpu"), ("bob", "echo"), ("alice", "echo"), ("carol", "racon_gpu")]
    {
        engine.submit_async(user, tool, &ParamDict::new()).unwrap();
    }
    engine.run_until_idle();

    // A camper plus redirected probes: a synthetic conflict storm so the
    // alert surface has something to show.
    table
        .allocate_and_lease(&cluster, &[0], AllocationPolicy::ProcessId, 9001, 256, Some(&recorder))
        .expect("camper grant");
    for i in 0..5u64 {
        table
            .allocate_and_lease(
                &cluster,
                &[0],
                AllocationPolicy::ProcessId,
                9100 + i,
                64,
                Some(&recorder),
            )
            .expect("probe grant");
        table.release(9100 + i, "probe_done", Some(&recorder));
        cluster.clock().advance(1.0);
        alerts.evaluate();
    }

    // --- Serve and scrape -----------------------------------------------
    let server = ops_server(&recorder, &cluster, &table, &engine.ledger(), &alerts);
    let handle = server.start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();
    say(&format!("ops server listening on http://{addr}"));

    let get = |path: &str, want: u16| -> String {
        let (status, body) = http_get(addr, path).unwrap_or_else(|e| panic!("GET {path}: {e}"));
        assert_eq!(status, want, "GET {path} returned {status}, want {want}");
        body
    };

    // /healthz must be 200 with a liveness status.
    let health = get("/healthz", 200);
    let doc = obs::json::parse(&health).expect("healthz is JSON");
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
    say(&format!("\nGET /healthz\n{health}"));

    // /metrics must parse with the crate's own Prometheus parser.
    let scrape = get("/metrics", 200);
    let samples = parse_prometheus(&scrape).expect("scrape parses");
    assert!(
        samples.iter().any(|s| s.name == "galaxy_jobs_submitted_total"),
        "scrape misses the job counters"
    );
    say(&format!("\nGET /metrics — {} samples, first 6:", samples.len()));
    for line in scrape.lines().filter(|l| !l.starts_with('#')).take(6) {
        say(&format!("  {line}"));
    }

    // The API documents must all be valid JSON.
    for path in ["/api/jobs", "/api/gpus", "/api/alerts"] {
        let body = get(path, 200);
        obs::json::parse(&body).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        say(&format!("\nGET {path}\n{body}"));
    }
    let flight = get("/api/flightrec", 200);
    for line in flight.lines() {
        obs::json::parse(line).expect("flight record line parses");
    }
    say(&format!(
        "\nGET /api/flightrec — {} JSONL line(s), header:\n  {}",
        flight.lines().count(),
        flight.lines().next().unwrap_or("")
    ));

    // Unknown paths 404; non-GET methods 405 (not probed here — covered
    // by the obs::serve unit tests).
    get("/api/nope", 404);

    assert!(
        alerts.firing().contains(&"gpu-conflict-rate".to_string()),
        "the conflict storm should leave gpu-conflict-rate firing"
    );
    say("\nalert summary:");
    for line in alerts.summary().lines() {
        say(&format!("  {line}"));
    }

    handle.shutdown();
    if check {
        println!("ops_server --check: all endpoints OK");
    }
}
