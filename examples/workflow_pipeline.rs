//! Workflows: run a multi-step analysis pipeline through GYAN — a
//! basecalling step (GPU-mapped Bonito) followed by two rounds of
//! polishing (GPU-mapped Racon), the way Galaxy users chain tools.
//!
//! Run with: `cargo run --release --example workflow_pipeline`

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::tool::macros::MacroLibrary;
use galaxy::workflow::{Workflow, WorkflowStep};
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

fn main() {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "wf_fast5",
        genome_len: 2_000,
        n_reads: 3,
        read_len: 400,
        ..DatasetSpec::acinetobacter_pittii()
    });
    executor.register_dataset(DatasetSpec {
        name: "wf_pacbio",
        genome_len: 2_500,
        n_reads: 20,
        read_len: 2_000,
        ..DatasetSpec::alzheimers_nfl()
    });
    app.set_executor(Box::new(executor));
    install_gyan(&mut app, &cluster, GyanConfig::default());

    let lib = MacroLibrary::new();
    app.install_tool_xml(
        r#"<tool id="bonito" name="Bonito">
          <requirements><requirement type="compute">gpu</requirement></requirements>
          <command>bonito basecaller dna_r9.4.1 $dataset > calls.fa</command>
          <inputs><param name="dataset" type="data" value="wf_fast5"/></inputs>
          <outputs><data name="basecalls" format="fasta"/></outputs>
        </tool>"#,
        &lib,
    )
    .unwrap();
    app.install_tool_xml(
        r#"<tool id="racon_round" name="Racon">
          <requirements><requirement type="compute">gpu</requirement></requirements>
          <command>racon_gpu -t 4 $dataset > polished.fa</command>
          <inputs><param name="dataset" type="data" value="wf_pacbio"/></inputs>
          <outputs><data name="consensus" format="fasta"/></outputs>
        </tool>"#,
        &lib,
    )
    .unwrap();

    // A three-step pipeline. (Polishing rounds both reference the named
    // dataset; in a full deployment the dataset references would be
    // history items, which our steps model with ValueSource bindings.)
    let wf = Workflow::new("basecall-then-polish")
        .step(WorkflowStep::new("bonito"))
        .step(WorkflowStep::new("racon_round"))
        .step(WorkflowStep::new("racon_round"));

    let run = app.submit_workflow(&wf).unwrap();
    println!("workflow '{}' -> {}", wf.name, if run.ok() { "ok" } else { "FAILED" });
    for (i, id) in run.job_ids.iter().enumerate() {
        let job = app.job(*id).unwrap();
        println!(
            "  step {i}: tool {:<12} dest {:<10} gpu={} mask={} runtime {:.0}s",
            job.tool_id,
            job.destination_id.as_deref().unwrap_or("-"),
            job.env_var("GALAXY_GPU_ENABLED").unwrap_or("-"),
            job.env_var("CUDA_VISIBLE_DEVICES").unwrap_or("-"),
            job.runtime().unwrap_or(0.0),
        );
    }
    println!(
        "\nhistory now holds {} datasets; total virtual time {:.0} s",
        app.history().len(),
        cluster.clock().now()
    );
}
