//! Racon workload deep-dive: polish a draft assembly on the CPU and GPU
//! paths, compare runtimes, phases, and verify the consensus actually
//! improves the assembly.
//!
//! Run with: `cargo run --release --example racon_polish`

use gpusim::{CudaContext, GpuCluster, HostSpec, VirtualClock};
use seqtools::align::identity;
use seqtools::racon::{polish_cpu, polish_gpu, RaconInput, RaconOpts};
use seqtools::DatasetSpec;

fn main() {
    // A laptop-scale instance with the Alzheimers dataset's shape; the
    // cost model extrapolates runtimes to the paper's 17 GB.
    let spec = DatasetSpec::alzheimers_nfl();
    println!("dataset: {} ({} GB at paper scale)", spec.name, spec.paper_bytes / 1e9);
    let input = RaconInput::from_dataset(&spec);
    println!(
        "synthetic instance: {} reads, draft {} bp, {} overlaps, work x{:.0}",
        input.reads.len(),
        input.draft.len(),
        input.overlaps.len(),
        input.work_scale
    );

    let opts = RaconOpts { threads: 4, batches: 4, banded: false, window_len: 500 };

    // CPU-only path (`racon -t 4`).
    let clock = VirtualClock::new();
    let cpu = polish_cpu(&input, &opts, &HostSpec::xeon_e5_2670(), &clock);
    println!(
        "\nCPU path:  load/map {:.0} s + polish {:.0} s = {:.0} s",
        cpu.other_s, cpu.polish_s, cpu.total_s
    );

    // GPU path (`racon_gpu --cudapoa-batches 4`).
    let cluster = GpuCluster::k80_node();
    let mut ctx = CudaContext::new(&cluster, None, 1, "racon_gpu").unwrap();
    let gpu = polish_gpu(&input, &opts, &cluster, &mut ctx).unwrap();
    let profile = ctx.destroy();
    println!(
        "GPU path:  load/map {:.0} s + polish {:.1} s (alloc {:.1}, kernels {:.1}, dma {:.1}) = {:.0} s",
        gpu.other_s, gpu.polish_s, gpu.alloc_s, gpu.kernel_s, gpu.transfer_s, gpu.total_s
    );
    println!("speedup:   {:.2}x end-to-end (paper: ~2x)", cpu.total_s / gpu.total_s);

    // Quality: both paths compute the identical consensus, and it is a
    // real improvement over the draft.
    assert_eq!(cpu.consensus, gpu.consensus);
    let before = identity(&input.draft, &input.truth);
    let after = identity(&cpu.consensus, &input.truth);
    println!("\nassembly identity: draft {before:.4} -> polished {after:.4}");

    // The banding approximation trades DP cells for accuracy.
    let banded = polish_cpu(
        &input,
        &RaconOpts { banded: true, ..opts },
        &HostSpec::xeon_e5_2670(),
        &VirtualClock::new(),
    );
    println!(
        "banding: {} -> {} DP cells ({:.1}x fewer), identity {:.4}",
        cpu.cells,
        banded.cells,
        cpu.cells as f64 / banded.cells as f64,
        identity(&banded.consensus, &input.truth)
    );

    println!("\nNVProf-style hotspots of the GPU run:");
    for (name, e) in profile.gpu_report() {
        println!("  {name:<26} {:>8.2} s x{}", e.seconds, e.calls);
    }
    let stalls = profile.stall_analysis();
    println!(
        "stalls: {:.0}% memory dependency, {:.0}% execution dependency (paper: ~70%/~20%)",
        stalls.memory_dependency * 100.0,
        stalls.execution_dependency * 100.0
    );
}
