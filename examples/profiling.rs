//! The hot-path profiler in action: enable the global `obs::profile`
//! profiler, drive real allocation decisions through the lease table,
//! and print the two exports — the per-scope summary (what
//! `/api/profile` serves) and the collapsed stacks (flamegraph input).
//! The breakdown shows where an allocation decision's time actually
//! goes: SMI XML render + parse dominate, which is the paper's
//! motivation for keeping GPU-state observation off the job's critical
//! path.
//!
//! Run with: `cargo run --release --example profiling`

use gpusim::GpuCluster;
use gyan::allocation::AllocationPolicy;
use gyan::reservations::LeaseTable;

fn main() {
    let cluster = GpuCluster::k80_node();
    let table = LeaseTable::new();

    // Instrumented library code costs one relaxed atomic load per call
    // site until the global profiler is switched on.
    let profiler = obs::profile::global();
    profiler.enable_real_clock();
    profiler.reset();
    profiler.enable();

    // 512 allocate→release round trips under a common root scope, the
    // same loop the dispatch hook runs per wave member.
    for i in 0..512u64 {
        let holder = i % 7 + 1;
        let _root = profiler.scope("alloc.decision");
        let alloc = table.allocate_and_lease(
            &cluster,
            &[(i % 2) as u32],
            AllocationPolicy::ProcessId,
            holder,
            100,
            None,
        );
        assert!(alloc.is_some(), "K80 node always allocates");
        table.release(holder, "done", None);
    }
    profiler.disable();

    println!("per-scope summary (count / total / self, ms):");
    for entry in profiler.snapshot() {
        let indent = "  ".repeat(entry.depth());
        println!(
            "  {indent}{:<24} {:>5}x  total {:>8.2}  self {:>8.2}",
            entry.name(),
            entry.stats.count,
            entry.stats.total_s * 1e3,
            entry.stats.self_s * 1e3,
        );
    }

    let attributed = profiler.attributed_pct("alloc.decision").unwrap_or(0.0);
    println!("\nattribution: {attributed:.1}% of allocation wall time in named scopes");

    println!("\ncollapsed stacks (pipe to inferno-flamegraph / flamegraph.pl):");
    for line in profiler.collapsed().lines() {
        println!("  {line}");
    }

    println!("\nJSON export (served live at /api/profile):");
    println!("{}", profiler.summary_json());
}
