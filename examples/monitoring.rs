//! The GPU hardware usage script (paper §V-C): attach the monitor to a
//! running job, collect the 1 Hz chronological trace, and post-process
//! into min/max/avg statistics, a CSV, and an SLO alert summary.
//!
//! Run with: `cargo run --release --example monitoring`

use gpusim::{CudaContext, GpuCluster};
use gyan::UsageMonitor;
use obs::slo::{AlertEngine, AlertExpr, AlertRule, Compare};
use obs::Recorder;
use seqtools::racon::{polish_gpu, RaconInput, RaconOpts};
use seqtools::DatasetSpec;

fn main() {
    let cluster = GpuCluster::k80_node();

    // "It is executed when a job is submitted ..." — note the baseline
    // observer count so we can verify the monitor cleans up after itself.
    let observer_baseline = cluster.clock().observer_count();
    let monitor = UsageMonitor::start(&cluster);

    // Run a Racon-GPU job; every virtual second of its execution is
    // sampled automatically.
    let spec = DatasetSpec {
        name: "monitored_run",
        genome_len: 2_500,
        n_reads: 20,
        read_len: 2_000,
        ..DatasetSpec::alzheimers_nfl()
    };
    let input = RaconInput::from_dataset(&spec);
    let mut ctx = CudaContext::new(&cluster, Some("0"), 41_000, "/usr/bin/racon_gpu").unwrap();
    let report = polish_gpu(&input, &RaconOpts::default(), &cluster, &mut ctx).unwrap();
    ctx.destroy();

    // "... and stopped when a job is either killed or stops. Whenever it
    // stops, a post-processing function is executed." Stopping also
    // deregisters the monitor's clock observer — a long-lived cluster
    // must not accumulate one dead observer per monitored job.
    let samples = monitor.stop();
    assert_eq!(
        cluster.clock().observer_count(),
        observer_baseline,
        "monitor.stop() must deregister its clock observer"
    );
    println!(
        "job ran {:.0} virtual seconds; monitor collected {} samples",
        report.total_s,
        samples.len()
    );

    println!("\nper-device statistics (min/max/avg):");
    for s in monitor.stats() {
        println!(
            "  GPU {}: sm {:.0}%/{:.0}%/{:.0}%  fb {} MiB/{} MiB/{:.0} MiB over {} samples",
            s.minor, s.sm_min, s.sm_max, s.sm_avg, s.mem_min, s.mem_max, s.mem_avg, s.samples
        );
    }

    let csv = monitor.to_csv();
    println!("\nfirst 8 CSV rows (t,gpu,sm_util,mem_util,fb_used_mib,pcie_gen):");
    for line in csv.lines().take(9) {
        println!("  {line}");
    }
    println!("  ... ({} rows total)", csv.lines().count() - 1);

    // Feed the post-processed statistics to the SLO engine the operations
    // plane uses, and print its per-rule summary: an operator's one-glance
    // view of whether the monitored run breached any utilization SLO.
    let recorder = Recorder::new();
    let monitor_clock = cluster.clock().clone();
    recorder.set_clock(move || monitor_clock.now());
    for s in monitor.stats() {
        let m = recorder.metrics();
        m.set_gauge(&format!("monitor_sm_util_max{{gpu=\"{}\"}}", s.minor), s.sm_max);
        m.set_gauge(&format!("monitor_fb_used_max_mib{{gpu=\"{}\"}}", s.minor), s.mem_max as f64);
    }
    let alerts = AlertEngine::new(&recorder);
    alerts.add_rule(AlertRule::new(
        "gpu0-sm-saturated",
        AlertExpr::Gauge("monitor_sm_util_max{gpu=\"0\"}".to_string()),
        Compare::Gt,
        95.0,
    ));
    alerts.add_rule(AlertRule::new(
        "gpu0-fb-oversubscribed",
        AlertExpr::Gauge("monitor_fb_used_max_mib{gpu=\"0\"}".to_string()),
        Compare::Gt,
        11_000.0,
    ));
    alerts.evaluate();
    println!("\nalert summary:");
    for line in alerts.summary().lines() {
        println!("  {line}");
    }
}
