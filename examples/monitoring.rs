//! The GPU hardware usage script (paper §V-C): attach the monitor to a
//! running job, collect the 1 Hz chronological trace, and post-process
//! into min/max/avg statistics and a CSV.
//!
//! Run with: `cargo run --release --example monitoring`

use gpusim::{CudaContext, GpuCluster};
use gyan::UsageMonitor;
use seqtools::racon::{polish_gpu, RaconInput, RaconOpts};
use seqtools::DatasetSpec;

fn main() {
    let cluster = GpuCluster::k80_node();

    // "It is executed when a job is submitted ..."
    let monitor = UsageMonitor::start(&cluster);

    // Run a Racon-GPU job; every virtual second of its execution is
    // sampled automatically.
    let spec = DatasetSpec {
        name: "monitored_run",
        genome_len: 2_500,
        n_reads: 20,
        read_len: 2_000,
        ..DatasetSpec::alzheimers_nfl()
    };
    let input = RaconInput::from_dataset(&spec);
    let mut ctx = CudaContext::new(&cluster, Some("0"), 41_000, "/usr/bin/racon_gpu").unwrap();
    let report = polish_gpu(&input, &RaconOpts::default(), &cluster, &mut ctx).unwrap();
    ctx.destroy();

    // "... and stopped when a job is either killed or stops. Whenever it
    // stops, a post-processing function is executed."
    let samples = monitor.stop();
    println!(
        "job ran {:.0} virtual seconds; monitor collected {} samples",
        report.total_s,
        samples.len()
    );

    println!("\nper-device statistics (min/max/avg):");
    for s in monitor.stats() {
        println!(
            "  GPU {}: sm {:.0}%/{:.0}%/{:.0}%  fb {} MiB/{} MiB/{:.0} MiB over {} samples",
            s.minor, s.sm_min, s.sm_max, s.sm_avg, s.mem_min, s.mem_max, s.mem_avg, s.samples
        );
    }

    let csv = monitor.to_csv();
    println!("\nfirst 8 CSV rows (t,gpu,sm_util,mem_util,fb_used_mib,pcie_gen):");
    for line in csv.lines().take(9) {
        println!("  {line}");
    }
    println!("  ... ({} rows total)", csv.lines().count() - 1);
}
