//! Quickstart: stand up a GYAN-enabled Galaxy over a simulated 2× Tesla
//! K80 node, submit a GPU-capable tool, and watch GYAN map it.
//!
//! Run with: `cargo run --release --example quickstart`

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::{smi, GpuCluster};
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

fn main() {
    // 1. The hardware: one Tesla K80 board = two CUDA devices.
    let cluster = GpuCluster::k80_node();

    // 2. Galaxy, configured from the paper's job_conf.xml (Code 2), with
    //    GYAN installed: dynamic GPU/CPU destination rule, allocation
    //    hook, container mutators.
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    // Use a laptop-sized instance of the paper's 17 GB dataset.
    executor.register_dataset(DatasetSpec {
        name: "quickstart_reads",
        genome_len: 2_500,
        n_reads: 20,
        read_len: 2_000,
        ..DatasetSpec::alzheimers_nfl()
    });
    app.set_executor(Box::new(executor));
    install_gyan(&mut app, &cluster, GyanConfig::default());

    // 3. A GPU-capable tool, declared exactly like the paper's Code 1/3:
    //    a `compute`/`gpu` requirement plus a wrapper that switches
    //    executables on `$__galaxy_gpu_enabled__`.
    let wrapper = r#"<tool id="racon_gpu" name="Racon" version="1.4.3">
      <requirements>
        <requirement type="package" version="1.4.3">racon</requirement>
        <requirement type="compute">gpu</requirement>
      </requirements>
      <command><![CDATA[
#if $__galaxy_gpu_enabled__ == "true"
racon_gpu -t $threads $dataset > consensus.fa
#else
racon -t $threads $dataset > consensus.fa
#end if
]]></command>
      <inputs>
        <param name="dataset" type="data" value="quickstart_reads"/>
        <param name="threads" type="integer" value="4"/>
      </inputs>
      <outputs><data name="consensus" format="fasta"/></outputs>
    </tool>"#;
    app.install_tool_xml(wrapper, &MacroLibrary::new()).unwrap();

    // 4. Submit, as a user clicking "Execute" in the web UI would.
    let job_id = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let job = app.job(job_id).unwrap();

    println!("job {} finished in state {:?}", job_id, job.state().name());
    println!("  destination:          {}", job.destination_id.as_deref().unwrap());
    println!("  GALAXY_GPU_ENABLED:   {}", job.env_var("GALAXY_GPU_ENABLED").unwrap());
    println!("  CUDA_VISIBLE_DEVICES: {}", job.env_var("CUDA_VISIBLE_DEVICES").unwrap_or("-"));
    println!("  command line:         {}", job.command_line.as_deref().unwrap());
    println!("  runtime (virtual):    {:.1} s", job.runtime().unwrap());
    println!(
        "  output dataset:       {} bytes of consensus FASTA",
        app.history().datasets_for_job(job_id)[0].content.len()
    );

    println!("\nnvidia-smi after the run (devices released):\n");
    println!("{}", smi::render_table(&cluster));
}
