//! The reservation layer in action: a fan-out diamond whose two GPU
//! branches are both pinned to device 1 and dispatched in the *same*
//! wave. Without leases the observe→dispatch race double-books the
//! device (both branches export `CUDA_VISIBLE_DEVICES=1`); with them the
//! second branch is redirected, and the conflict is audited.
//!
//! Run with: `cargo run --release --example reservations`

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::queue::{DagStep, DagWorkflow, QueueConfig, QueueEngine};
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::reservations::{
    RESERVATIONS_ACQUIRED_COUNTER, RESERVATIONS_RELEASED_COUNTER, RESERVATION_CONFLICTS_COUNTER,
};
use gyan::setup::{install_gyan, GyanConfig};
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

fn main() {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "lease_pacbio",
        genome_len: 1_500,
        n_reads: 12,
        read_len: 1_200,
        ..DatasetSpec::alzheimers_nfl()
    });
    executor.register_dataset(DatasetSpec {
        name: "lease_fast5",
        genome_len: 1_000,
        n_reads: 2,
        read_len: 250,
        ..DatasetSpec::acinetobacter_pittii()
    });
    app.set_executor(Box::new(executor.clone()));

    // `install_gyan` now returns the lease table it wired into the hook
    // and rule, so callers can inspect it (here: prove it drains).
    let table = install_gyan(&mut app, &cluster, GyanConfig::default());

    // Both GPU branches ask for device 1 — a deliberate contention.
    let lib = MacroLibrary::new();
    for (id, executable, dataset) in [
        ("racon_dev1", "racon_gpu", "lease_pacbio"),
        ("bonito_dev1", "bonito basecaller", "lease_fast5"),
    ] {
        let xml = format!(
            r#"<tool id="{id}" name="{id}">
              <requirements><requirement type="compute" version="1">gpu</requirement></requirements>
              <command>{executable} -t 2 {dataset} > out</command>
              <outputs><data name="out" format="fasta"/></outputs>
            </tool>"#
        );
        app.install_tool_xml(&xml, &lib).unwrap();
    }
    let echo = r#"<tool id="stage"><command>echo $msg</command>
      <inputs><param name="msg" type="text" value="stage"/></inputs>
      <outputs><data name="out" format="txt"/></outputs></tool>"#;
    app.install_tool_xml(echo, &lib).unwrap();

    let mut engine = QueueEngine::new(app, executor, QueueConfig::default());

    // prep → {racon pinned to 1, bonito pinned to 1} → join. The two
    // pinned branches land in the same dispatch wave: both are prepared
    // before either starts executing, so SMI alone sees device 1 free
    // twice. The lease acquired by the first preparation makes the
    // second preparation see it busy.
    let diamond = DagWorkflow::new("contended_diamond")
        .step(DagStep::new("stage").with_param("msg", "prep"))
        .step(DagStep::new("racon_dev1").after(0))
        .step(DagStep::new("bonito_dev1").after(0))
        .step(DagStep::new("stage").with_input_from("msg", 1).after(2));
    let wf = engine.submit_dag("alice", diamond).unwrap();
    engine.run_until_idle();

    let report = engine.workflow_report(wf).unwrap();
    println!("contended diamond ok: {}", report.ok());
    for (i, outcome) in report.outcomes.iter().enumerate() {
        if let Some(o) = outcome {
            let job = engine.app().job(o.job_id).unwrap();
            println!(
                "  step {i}: job {} on {} (CUDA_VISIBLE_DEVICES={})",
                o.job_id,
                job.destination_id.as_deref().unwrap_or("-"),
                job.env_var("CUDA_VISIBLE_DEVICES").unwrap_or("-"),
            );
        }
    }

    // The audit trail: one conflict, showing what the second branch
    // asked for, what the unleased baseline would have granted, and who
    // blocked it.
    let rec = engine.app().recorder();
    for ev in rec.events_named("gyan.reservation.conflict") {
        println!(
            "\nconflict: job {} requested [{}], baseline would grant [{}], leased grant [{}] (blocked by {})",
            ev.field("job_id").and_then(|v| v.as_f64()).unwrap_or(-1.0),
            ev.field("requested").and_then(|v| v.as_str()).unwrap_or("-"),
            ev.field("baseline_devices").and_then(|v| v.as_str()).unwrap_or("-"),
            ev.field("granted_devices").and_then(|v| v.as_str()).unwrap_or("-"),
            ev.field("blocked_by").and_then(|v| v.as_str()).unwrap_or("-"),
        );
    }
    println!(
        "\nleases: {} acquired, {} released, {} conflict(s); {} still held",
        rec.metrics().counter_value(RESERVATIONS_ACQUIRED_COUNTER),
        rec.metrics().counter_value(RESERVATIONS_RELEASED_COUNTER),
        rec.metrics().counter_value(RESERVATION_CONFLICTS_COUNTER),
        table.lease_count(),
    );

    // Reservation events ride the merged Chrome trace on their own track.
    let trace = gyan::telemetry::merged_chrome_trace(rec, &[], &[]);
    let lease_markers =
        trace.complete_events().iter().filter(|e| e.track == "gyan/reservations").count();
    println!("chrome trace: {lease_markers} lease markers on gyan/reservations");
}
