//! One instrumented GYAN run, three telemetry artifacts: the span/event
//! log as JSONL, the metrics registry as Prometheus text, and the merged
//! Chrome trace (job spans + decision audits + GPU kernel/DMA intervals +
//! usage-monitor counters) ready for `chrome://tracing` / Perfetto.
//!
//! Everything is timestamped from the cluster's virtual clock, so the
//! output of this example is deterministic run to run.
//!
//! Run with: `cargo run --release --example telemetry`

use galaxy::job::conf::{JobConfig, GYAN_JOB_CONF};
use galaxy::params::ParamDict;
use galaxy::tool::macros::MacroLibrary;
use galaxy::GalaxyApp;
use gpusim::GpuCluster;
use gyan::setup::{install_gyan, GyanConfig};
use gyan::UsageMonitor;
use seqtools::{DatasetSpec, ToolExecutor};
use std::sync::Arc;

const GPU_TOOL: &str = r#"<tool id="racon_gpu" name="Racon">
  <requirements><requirement type="compute">gpu</requirement></requirements>
  <command>racon_gpu -t 2 telemetry_reads > consensus.fa</command>
</tool>"#;

const CPU_TOOL: &str =
    r#"<tool id="count_reads" name="count"><command>echo counted > out</command></tool>"#;

fn main() {
    let cluster = GpuCluster::k80_node();
    let mut app = GalaxyApp::new(JobConfig::from_xml(GYAN_JOB_CONF).unwrap());
    let executor = Arc::new(ToolExecutor::new(&cluster));
    executor.register_dataset(DatasetSpec {
        name: "telemetry_reads",
        genome_len: 1_500,
        n_reads: 10,
        read_len: 1_200,
        ..DatasetSpec::alzheimers_nfl()
    });
    app.set_executor(Box::new(executor.clone()));
    install_gyan(&mut app, &cluster, GyanConfig::default());
    let lib = MacroLibrary::new();
    app.install_tool_xml(GPU_TOOL, &lib).unwrap();
    app.install_tool_xml(CPU_TOOL, &lib).unwrap();

    // One GPU job and one CPU job, sampled by the usage monitor.
    let monitor = UsageMonitor::start(&cluster);
    let gpu_job = app.submit("racon_gpu", &ParamDict::new()).unwrap();
    let cpu_job = app.submit("count_reads", &ParamDict::new()).unwrap();
    let samples = monitor.stop();

    let gpu_traces: Vec<_> = [gpu_job, cpu_job]
        .iter()
        .filter_map(|&id| Some((id, executor.trace_for_job(id)?)))
        .collect();
    let export = gyan::export_run(app.recorder(), &gpu_traces, &samples);

    println!("=== span/event log (JSONL, first 12 lines) ===");
    for line in export.jsonl.lines().take(12) {
        println!("{line}");
    }
    println!("... {} lines total\n", export.jsonl.lines().count());

    println!("=== Prometheus exposition ===");
    print!("{}", export.prometheus);

    let doc = obs::json::parse(&export.chrome_trace).expect("trace parses");
    let n_events = doc.get("traceEvents").and_then(|v| v.as_array()).map_or(0, |a| a.len());
    println!("\n=== merged Chrome trace ===");
    println!(
        "{n_events} events, {} bytes — save to a file and load in Perfetto:",
        export.chrome_trace.len()
    );
    for event in app.recorder().events_named("gyan.rule.decision") {
        println!(
            "  rule decision: job {} -> {} ({})",
            event.field("job_id").and_then(|v| v.as_f64()).unwrap_or(-1.0),
            event.field("destination").and_then(|v| v.as_str()).unwrap_or("?"),
            event.field("reason").and_then(|v| v.as_str()).unwrap_or("?"),
        );
    }
}
