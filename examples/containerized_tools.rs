//! GPU support for containerized tools (paper §IV-B / Challenge-III):
//! shows the Docker and Singularity launch commands before and after
//! GYAN's mutations, and the pull/cold-start overhead accounting.
//!
//! Run with: `cargo run --release --example containerized_tools`

use galaxy::containers::ImageRegistry;
use galaxy::job::conf::Destination;
use galaxy::job::Job;
use galaxy::params::ParamDict;
use galaxy::runners::container_cmd::{docker_command, singularity_command, VolumeBind};
use galaxy::runners::CommandMutator;
use gyan::container_gpu::{DockerGpuMutator, SingularityGpuMutator};

fn show(parts: &[String]) {
    println!("  {}", parts.join(" "));
}

fn main() {
    // A GPU job as GYAN's orchestrator leaves it: env exported, devices
    // selected.
    let mut job = Job::new(1, "racon_gpu", ParamDict::new());
    job.set_env("GALAXY_GPU_ENABLED", "true");
    job.set_env("CUDA_VISIBLE_DEVICES", "0,1");
    let dest =
        Destination { id: "docker_gpu".into(), runner: "local".into(), params: ParamDict::new() };

    let volumes = [VolumeBind::rw("/galaxy/data"), VolumeBind::ro("/galaxy/refs")];
    let tool_cmd = "racon_gpu -t 4 reads.fq overlaps.paf draft.fa";

    println!("== Docker ==");
    let mut parts = docker_command(
        "gulsumgudukbay/racon_dockerfile",
        tool_cmd,
        &job.env,
        &volumes,
        "/galaxy/jobs/1",
    );
    println!("Galaxy's assembled command:");
    show(&parts);
    DockerGpuMutator.mutate(&mut parts, &job, &dest);
    println!("after GYAN's mutation (`--gpus all` + device mask forwarded):");
    show(&parts);

    println!("\n== Singularity ==");
    let mut parts =
        singularity_command("racon.sif", tool_cmd, &job.env, &volumes, "/galaxy/jobs/1");
    println!("Galaxy's assembled command:");
    show(&parts);
    SingularityGpuMutator.mutate(&mut parts, &job, &dest);
    println!("after GYAN's mutation (`--nv`, rw/ro bind flags stripped):");
    show(&parts);

    println!("\n== CPU job: mutations are no-ops ==");
    let mut cpu_job = Job::new(2, "racon", ParamDict::new());
    cpu_job.set_env("GALAXY_GPU_ENABLED", "false");
    let mut parts = docker_command(
        "quay.io/biocontainers/racon:1.4.3",
        "racon -t 4",
        &cpu_job.env,
        &volumes,
        "/w",
    );
    let before = parts.clone();
    DockerGpuMutator.mutate(&mut parts, &cpu_job, &dest);
    assert_eq!(parts, before);
    println!("  unchanged: {}", parts.join(" "));

    println!("\n== Image registry / overhead model ==");
    let registry = ImageRegistry::with_paper_images();
    let image = "gulsumgudukbay/racon_dockerfile";
    let pull_s = registry.pull(image).unwrap();
    let first = registry.start_overhead(image, true).unwrap();
    let warm = registry.start_overhead(image, false).unwrap();
    println!("  pull {image}: {pull_s:.1} s (cached afterwards)");
    println!("  first container start: {first:.2} s; warm start: {warm:.2} s");
    println!("  paper: ~0.6 s container launching + cold start overhead");
}
